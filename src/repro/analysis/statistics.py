"""Structural statistics of coverings.

Numbers that make a covering legible: how the request-distance classes
are spread over blocks, how evenly vertices are loaded, the gap
profiles (tightness), and where the excess lands.  Used by the
experiment harness and handy when eyeballing a new construction — an
uneven vertex load or a non-tight block is usually the first symptom of
a construction bug.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..core.covering import Covering
from ..util import circular

__all__ = ["CoveringStatistics", "covering_statistics"]


@dataclass(frozen=True)
class CoveringStatistics:
    """Aggregated structural statistics of one covering."""

    n: int
    num_blocks: int
    size_histogram: dict[int, int]
    vertex_load_min: int
    vertex_load_max: int
    vertex_load_mean: float
    distance_class_coverage: dict[int, int]   # distance → covered slots
    distance_class_required: dict[int, int]   # distance → chords of K_n
    tight_blocks: int
    excess_by_distance: dict[int, int]
    mean_block_distance_sum: float

    @property
    def all_tight(self) -> bool:
        return self.tight_blocks == self.num_blocks

    @property
    def load_balanced(self) -> bool:
        """Every vertex in the same number of blocks (true for the odd
        exact decompositions, near-true for even)."""
        return self.vertex_load_min == self.vertex_load_max

    def summary(self) -> str:
        return (
            f"stats(n={self.n}): {self.num_blocks} blocks, vertex load "
            f"[{self.vertex_load_min}, {self.vertex_load_max}] "
            f"(mean {self.vertex_load_mean:.2f}), tight {self.tight_blocks}"
            f"/{self.num_blocks}, excess {sum(self.excess_by_distance.values())}"
        )


def covering_statistics(covering: Covering) -> CoveringStatistics:
    """Compute structural statistics (vectorised where it matters)."""
    n = covering.n

    vertex_load = Counter()
    for blk in covering.blocks:
        vertex_load.update(blk.vertices)
    loads = [vertex_load.get(v, 0) for v in range(n)]

    # Distance spectrum of covered slots, via the vectorised kernel.
    all_edges = [e for blk in covering.blocks for e in blk.edges()]
    if all_edges:
        dists = circular.chord_distances_bulk(n, np.array(all_edges, dtype=np.int64))
        spectrum = Counter(int(d) for d in dists)
    else:
        spectrum = Counter()

    required = Counter()
    for d in range(1, n // 2 + 1):
        required[d] = n if (n % 2 == 1 or d < n // 2) else n // 2

    excess_by_distance: Counter[int] = Counter()
    for e, c in covering.coverage.items():
        if c > 1:
            excess_by_distance[circular.chord_distance(n, e)] += c - 1

    tight = sum(1 for blk in covering.blocks if blk.is_tight(n))
    dist_sums = [blk.distance_sum(n) for blk in covering.blocks]

    return CoveringStatistics(
        n=n,
        num_blocks=covering.num_blocks,
        size_histogram=covering.size_histogram,
        vertex_load_min=min(loads) if loads else 0,
        vertex_load_max=max(loads) if loads else 0,
        vertex_load_mean=float(np.mean(loads)) if loads else 0.0,
        distance_class_coverage=dict(sorted(spectrum.items())),
        distance_class_required=dict(sorted(required.items())),
        tight_blocks=tight,
        excess_by_distance=dict(sorted(excess_by_distance.items())),
        mean_block_distance_sum=float(np.mean(dist_sums)) if dist_sums else 0.0,
    )
