"""Experiment harness: regenerates every quantitative claim of the paper.

Each ``experiment_*`` function computes one experiment from DESIGN.md's
index (E1–E10) and returns a :class:`~repro.util.tables.Table` whose
rows are also available structurally for assertions.  The benchmark
suite wraps these functions with pytest-benchmark so the tables and the
timings are produced by the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.greedy import greedy_drc_covering
from ..baselines.nondrc import greedy_triangle_cover
from ..core.bounds import lower_bound, total_size_lower_bound
from ..core.construction import fast_covering, optimal_covering
from ..core.covering import Covering
from ..core.drc import brute_force_routing, paper_example_blocks
from ..core.formulas import (
    optimal_excess,
    rho,
    theorem_cycle_mix,
    triangle_covering_number,
)
from ..core.verify import verify_covering
from ..extensions.lambda_fold import lambda_covering, lambda_lower_bound
from ..extensions.topologies import (
    greedy_graph_covering,
    grid_network,
    ring_network_graph,
    torus_network,
    tree_of_rings,
)
from ..survivability.metrics import evaluate_survivability
from ..traffic.instances import all_to_all, lambda_all_to_all
from ..util.tables import Table
from ..wdm.design import design_ring_network

__all__ = [
    "experiment_theorem1",
    "experiment_theorem2",
    "experiment_paper_example",
    "experiment_cost_model",
    "experiment_nondrc_baseline",
    "experiment_survivability",
    "experiment_lambda_fold",
    "experiment_topologies",
    "experiment_solver_certification",
    "DEFAULT_ODD_RANGE",
    "DEFAULT_EVEN_RANGE",
]

DEFAULT_ODD_RANGE: tuple[int, ...] = (5, 7, 9, 11, 13, 15, 17, 21, 25, 31, 41)
DEFAULT_EVEN_RANGE: tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16, 18, 22, 26, 30)


@dataclass
class ExperimentResult:
    """A rendered table plus machine-checkable row data."""

    table: Table
    rows: list[dict]

    def render(self) -> str:
        return self.table.render()


# -- E1 / E2: the theorems -------------------------------------------------


def _theorem_row(n: int) -> dict:
    cov = optimal_covering(n)
    report = verify_covering(cov, expect_optimal=True)
    mix = theorem_cycle_mix(n)
    return {
        "n": n,
        "p": n // 2,
        "rho_formula": rho(n),
        "constructed": cov.num_blocks,
        "lower_bound": lower_bound(n).value,
        "c3_formula": mix[3],
        "c3_measured": cov.num_triangles,
        "c4_formula": mix[4],
        "c4_measured": cov.num_quads,
        "excess_formula": optimal_excess(n),
        "excess_measured": cov.excess(),
        "valid": report.valid,
        "optimal": bool(report.optimal),
    }


def experiment_theorem1(odd_ns: tuple[int, ...] = DEFAULT_ODD_RANGE) -> ExperimentResult:
    """E1 — Theorem 1: ρ(2p+1) = p(p+1)/2 with p C3 + p(p−1)/2 C4."""
    table = Table(
        "E1 / Theorem 1 — DRC-covering of K_n over C_n, n odd",
        ["n", "ρ formula", "constructed", "lower bnd", "C3 (thm/got)", "C4 (thm/got)", "exact", "optimal"],
    )
    rows = []
    for n in odd_ns:
        if n % 2 == 0:
            raise ValueError(f"E1 takes odd n, got {n}")
        row = _theorem_row(n)
        rows.append(row)
        table.add_row(
            n,
            row["rho_formula"],
            row["constructed"],
            row["lower_bound"],
            f"{row['c3_formula']}/{row['c3_measured']}",
            f"{row['c4_formula']}/{row['c4_measured']}",
            row["excess_measured"] == 0,
            row["optimal"],
        )
    return ExperimentResult(table, rows)


def experiment_theorem2(even_ns: tuple[int, ...] = DEFAULT_EVEN_RANGE) -> ExperimentResult:
    """E2 — Theorem 2: ρ(2p) = ⌈(p²+1)/2⌉ with the stated C3/C4 mixes."""
    table = Table(
        "E2 / Theorem 2 — DRC-covering of K_n over C_n, n even",
        ["n", "ρ formula", "constructed", "lower bnd", "C3 (thm/got)", "C4 (thm/got)", "excess (thm/got)", "optimal"],
    )
    rows = []
    for n in even_ns:
        if n % 2 == 1:
            raise ValueError(f"E2 takes even n, got {n}")
        row = _theorem_row(n)
        rows.append(row)
        table.add_row(
            n,
            row["rho_formula"],
            row["constructed"],
            row["lower_bound"],
            f"{row['c3_formula']}/{row['c3_measured']}",
            f"{row['c4_formula']}/{row['c4_measured']}",
            f"{row['excess_formula']}/{row['excess_measured']}",
            row["optimal"],
        )
    return ExperimentResult(table, rows)


# -- E3: the worked example --------------------------------------------------


def experiment_paper_example() -> ExperimentResult:
    """E3 — the paper's C4/K4 illustration, reproduced verbatim.

    The covering {C4(1,2,3,4), C4(1,3,4,2)} fails the DRC on its second
    cycle; {C4(1,2,3,4), C3(1,2,4), C3(1,3,4)} satisfies it and covers
    K4.
    """
    blocks = paper_example_blocks()
    table = Table(
        "E3 — paper example on G=C4, I=K4 (paper labels 1..4 = ours 0..3 +1)",
        ["cycle", "DRC routable", "note"],
    )
    rows = []
    for name, (n, blk) in blocks.items():
        routing = brute_force_routing(n, blk)
        routable = routing is not None
        note = {
            "ring": "physical ring itself",
            "bad": "requests (1,3) and (2,4) clash — paper's negative case",
            "tri1": "valid covering member",
            "tri2": "valid covering member",
        }[name]
        rows.append({"name": name, "vertices": blk.vertices, "routable": routable})
        table.add_row(str(tuple(v + 1 for v in blk.vertices)), routable, note)

    good = Covering(4, (blocks["ring"][1], blocks["tri1"][1], blocks["tri2"][1]))
    bad = Covering(4, (blocks["ring"][1], blocks["bad"][1]))
    rows.append(
        {
            "name": "coverings",
            "good_valid": verify_covering(good).valid,
            "bad_drc": bad.is_drc_feasible(),
            "good_covers": good.covers(),
            "bad_covers": bad.covers(),
        }
    )
    table.add_row("{(1,2,3,4),(1,3,4,2)}", False, "covers K4 but violates DRC")
    table.add_row("{(1,2,3,4),(1,2,4),(1,3,4)}", True, "paper's valid covering, ρ(4)=3")
    return ExperimentResult(table, rows)


# -- E4: cost model -----------------------------------------------------------


def experiment_cost_model(ns: tuple[int, ...] = (7, 9, 11, 13, 15, 17)) -> ExperimentResult:
    """E4 — itemised network cost: Theorem coverings vs alternatives.

    Compares the ρ-optimal covering against the polynomial fallback and
    greedy, and checks that the Theorem coverings simultaneously attain
    the ADM (ring-size-sum) optimum of refs [3]/[4].
    """
    table = Table(
        "E4 — cost model on the ring (ADM/transit/λ/amplification)",
        ["n", "method", "cycles", "ADMs", "ADM min", "λs", "total cost"],
    )
    rows = []
    for n in ns:
        methods = {
            "theorem": optimal_covering(n),
            "fast": fast_covering(n),
            "greedy": greedy_drc_covering(n),
        }
        for name, cov in methods.items():
            design = design_ring_network(n) if name == "theorem" else None
            from ..wdm.adm import evaluate_cost

            cost = evaluate_cost(cov)
            row = {
                "n": n,
                "method": name,
                "cycles": cov.num_blocks,
                "adms": cov.total_slots,
                "adm_lb": total_size_lower_bound(all_to_all(n)).value,
                "wavelengths": 2 * cov.num_blocks,
                "total": cost.total,
                "design_ok": design is not None,
            }
            rows.append(row)
            table.add_row(
                n, name, row["cycles"], row["adms"], row["adm_lb"],
                row["wavelengths"], round(row["total"], 1),
            )
    return ExperimentResult(table, rows)


# -- E5: non-DRC baseline ------------------------------------------------------


def experiment_nondrc_baseline(
    ns: tuple[int, ...] = (5, 7, 9, 11, 13, 15, 17, 19, 21),
) -> ExperimentResult:
    """E5 — the price of routability.

    Two reference points from the paper's related-work discussion:

    * the cited triangle covering number ``⌈n/3⌈(n−1)/2⌉⌉`` ([6, 7]) —
      covering by C3 only, no DRC;
    * covering by cycles of length ≤ 4 *without* the DRC (greedy, with
      the Schönheim-style lower bound) — the like-for-like comparison
      showing what the routing constraint itself costs (ρ(n) minus the
      unconstrained bound).
    """
    from ..baselines.nondrc import greedy_cycle_cover
    from ..core.formulas import cycle_cover_lower_bound

    table = Table(
        "E5 — DRC-covering vs classical (non-DRC) cycle covers of K_n",
        ["n", "ρ(n) [DRC]", "C3-cover formula", "greedy C3", "≤C4 LB (no DRC)", "greedy ≤C4", "DRC price"],
    )
    rows = []
    for n in ns:
        drc = rho(n)
        formula = triangle_covering_number(n)
        greedy3 = len(greedy_triangle_cover(n))
        lb4 = cycle_cover_lower_bound(n, 4)
        greedy4 = len(greedy_cycle_cover(n, 4))
        rows.append(
            {"n": n, "rho": drc, "formula": formula, "greedy3": greedy3,
             "lb4": lb4, "greedy4": greedy4, "price": drc - lb4}
        )
        table.add_row(n, drc, formula, greedy3, lb4, greedy4, drc - lb4)
    return ExperimentResult(table, rows)


# -- E6: survivability ----------------------------------------------------------


def experiment_survivability(ns: tuple[int, ...] = (6, 8, 9, 11, 13, 16)) -> ExperimentResult:
    """E6 — single-link failure sweep: every fiber cut is recovered by
    in-cycle protection switching; overhead is the dedicated 100%."""
    table = Table(
        "E6 — automatic protection switching under single fiber cuts",
        ["n", "cycles", "failures", "recovered", "avg reroutes", "max stretch", "overhead"],
    )
    rows = []
    for n in ns:
        design = design_ring_network(n)
        report = evaluate_survivability(design)
        rows.append(
            {
                "n": n,
                "cycles": report.num_subnetworks,
                "failures": report.failures_simulated,
                "recovered": report.failures_recovered,
                "survivable": report.fully_survivable,
                "mean_affected": report.mean_affected_per_failure,
                "max_stretch": report.max_stretch,
            }
        )
        table.add_row(
            n,
            report.num_subnetworks,
            report.failures_simulated,
            report.failures_recovered,
            round(report.mean_affected_per_failure, 1),
            round(report.max_stretch, 2),
            f"{report.capacity_overhead:.0%}",
        )
    return ExperimentResult(table, rows)


# -- E8: λK_n ---------------------------------------------------------------------


def experiment_lambda_fold(
    ns: tuple[int, ...] = (5, 7, 9, 6, 8, 10),
    lams: tuple[int, ...] = (1, 2, 3),
) -> ExperimentResult:
    """E8 — λK_n coverings: proven lower bound vs best construction."""
    table = Table(
        "E8 — DRC-covering of λK_n (paper future work)",
        ["n", "λ", "lower bnd", "constructed", "gap", "valid"],
    )
    rows = []
    for n in ns:
        for lam in lams:
            lb = lambda_lower_bound(n, lam).value
            cov = lambda_covering(n, lam)
            valid = cov.covers(lambda_all_to_all(n, lam)) and cov.is_drc_feasible()
            rows.append(
                {"n": n, "lam": lam, "lb": lb, "built": cov.num_blocks,
                 "gap": cov.num_blocks - lb, "valid": valid}
            )
            table.add_row(n, lam, lb, cov.num_blocks, cov.num_blocks - lb, valid)
    return ExperimentResult(table, rows)


# -- E9: topologies ------------------------------------------------------------------


def experiment_topologies() -> ExperimentResult:
    """E9 — DRC coverings beyond the ring: tree of rings, grid, torus.

    Includes wavelength counts from conflict-graph coloring: on a ring
    no sharing is possible (each routing tiles all fibers), while mesh
    topologies pack several subnetworks per wavelength.
    """
    from ..wdm.coloring import color_wavelengths

    nets = [
        ring_network_graph(8),
        tree_of_rings((5, 5)),
        tree_of_rings((4, 4, 4)),
        grid_network(3, 3),
        torus_network(3, 3),
    ]
    table = Table(
        "E9 — greedy DRC-covering of All-to-All on other topologies",
        ["topology", "nodes", "links", "cycles", "wavelengths", "ρ(ring same order)"],
    )
    rows = []
    for net in nets:
        blocks = greedy_graph_covering(net)
        plan = color_wavelengths(net, blocks)
        n = net.num_nodes
        rows.append(
            {"name": net.name, "nodes": n, "links": net.num_links,
             "cycles": len(blocks), "wavelengths": plan.num_wavelengths,
             "ring_rho": rho(n)}
        )
        table.add_row(net.name, n, net.num_links, len(blocks),
                      plan.num_wavelengths, rho(n))
    return ExperimentResult(table, rows)


def experiment_protection_vs_restoration(
    ns: tuple[int, ...] = (8, 11, 14, 17),
) -> ExperimentResult:
    """E11 — the paper's §1 survivability-scheme comparison, quantified.

    Protection (the paper's covering design) vs pooled restoration on
    the same ring and traffic: capacity (working + spare) and failure
    blast radius.  Headline: on a ring restoration saves no spare
    (no path diversity), so the covering's fast local protection wins.
    """
    from ..survivability.restoration import protection_vs_restoration

    table = Table(
        "E11 — protection (covering) vs pooled restoration on C_n",
        ["n", "scheme", "working cap", "spare cap", "overhead", "worst blast radius"],
    )
    rows = []
    for n in ns:
        c = protection_vs_restoration(n)
        rows.append(c)
        table.add_row(
            n, "protection", c["protection_working"], c["protection_spare"],
            f"{c['protection_overhead']:.0%}", c["protection_reroutes_per_failure"],
        )
        table.add_row(
            n, "restoration", c["restoration_working"], c["restoration_spare"],
            f"{c['restoration_overhead']:.0%}", c["restoration_reroutes_worst"],
        )
    return ExperimentResult(table, rows)


# -- E10: exact certification ----------------------------------------------------------


def experiment_dual_failures(ns: tuple[int, ...] = (8, 10, 12, 14)) -> ExperimentResult:
    """E12 — beyond the design point: simultaneous double fiber cuts.

    The paper's scheme guarantees single-failure recovery; this
    experiment measures graceful degradation under dual failures
    (disconnections are physical — two cuts split any ring — not a
    scheme defect).
    """
    from ..survivability.dual import analyze_dual_failures

    table = Table(
        "E12 — dual-failure degradation (all C(n,2) cut pairs)",
        ["n", "pairs", "fully survive", "mean survival", "worst survival"],
    )
    rows = []
    for n in ns:
        report = analyze_dual_failures(design_ring_network(n))
        rows.append(
            {
                "n": n,
                "pairs": len(report.outcomes),
                "full": report.fully_survivable_pairs,
                "mean": report.mean_survival,
                "worst": report.worst_survival,
            }
        )
        table.add_row(
            n, len(report.outcomes), report.fully_survivable_pairs,
            f"{report.mean_survival:.1%}", f"{report.worst_survival:.1%}",
        )
    return ExperimentResult(table, rows)


def experiment_solver_certification(
    ns: tuple[int, ...] = (4, 5, 6, 7, 8),
    *,
    workers: int | None = None,
    shard_threshold: int | None = None,
    time_budget: float | None = None,
    transport: str | None = "inproc",
    dispatch_workers: int | None = 1,
) -> ExperimentResult:
    """E10 — branch-and-bound certification through the declarative API:
    one ``CoverSpec`` per ring size with the exact backends pinned and
    hints disabled, so the solver — which knows no formulas — must
    independently return exactly ρ(n).  The batch runs through the
    distributed dispatcher (:func:`repro.dispatch.dispatch_batch`) in
    FIFO order; the default in-process single-worker transport keeps
    the per-n wall-clock exact for the benchmark trajectory, while
    ``transport="subprocess"``/``"spool"`` (and ``dispatch_workers``)
    certify the same sweep across a worker fleet.  Ring sizes ≥
    ``shard_threshold`` additionally go through the root-orbit-sharded
    scale-out backend (``workers`` processes per solve).

    ``time_budget`` caps the *sweep's* total wall-clock: jobs not yet
    started when it runs out are reported as skipped instead of run —
    the gate that keeps CLI-driven full runs fast.  The benchmark suite
    passes no budget and gets the full sweep.
    """
    from .. import api
    from ..dispatch import dispatch_batch

    table = Table(
        "E10 — exact solver certification of ρ(n)",
        ["n", "solver optimum", "ρ formula", "match", "proven", "nodes explored", "seconds"],
    )
    specs = []
    for n in ns:
        backend = (
            "exact_sharded"
            if shard_threshold is not None and n >= shard_threshold
            else "exact"
        )
        specs.append(
            api.CoverSpec.for_ring(n, backend=backend, use_hints=False, workers=workers)
        )
    report = dispatch_batch(
        specs,
        transport=transport or "inproc",
        workers=dispatch_workers,
        order="fifo",
        time_budget=time_budget,
    )
    by_hash = {result.spec_hash: result for result in report.results}
    rows = []
    for n, spec in zip(ns, specs):
        result = by_hash.get(spec.spec_hash)
        if result is None:  # budget ran out before this ring size started
            rows.append({"n": n, "skipped": True})
            table.add_row(n, "—", rho(n), "—", "—", "—", "over budget")
            continue
        elapsed = report.seconds[spec.spec_hash]
        match = result.num_blocks == rho(n)
        rows.append(
            {"n": n, "solver": result.num_blocks, "formula": rho(n), "match": match,
             "proven": result.status == "proven_optimal", "nodes": result.stats.nodes,
             "seconds": elapsed}
        )
        table.add_row(
            n, result.num_blocks, rho(n), match, result.status == "proven_optimal",
            result.stats.nodes, round(elapsed, 3),
        )
    return ExperimentResult(table, rows)
