"""ASCII visualisation of rings, blocks and routings.

Terminal-friendly renderings used by the examples and handy in a REPL:
no plotting dependency, deterministic output (snapshot-testable).

``render_ring_block`` draws the ring as a circle of labelled nodes with
the block's members marked; ``render_routing`` shows which arc serves
each request as a linear link map; ``render_coverage_heatline`` shows
per-chord coverage multiplicities grouped by distance class.
"""

from __future__ import annotations

import math

from ..core.blocks import CycleBlock
from ..core.covering import Covering
from ..rings.routing import RingRouting
from ..util import circular

__all__ = ["render_ring_block", "render_routing", "render_coverage_heatline"]


def render_ring_block(n: int, block: CycleBlock, *, radius: int = 8) -> str:
    """Draw ``C_n`` as a character-grid circle; block members are shown
    as ``[v]``, other nodes as ``v``."""
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    members = set(block.vertices)
    width = 4 * radius + 10
    height = 2 * radius + 3
    grid = [[" "] * width for _ in range(height)]

    for v in range(n):
        angle = -2 * math.pi * v / n + math.pi / 2  # vertex 0 at the top
        x = int(round((2 * radius) * math.cos(angle))) + width // 2
        y = int(round(radius * -math.sin(angle))) + height // 2
        label = f"[{v}]" if v in members else f" {v} "
        for i, ch in enumerate(label):
            xi = x - len(label) // 2 + i
            if 0 <= xi < width and 0 <= y < height:
                grid[y][xi] = ch

    lines = ["".join(row).rstrip() for row in grid]
    header = f"C_{n} with block {tuple(block.vertices)}"
    return "\n".join([header] + [line for line in lines if line])


def render_routing(routing: RingRouting) -> str:
    """Linear link-map of a routing: one row per request, ``█`` on the
    links its arc occupies.  Edge-disjointness is visible as no column
    holding two marks."""
    n = routing.n
    header = "links:    " + "".join(f"{i % 10}" for i in range(n))
    rows = [header]
    for request in routing.requests:
        arc = routing.arc_for(request)
        cells = ["█" if arc.uses_link(i) else "·" for i in range(n)]
        rows.append(f"{str(request):10s}" + "".join(cells))
    return "\n".join(rows)


def render_coverage_heatline(covering: Covering) -> str:
    """Per-distance-class coverage summary, one row per class:
    ``d=2  ████████·· 8/10 covered, 1 excess``."""
    n = covering.n
    cov = covering.coverage
    lines = [f"coverage by distance class (n={n}):"]
    for d in range(1, n // 2 + 1):
        class_chords = [
            (i, (i + d) % n) for i in range(n if (n % 2 or d < n // 2) else n // 2)
        ]
        class_chords = [tuple(sorted(e)) for e in class_chords]
        covered = sum(1 for e in class_chords if cov.get(e, 0) >= 1)
        excess = sum(max(0, cov.get(e, 0) - 1) for e in class_chords)
        total = len(class_chords)
        bar = "█" * covered + "·" * (total - covered)
        extra = f", {excess} excess" if excess else ""
        lines.append(f"  d={d:<2d} {bar} {covered}/{total} covered{extra}")
    return "\n".join(lines)
