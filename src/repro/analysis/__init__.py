"""Experiment harness regenerating the paper's quantitative content."""

from . import viz
from .statistics import CoveringStatistics, covering_statistics
from .experiments import (
    DEFAULT_EVEN_RANGE,
    DEFAULT_ODD_RANGE,
    ExperimentResult,
    experiment_cost_model,
    experiment_lambda_fold,
    experiment_nondrc_baseline,
    experiment_paper_example,
    experiment_dual_failures,
    experiment_protection_vs_restoration,
    experiment_solver_certification,
    experiment_survivability,
    experiment_theorem1,
    experiment_theorem2,
    experiment_topologies,
)

__all__ = [
    "CoveringStatistics",
    "covering_statistics",
    "viz",
    "DEFAULT_EVEN_RANGE",
    "DEFAULT_ODD_RANGE",
    "ExperimentResult",
    "experiment_cost_model",
    "experiment_lambda_fold",
    "experiment_nondrc_baseline",
    "experiment_paper_example",
    "experiment_dual_failures",
    "experiment_protection_vs_restoration",
    "experiment_solver_certification",
    "experiment_survivability",
    "experiment_theorem1",
    "experiment_theorem2",
    "experiment_topologies",
]
