"""Incremental cardinality layer: clamped (generalized) totalizers.

The ``sat`` backend's downward walk needs "at most ``k`` blocks" to
tighten monotonically — ``k`` drops by at least one after every SAT
answer — *without re-encoding*.  The classic MARCO-style device is a
totalizer: a balanced merge tree over the selector literals whose root
exposes one output literal per reachable count ``v`` meaning "at least
``v`` inputs are true".  Enforcing ``≤ k`` is then just *assuming* the
negation of the ``≥ k+1`` output — a single reusable assumption
literal per ``k``, and the literal the UNSAT core names when ``k`` is
below the optimum.

:class:`Totalizer` generalises this to weighted inputs (the encoding's
counting-budget strengthening counts slack mass, not blocks) and clamps
sums at ``cap + 1``: every sum above the largest bound the walk will
ever query collapses onto one overflow literal, which keeps the clause
count ``O(items · cap)`` instead of quadratic.

Clause semantics are one-directional (inputs imply outputs), which is
exactly what bound *assumptions* need: an output literal can be set
true vacuously, but can never be *false* while the true input sum
reaches its value.  Intra-node ordering clauses (``≥ v'`` implies
``≥ v`` for ``v < v'``) make a single negated output literal forbid
every larger sum, so one assumption per bound suffices.

:class:`CardinalityBound` wraps the unweighted selector-count instance
and hands the backend its per-``k`` assumption/guard literals;
:func:`at_least` encodes fixed "at least ``m`` of these literals"
constraints (λ-fold coverage) through the same builder over negated
inputs.
"""

from __future__ import annotations

from ..util.errors import SolverError

__all__ = ["Totalizer", "CardinalityBound", "at_least"]


class Totalizer:
    """A clamped weighted totalizer over ``(literal, weight)`` items.

    Output literals live in ``solver`` (any object with ``new_var`` and
    ``add_clause``); :meth:`geq` maps a target sum to the literal
    meaning "the true inputs weigh at least that much" (``None`` when
    the inputs can never weigh that much).  Sums above ``cap`` clamp
    onto the single value ``cap + 1``.
    """

    def __init__(self, solver, items, cap: int) -> None:
        if cap < 0:
            raise SolverError(f"totalizer cap must be non-negative, got {cap}")
        self._solver = solver
        self._cap = cap
        self._overflow = cap + 1
        nodes = []
        for lit, weight in items:
            weight = int(weight)
            if weight <= 0:
                raise SolverError(f"totalizer weights must be positive, got {weight}")
            nodes.append({min(weight, self._overflow): int(lit)})
        if not nodes:
            self._values: tuple[int, ...] = ()
            self._lits: dict[int, int] = {}
            return
        # Balanced bottom-up merge: pair adjacent nodes until one root
        # remains.  Deterministic (input order) and shallow (log depth).
        while len(nodes) > 1:
            merged = []
            for i in range(0, len(nodes) - 1, 2):
                merged.append(self._merge(nodes[i], nodes[i + 1]))
            if len(nodes) % 2:
                merged.append(nodes[-1])
            nodes = merged
        root = nodes[0]
        self._lits = root
        self._values = tuple(sorted(root))
        self._add_ordering(root)

    def _merge(self, a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
        clamp = self._overflow
        sums = set(a) | set(b)
        for va in a:
            for vb in b:
                sums.add(min(va + vb, clamp))
        node = {v: self._solver.new_var() for v in sorted(sums)}
        add = self._solver.add_clause
        for va, la in a.items():
            add([-la, node[va]])
        for vb, lb in b.items():
            add([-lb, node[vb]])
        for va, la in a.items():
            for vb, lb in b.items():
                add([-la, -lb, node[min(va + vb, clamp)]])
        return node

    def _add_ordering(self, node: dict[int, int]) -> None:
        # ``≥ v'`` implies ``≥ v`` for consecutive root values, so a
        # single negated output forbids every sum above it.
        add = self._solver.add_clause
        ordered = sorted(node)
        for lo, hi in zip(ordered, ordered[1:]):
            add([-node[hi], node[lo]])

    @property
    def max_value(self) -> int:
        """Largest representable (possibly clamped) sum, 0 when empty."""
        return self._values[-1] if self._values else 0

    def geq(self, target: int) -> int | None:
        """The output literal asserting "true inputs weigh ≥ ``target``",
        or ``None`` when no reachable sum is that large (the constraint
        "< target" is then vacuously true).  ``target`` must not exceed
        ``cap + 1`` — larger bounds were clamped away at build time."""
        if target <= 0:
            raise SolverError(f"geq target must be positive, got {target}")
        if target > self._overflow:
            raise SolverError(
                f"geq target {target} exceeds the totalizer cap {self._cap} + 1"
            )
        for v in self._values:
            if v >= target:
                return self._lits[v]
        return None


class CardinalityBound:
    """The selector-count totalizer behind the walk's "≤ k" bounds.

    ``assumption(k)`` is the literal to *assume* for "at most ``k``
    selectors true" (``None`` when the bound is vacuous);
    ``guard(k)`` is the positive "≥ k+1" literal that k-conditional
    strengthening clauses embed so they only bite under that bound.
    Both are stable across calls — the reusable-assumption contract.
    """

    def __init__(self, solver, selector_lits, k_max: int) -> None:
        self._k_max = int(k_max)
        self._tot = Totalizer(
            solver, [(lit, 1) for lit in selector_lits], cap=self._k_max
        )

    @property
    def k_max(self) -> int:
        return self._k_max

    def guard(self, k: int) -> int | None:
        """The "count ≥ k+1" output literal, ``None`` when unreachable."""
        if not 0 <= k <= self._k_max:
            raise SolverError(
                f"cardinality bound k={k} outside the encoded range 0..{self._k_max}"
            )
        return self._tot.geq(k + 1)

    def assumption(self, k: int) -> int | None:
        """The assumption literal enforcing "≤ k" (``None`` = vacuous)."""
        g = self.guard(k)
        return None if g is None else -g


def at_least(solver, lits, m: int) -> None:
    """Add clauses forcing at least ``m`` of ``lits`` true.

    ``m = 1`` is the plain clause; larger ``m`` (λ-fold coverage) uses
    a sequential-counter chain — ``s[j][c]`` reads "the first ``j``
    literals contain at least ``c`` trues", the root unit asserts
    ``s[L][m]``, and the chain clauses let the solver walk the claim
    down to actual input literals.  ``O(len · m)`` clauses, so λ-fold
    demand stays cheap where the totalizer over negations would be
    quadratic.
    """
    lits = list(lits)
    m = int(m)
    if m <= 0:
        return
    if len(lits) < m:
        raise SolverError(
            f"at-least-{m} constraint over {len(lits)} literals is unsatisfiable"
        )
    if m == 1:
        solver.add_clause(lits)
        return
    # prev[c] / cur[c] hold s[j-1][c] / s[j][c] for c = 1..m; s[j][0]
    # is constant-true and s[0][c>0] constant-false (both substituted).
    prev: list[int | None] = [None] * (m + 1)
    for j, x in enumerate(lits, start=1):
        cur: list[int | None] = [None] * (m + 1)
        top = min(j, m)
        for c in range(1, top + 1):
            s = solver.new_var()
            cur[c] = s
            below = prev[c]  # None exactly when j-1 < c (constant false)
            # s[j][c] → s[j-1][c] ∨ x_j
            clause = [-s, x]
            if below is not None and j - 1 >= c:
                clause.append(below)
            solver.add_clause(clause)
            # s[j][c] → s[j-1][c] ∨ s[j-1][c-1]   (tautology when c = 1)
            if c > 1:
                clause = [-s, prev[c - 1]]
                if below is not None and j - 1 >= c:
                    clause.append(below)
                solver.add_clause(clause)
        prev = cur
    root = prev[m]
    assert root is not None
    solver.add_clause([root])
