"""``repro.sat`` — incremental cardinality-SAT certification.

The subsystem that breaks the ``n = 12`` wall: where the exact
branch-and-bound tiers face even ``n``'s counting/packing gap with pure
exhaustion, this backend encodes min-covering over the memoized block
table as CNF, walks "at most ``k`` blocks" downward MARCO-style under
reusable assumption literals, and returns ``proven_optimal`` envelopes
whose lower bound is a *replayable* UNSAT assumption core.

Modules:

* :mod:`repro.sat.cnf` — the deterministic CNF encoding (selectors
  over the block table, λ-fold coverage, dihedral symmetry breaking,
  counting-budget strengthening) with SHA-256 provenance;
* :mod:`repro.sat.card` — incremental cardinality layer (clamped
  weighted totalizers, sequential at-least chains);
* :mod:`repro.sat.cdcl` — the dependency-free CDCL solver (watched
  literals, 1UIP learning, assumptions, deterministic VSIDS), the
  contractual fallback engine;
* :mod:`repro.sat.engines` — ``REPRO_SAT={internal,pysat}`` engine
  selection mirroring the ``REPRO_KERNEL`` probe contract;
* :mod:`repro.sat.backend` — the registered ``sat`` backend and the
  :func:`~repro.sat.backend.replay_unsat_core` certificate audit.
"""

from .backend import SAT_MAX_N, SatBackend, replay_unsat_core
from .card import CardinalityBound, Totalizer, at_least
from .cdcl import Cdcl
from .cnf import Cnf, CoveringEncoding, attach_walk_layers, build_covering_cnf
from .engines import (
    NO_PYSAT_ENV,
    SAT_ENGINE_ENV,
    SAT_ENGINES,
    available_engines,
    new_solver,
    pysat_available,
    resolve_engine,
)

__all__ = [
    "Cdcl",
    "Cnf",
    "CoveringEncoding",
    "CardinalityBound",
    "Totalizer",
    "at_least",
    "attach_walk_layers",
    "build_covering_cnf",
    "SatBackend",
    "SAT_MAX_N",
    "replay_unsat_core",
    "SAT_ENGINE_ENV",
    "SAT_ENGINES",
    "NO_PYSAT_ENV",
    "available_engines",
    "new_solver",
    "pysat_available",
    "resolve_engine",
]
