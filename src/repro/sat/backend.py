"""The ``sat`` backend: incremental cardinality-SAT certification.

The exact branch-and-bound tiers stall on even ``n``'s counting/packing
gap — at ``n = 12`` the ``K_n`` proof preempts at 184k nodes with no
end in sight.  This backend certifies the same optima by a different
argument entirely: encode min-covering over the memoized block table as
CNF (:mod:`repro.sat.cnf`), attach an incremental cardinality layer
plus the counting-budget strengthening (:mod:`repro.sat.card`), and
walk ``k`` downward from the greedy/improver incumbent —

* SAT under the "≤ k" assumption → a verified covering of ``k`` blocks
  becomes the new incumbent, ``k`` drops to one below it;
* UNSAT → the assumption core *is* the lower-bound certificate: the
  single reusable "≤ k" literal whose refutation proves no covering of
  ``k`` blocks exists, so the incumbent is optimal.

The envelope's ``sat_certificate`` records the core, the engine, the
encoding provenance (CNF SHA-256, ``k_start``, symmetry clause), and
per-``k`` statistics; :func:`replay_unsat_core` rebuilds the encoding
from the spec alone, checks the SHA, and re-refutes the recorded core
with the dependency-free internal CDCL — the audit step CI runs.

Each ``k`` step runs on a **fresh** solver instance over the same
recorded clause list, so per-``k`` statistics are independent of walk
history: a run preempted at any ``k`` boundary and resumed later (even
under the other engine is *refused* — engines may count conflicts
differently) finishes with the byte-identical envelope, pinned by the
differential suite.  Deadlines, dispatcher preemption, and the node
limit (mapped to cumulative conflicts) poll every 512 conflicts via the
internal engine's tick hook; the pysat fast path polls between ``k``
steps only.
"""

from __future__ import annotations

import time

from ..api.backends import (
    _deadline_of,
    _node_limit_of,
    _objective_of,
    warm_start_bound,
)
from ..api.checkpoints import CheckpointStore
from ..api.result import Result
from ..api.spec import CoverSpec, SpecError
from ..core.checkpoint import KIND_SAT, SearchCheckpoint
from ..core.covering import Covering
from ..core.engine import SolverEngine, SolverStats
from ..core.verify import assert_valid_covering
from ..util.errors import SolverError, SolverPreempted
from .cnf import CoveringEncoding, attach_walk_layers, build_covering_cnf
from .engines import load_encoding, new_solver, resolve_engine

__all__ = ["SatBackend", "SAT_MAX_N", "replay_unsat_core"]

#: The encoding stays tractable while the block table does: past this
#: the table itself (C(n+1, 4) blocks) dwarfs the budget strengthening.
SAT_MAX_N = 16

_TICK_EVERY = 512


class _Abort(Exception):
    """Internal signal: a tick hook saw a deadline/preempt/limit."""

    def __init__(self, kind: str) -> None:
        self.kind = kind


class SatBackend:
    """Downward cardinality walk over the CNF encoding, per-``k``
    checkpoints, replayable UNSAT-core optimality certificates."""

    name = "sat"

    def supports(self, spec: CoverSpec) -> bool:
        # Block-count objective only: the cardinality layer counts
        # selectors, not slots.  Size restrictions and λ > 1 both fold
        # into the encoding.
        return spec.objective == "min_blocks" and 3 <= spec.n <= SAT_MAX_N

    def run(
        self,
        spec: CoverSpec,
        *,
        checkpoints=None,
        checkpoint_every: int | None = None,
        preempt=None,
    ) -> Result:
        if not self.supports(spec):
            raise SpecError(
                "sat backend certifies min_blocks specs with "
                f"3 ≤ n ≤ {SAT_MAX_N} only"
            )
        engine = resolve_engine()
        deadline = _deadline_of(spec)
        node_limit = _node_limit_of(spec)
        store = CheckpointStore.open(checkpoints)
        resume = store.load(spec.spec_hash) if store is not None else None

        incumbent = self._incumbent_blocks(spec)
        k_start = len(incumbent) - 1
        best_blocks: list[tuple[int, ...]] = incumbent
        k_next = k_start
        per_k: list[list] = []
        done_conflicts = 0
        done_decisions = 0
        done_propagations = 0
        resumes = 0
        if resume is not None:
            resume.check_compatible(
                kind=KIND_SAT,
                n=spec.n,
                max_size=spec.max_size,
                objective=spec.objective,
                allowed_sizes=spec.allowed_sizes,
            )
            state = resume.sat_state or {}
            if state.get("engine") != engine:
                raise SolverError(
                    f"sat checkpoint was taken under engine "
                    f"{state.get('engine')!r} but this process resolved "
                    f"{engine!r} — per-k statistics are engine-specific, "
                    "re-run under the recorded engine or drop the checkpoint"
                )
            k_start = int(state["k_start"])
            k_next = int(state["k_next"])
            per_k = [list(row) for row in state.get("per_k", [])]
            done_conflicts = int(state.get("conflicts", 0))
            done_decisions = int(state.get("decisions", 0))
            done_propagations = int(state.get("propagations", 0))
            resumes = resume.resumes
            if resume.best_blocks is not None:
                best_blocks = [tuple(vs) for vs in resume.best_blocks]

        enc = build_covering_cnf(spec)
        attach_walk_layers(enc, k_start)

        def capture() -> SearchCheckpoint:
            return SearchCheckpoint(
                kind=KIND_SAT,
                n=spec.n,
                max_size=spec.max_size,
                objective=spec.objective,
                nodes=done_conflicts,
                best_value=len(best_blocks),
                best_blocks=tuple(tuple(v) for v in best_blocks),
                frames=[],
                memo=[],
                allowed_sizes=spec.allowed_sizes,
                sat_state={
                    "engine": engine,
                    "k_start": k_start,
                    "k_next": k_next,
                    "per_k": [list(row) for row in per_k],
                    "conflicts": done_conflicts,
                    "decisions": done_decisions,
                    "propagations": done_propagations,
                },
                resumes=resumes,
            )

        def flush() -> None:
            if store is not None:
                store.save(spec.spec_hash, capture())

        def raise_interrupt(kind: str, extra_conflicts: int) -> None:
            # The aborted k step's partial statistics are *discarded*:
            # resume re-runs that k on a fresh solver, reproducing the
            # uninterrupted run's per-k numbers exactly.
            stats = SolverStats(
                nodes=done_conflicts + extra_conflicts,
                best_value=len(best_blocks),
                proven_optimal=False,
            )
            flush()
            ckpt = capture()
            if kind == "node_limit":
                raise SolverError(
                    f"sat backend exceeded node limit {node_limit} "
                    f"(cumulative conflicts) for n={spec.n}",
                    checkpoint=ckpt,
                    best_blocks=list(best_blocks),
                    best_value=len(best_blocks),
                    stats=stats,
                )
            if kind == "deadline":
                raise SolverPreempted(
                    f"solver exceeded its time budget for n={spec.n}",
                    checkpoint=ckpt,
                    best_blocks=list(best_blocks),
                    best_value=len(best_blocks),
                    stats=stats,
                )
            raise SolverPreempted(
                f"solver preempted at {done_conflicts + extra_conflicts} "
                f"conflicts for n={spec.n}",
                checkpoint=ckpt,
                best_blocks=list(best_blocks),
                best_value=len(best_blocks),
                stats=stats,
            )

        unsat_k: int | None = None
        core: tuple[int, ...] = ()
        trivial = False
        while k_next >= 0:
            k = k_next
            if enc.trivial_below is not None and k < enc.trivial_below:
                # The counting bound alone refutes every k' ≤ k (the
                # cardinality layer has no "≥ k+1" literal to guard a
                # budget clause with, so no solver call is needed).
                unsat_k = k
                trivial = True
                per_k.append([k, "unsat_trivial", 0, 0])
                break
            solver = new_solver(engine)
            if not load_encoding(solver, enc):
                # Root-level UNSAT while loading: the pool cannot cover
                # the demand at all — but the incumbent covering exists,
                # so this indicates an encoding bug, not a thin pool.
                raise SolverError(
                    f"sat encoding is root-unsatisfiable for n={spec.n} "
                    "despite a feasible incumbent — encoding bug"
                )
            assumption = enc.assumption(k)

            def on_tick() -> None:
                if done_conflicts + solver.conflicts > node_limit:
                    raise _Abort("node_limit")
                if deadline is not None and time.time() > deadline:
                    raise _Abort("deadline")
                if preempt is not None and preempt(
                    SolverStats(
                        nodes=done_conflicts + solver.conflicts,
                        best_value=len(best_blocks),
                        proven_optimal=False,
                    )
                ):
                    raise _Abort("preempt")

            try:
                # The pysat path has no tick hook: poll once up front so
                # deadline/preempt still bind at k boundaries.
                on_tick()
                sat = solver.solve(
                    [assumption] if assumption is not None else (),
                    on_tick=on_tick,
                    tick_every=_TICK_EVERY,
                )
            except _Abort as abort:
                raise_interrupt(abort.kind, getattr(solver, "conflicts", 0))
            per_k.append(
                [k, "sat" if sat else "unsat", solver.conflicts, solver.decisions]
            )
            done_conflicts += solver.conflicts
            done_decisions += solver.decisions
            done_propagations += solver.propagations
            if done_conflicts > node_limit:
                raise_interrupt("node_limit", 0)
            if not sat:
                unsat_k = k
                core = tuple(solver.core)
                break
            model = dict(solver.model)
            best_blocks = enc.decode(lambda v: model.get(v, False))
            k_next = len(best_blocks) - 1
            flush()

        optimum = len(best_blocks)
        if unsat_k is not None and unsat_k + 1 != optimum:
            raise SolverError(
                f"sat walk refuted k={unsat_k} but the incumbent has "
                f"{optimum} blocks — non-contiguous walk state"
            )
        covering = Covering.from_vertex_lists(spec.n, best_blocks)
        assert_valid_covering(
            covering, spec.instance(), allowed_sizes=spec.allowed_sizes
        )
        if store is not None:
            store.delete(spec.spec_hash)

        obj = _objective_of(spec)
        cert = obj.certificate(spec, "exact")
        certificate = {
            "engine": engine,
            "optimum": optimum,
            "unsat_k": optimum - 1,
            "assumption_core": [int(l) for l in core],
            "trivial": trivial,
            "k_start": k_start,
            "encoding": enc.provenance(),
            "per_k": [list(row) for row in per_k],
            "conflicts": done_conflicts,
            "decisions": done_decisions,
            "propagations": done_propagations,
        }
        stats = SolverStats(
            nodes=done_conflicts, best_value=optimum, proven_optimal=True
        )
        result = Result(
            spec=spec,
            covering=covering,
            status="proven_optimal",
            backend=self.name,
            stats=stats,
            lower_bound=optimum,
            certificates=("sat_unsat_core",) + tuple(a.name for a in cert.arguments),
            sat_certificate=certificate,
        )
        if resume is not None:
            result = result.annotate_resume(
                {
                    "resumed": True,
                    "resumes": resume.resumes + 1,
                    "checkpoint_nodes": resume.nodes,
                }
            )
        return result

    @staticmethod
    def _incumbent_blocks(spec: CoverSpec) -> list[tuple[int, ...]]:
        """The greedy+improve incumbent the walk opens from — computed
        internally (like the exact tiers) so ``--no-hints`` certification
        still starts from a real covering.  A closed-form hint can only
        *shorten* the walk, so it is consulted when hints are allowed."""
        from ..core.improve import ImproveStats, improve_covering

        engine = SolverEngine(spec.n, max_size=spec.max_size)
        inst = spec.instance()
        obj = _objective_of(spec)
        if spec.pool == "auto":
            try:
                covering = engine.greedy_cover(
                    inst, pool="tight", allowed_sizes=spec.allowed_sizes
                )
            except SolverError:
                covering = engine.greedy_cover(
                    inst, pool="convex", allowed_sizes=spec.allowed_sizes
                )
        else:
            covering = engine.greedy_cover(
                inst, pool=spec.pool, allowed_sizes=spec.allowed_sizes
            )
        covering = improve_covering(
            covering,
            inst,
            pool=spec.pool,
            max_size=spec.max_size,
            stats=ImproveStats(),
            objective=obj,
            allowed_sizes=spec.allowed_sizes,
        )
        blocks = [tuple(blk.vertices) for blk in covering.blocks]
        hint = warm_start_bound(spec)
        if hint is not None and hint < len(blocks):
            from ..api.backends import get_backend

            closed = get_backend("closed_form").run(spec)
            blocks = [tuple(blk.vertices) for blk in closed.covering.blocks]
        return blocks


def replay_unsat_core(
    spec: CoverSpec, certificate: dict, *, engine: str = "internal"
) -> bool:
    """Audit a recorded ``sat_certificate``: rebuild the encoding from
    the spec and the recorded ``k_start`` alone, check the CNF SHA-256
    matches the certificate's provenance, and re-refute the recorded
    assumption core with a fresh solver (the dependency-free internal
    CDCL by default — the auditor needs no optional packages).

    Returns ``True`` when the certificate replays (UNSAT reproduced);
    raises :class:`SolverError` naming the first discrepancy otherwise.
    """
    k_start = int(certificate["k_start"])
    enc = build_covering_cnf(spec)
    attach_walk_layers(enc, k_start)
    recorded_sha = certificate.get("encoding", {}).get("cnf_sha256")
    actual_sha = enc.cnf.sha256()
    if recorded_sha != actual_sha:
        raise SolverError(
            "sat certificate does not replay: CNF sha256 mismatch "
            f"(recorded {recorded_sha}, rebuilt {actual_sha})"
        )
    unsat_k = int(certificate["unsat_k"])
    if certificate.get("trivial"):
        # The refutation is the counting bound itself: no "≥ k+1"
        # literal exists, so check the arithmetic it certified.
        if enc.trivial_below is None or unsat_k >= enc.trivial_below:
            raise SolverError(
                "sat certificate does not replay: trivial refutation at "
                f"k={unsat_k} is not implied by the rebuilt encoding"
            )
        return True
    core = [int(l) for l in certificate["assumption_core"]]
    expected = enc.assumption(unsat_k)
    if expected is not None and core != [expected]:
        raise SolverError(
            "sat certificate does not replay: recorded core "
            f"{core} is not the ≤{unsat_k} assumption literal {expected}"
        )
    solver = new_solver(resolve_engine(engine))
    if not load_encoding(solver, enc):
        return True  # root-level UNSAT refutes any assumption set
    if solver.solve(core):
        raise SolverError(
            "sat certificate does not replay: the recorded assumption "
            f"core {core} is satisfiable against the rebuilt CNF"
        )
    return True
