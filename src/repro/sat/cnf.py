"""CNF encoding of min-covering over the memoized block table.

One selector variable per admissible block *copy* (λ-fold demand can
repeat a block, so block ``i`` gets ``max_e m_e`` copies over its
demanded chords — any more copies than that are never optimal), with:

* **coverage clauses** — every demanded chord must be covered by at
  least its multiplicity many selected copies (plain clause at λ = 1,
  sequential at-least chain above);
* **copy-ordering units** — copy ``c+1`` implies copy ``c``, collapsing
  the permutation symmetry between identical copies;
* **dihedral symmetry breaking** — when the demand is invariant under
  the ``2n`` ring symmetries (All-to-All, λK_n), any covering can be
  rotated/reflected so the block covering a fixed root chord is its
  orbit representative, so one clause restricted to
  :func:`repro.core.engine._orbit_representatives` of the root chord's
  candidates is sound and prunes a ``2n``-fold symmetry;
* **counting-budget strengthening** (added per ``k`` by the backend) —
  a DRC block covers requests whose ring distances sum to at most
  ``n``, so ``k`` blocks moving total mass ``Σ_e m_e·dist(e)`` leave a
  slack budget of ``n·k − Σ m_e·dist(e)``; a weighted totalizer over
  each selector's slack ``n − mass(block)`` turns the paper's counting
  bound into unit-propagation-strength clauses, guarded by the
  cardinality layer's "≥ k+1" output so each instance only bites under
  its own bound.

The encoding is pure data (:class:`Cnf` holds the clause list); the
backend loads it into whichever engine ``REPRO_SAT`` selects, once per
``k`` step.  Everything is deterministic — clause order, variable
numbering, the DIMACS rendering and its SHA-256 — which is what makes
the recorded UNSAT core *replayable*: an auditor rebuilds the same CNF
from the spec and re-refutes the core with a fresh solver.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core.engine import (
    _is_dihedral_invariant,
    _orbit_representatives,
    convex_block_table,
    edge_space,
    restricted_block_table,
)
from ..util.errors import SolverError
from .card import CardinalityBound, Totalizer, at_least

__all__ = ["Cnf", "CoveringEncoding", "build_covering_cnf", "attach_walk_layers"]


class Cnf:
    """A growable CNF: clause list plus a variable counter.

    Quacks like a solver for the builders in :mod:`repro.sat.card`
    (``new_var``/``add_clause``) but only records; engines replay the
    clause list into live solver instances.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits) -> None:
        clause = tuple(int(l) for l in lits)
        if not clause:
            raise SolverError("refusing to record an empty clause")
        if any(l == 0 or abs(l) > self.num_vars for l in clause):
            raise SolverError(f"clause {clause!r} uses literals outside 1..{self.num_vars}")
        self.clauses.append(clause)

    def dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        lines.extend(" ".join(str(l) for l in c) + " 0" for c in self.clauses)
        return "\n".join(lines) + "\n"

    def sha256(self) -> str:
        return hashlib.sha256(self.dimacs().encode("ascii")).hexdigest()


@dataclass
class CoveringEncoding:
    """The base CNF for one spec, plus the selector metadata the
    backend needs to bolt on cardinality layers and decode models."""

    n: int
    cnf: Cnf
    # selectors[i] = (variable, block_index, copy_index); variable order
    # is selector order, so models decode deterministically.
    selectors: list[tuple[int, int, int]]
    blocks: tuple  # the admitted BlockTable.blocks view
    masses: tuple[int, ...]
    total_distance: int
    pool: str
    symmetry: dict | None = None
    base_clauses: int = 0
    # Per demanded chord: (chord, ring distance, multiplicity, candidate
    # selector literals) — the walk layers count over-coverage from it.
    coverage_rows: list[tuple[tuple[int, int], int, int, list[int]]] = field(
        default_factory=list
    )
    # Filled by attach_walk_layers:
    k_start: int | None = None
    card: CardinalityBound | None = None
    trivial_below: int | None = None
    _var_to_selector: dict[int, int] = field(default_factory=dict)

    @property
    def selector_lits(self) -> list[int]:
        return [var for var, _, _ in self.selectors]

    @property
    def slack_items(self) -> list[tuple[int, int]]:
        """(selector literal, slack weight) for every copy whose block
        wastes ring distance — the counting-budget totalizer inputs."""
        return [
            (var, self.n - self.masses[blk])
            for var, blk, _ in self.selectors
            if self.n - self.masses[blk] > 0
        ]

    def decode(self, value) -> list[tuple[int, ...]]:
        """Selected blocks (vertex tuples, with multiplicity) from a
        model callback ``value(var) -> bool``, in selector order."""
        return [
            self.blocks[blk].vertices
            for var, blk, _ in self.selectors
            if value(var)
        ]

    def budget(self, k: int) -> int:
        """The counting budget ``n·k − Σ_e m_e·dist(e)``: the slack plus
        over-coverage mass any ≤ ``k``-block covering can afford."""
        return self.n * k - self.total_distance

    def assumption(self, k: int) -> int | None:
        """The single assumption literal enforcing "at most ``k`` blocks"
        (``None`` when vacuous).  Only valid after walk layers attach."""
        if self.card is None:
            raise SolverError("attach_walk_layers must run before assumption()")
        if k >= len(self.selectors):
            return None  # fewer selectors than the bound: vacuous
        return self.card.assumption(k)

    def provenance(self) -> dict:
        return {
            "variables": self.cnf.num_vars,
            "clauses": len(self.cnf.clauses),
            "base_clauses": self.base_clauses,
            "selectors": len(self.selectors),
            "blocks": len(self.blocks),
            "pool": self.pool,
            "total_distance": self.total_distance,
            "symmetry": self.symmetry,
            "k_start": self.k_start,
            "strengthening": None if self.k_start is None else "counting_budget",
            "cnf_sha256": self.cnf.sha256(),
        }


def build_covering_cnf(spec) -> CoveringEncoding:
    """The base encoding (selectors, copy chains, coverage, symmetry)
    for ``spec`` — everything except the per-``k`` cardinality layer.

    Raises :class:`SolverError` when the admissible pool cannot cover
    a demanded chord at all (restricted pools can be infeasible).
    """
    n = spec.n
    instance = spec.instance()
    if spec.allowed_sizes is not None:
        table = restricted_block_table(n, spec.max_size, spec.allowed_sizes)
        pool = f"restricted{tuple(sorted(spec.allowed_sizes))}"
    else:
        table = convex_block_table(n, spec.max_size)
        pool = "convex"
    space = edge_space(n)

    demanded: list[tuple[int, int]] = []  # (chord bit, multiplicity)
    for e, m in sorted(instance.demand.items()):
        demanded.append((space.index[e], m))
    required = {bit: m for bit, m in demanded}

    # Copy cap per block: the largest multiplicity among its demanded
    # chords (an optimal covering never repeats a block beyond that);
    # blocks covering no demanded chord are dropped outright.
    caps: list[int] = []
    for bits in table.bit_lists:
        caps.append(max((required.get(b, 0) for b in bits), default=0))

    cnf = Cnf()
    selectors: list[tuple[int, int, int]] = []
    copy_vars: list[list[int]] = []
    for i, cap in enumerate(caps):
        vars_i: list[int] = []
        for c in range(cap):
            var = cnf.new_var()
            selectors.append((var, i, c))
            vars_i.append(var)
        copy_vars.append(vars_i)
    for vars_i in copy_vars:
        for lower, upper in zip(vars_i, vars_i[1:]):
            cnf.add_clause([lower, -upper])  # copy c+1 implies copy c

    # Coverage: ≥ m_e copies among the blocks covering each chord.
    per_edge_lits: dict[int, list[int]] = {bit: [] for bit, _ in demanded}
    for var, blk, _ in selectors:
        for b in table.bit_lists[blk]:
            if b in per_edge_lits:
                per_edge_lits[b].append(var)
    coverage_rows: list[tuple[tuple[int, int], int, int, list[int]]] = []
    for bit, m in demanded:
        lits = per_edge_lits[bit]
        if len(lits) < m:
            e = space.edges[bit]
            raise SolverError(
                f"the admissible pool cannot cover request {e} "
                f"{m} time(s) on C_{n} (only {len(lits)} admissible copies)"
            )
        at_least(cnf, lits, m)
        e = space.edges[bit]
        coverage_rows.append((e, space.dist[bit], m, lits))

    # Dihedral symmetry breaking: restrict the root chord's covering
    # block to one orbit representative (first copy).  Sound only when
    # the demand is invariant under the 2n ring symmetries — the pool
    # tables always are.
    symmetry = None
    if demanded and _is_dihedral_invariant(instance):
        root_bit = min(
            (bit for bit, _ in demanded),
            key=lambda b: (len(per_edge_lits[b]), b),
        )
        cand_blocks = sorted(
            {blk for var, blk, c in selectors if c == 0 and root_bit in table.bit_lists[blk]}
        )
        reps, weights = _orbit_representatives(n, table.blocks, cand_blocks)
        rep_first_copy = {blk: copy_vars[blk][0] for blk in reps}
        cnf.add_clause([rep_first_copy[blk] for blk in reps])
        symmetry = {
            "chord": list(space.edges[root_bit]),
            "candidates": len(cand_blocks),
            "representatives": len(reps),
            "orbit_weights": weights,
        }

    enc = CoveringEncoding(
        n=n,
        cnf=cnf,
        selectors=selectors,
        blocks=table.blocks,
        masses=table.masses,
        total_distance=instance.total_distance,
        pool=pool,
        symmetry=symmetry,
        base_clauses=len(cnf.clauses),
        coverage_rows=coverage_rows,
    )
    enc._var_to_selector = {var: idx for idx, (var, _, _) in enumerate(selectors)}
    return enc


def attach_walk_layers(enc: CoveringEncoding, k_start: int) -> CoveringEncoding:
    """Attach the cardinality + counting-budget layers for a downward
    walk starting at ``k = k_start``.

    Everything added here is an *unconditionally valid* clause — the
    per-``k`` guards embed the cardinality totalizer's "count ≥ k+1"
    output, so each budget instance only bites under its own bound and
    the walk needs exactly one assumption literal per ``k``:

    * the selector-count totalizer (:class:`repro.sat.card.CardinalityBound`,
      cap ``k_start``);
    * per-chord over-coverage totalizers: the "coverage ≥ m_e + t"
      output enters the budget at weight ``dist(e)`` per level, since
      each extra traversal of a chord costs its ring distance; levels
      beyond ``⌊B(k_start)/dist(e)⌋`` can never fit any budget in the
      walk, so a single guarded clause forbids them outright;
    * one weighted budget totalizer over block slack plus over-coverage,
      and for each ``k ≤ k_start`` the guard clause
      ``count ≥ k+1  ∨  slack+overcost ≤ B(k)``
      (a unit "count ≥ k+1" when ``B(k) < 0`` — the paper's counting
      bound as one clause).

    The result is that at the crunch ``k`` (budget 0) the solver's unit
    propagation alone forces *tight blocks only, exact coverage* — the
    regime where even ``n``'s packing/counting gap lives.

    Returns ``enc`` (mutated: ``card``, ``k_start``, ``trivial_below``).
    """
    if enc.k_start is not None:
        raise SolverError("walk layers are already attached")
    if k_start < 0:
        raise SolverError(f"k_start must be non-negative, got {k_start}")
    cnf = enc.cnf
    enc.k_start = k_start
    enc.card = CardinalityBound(cnf, enc.selector_lits, min(k_start, len(enc.selectors)))
    max_budget = enc.budget(k_start)

    items: list[tuple[int, int]] = list(enc.slack_items)
    top_guard = enc.card.guard(min(k_start, len(enc.selectors)))
    for e, dist, m, lits in enc.coverage_rows:
        spare = len(lits) - m
        if spare <= 0:
            continue
        t_max = min(spare, max(0, max_budget) // dist)
        over = Totalizer(cnf, [(l, 1) for l in lits], cap=m + t_max)
        for t in range(1, t_max + 1):
            lit = over.geq(m + t)
            if lit is not None:
                items.append((lit, dist))
        if t_max < spare:
            overflow = over.geq(m + t_max + 1)
            if overflow is not None:
                # Over-covering e beyond t_max costs more than any
                # budget in the walk, so "count ≤ k_start" forbids it.
                clause = [-overflow] if top_guard is None else [top_guard, -overflow]
                cnf.add_clause(clause)

    budget_tot = Totalizer(cnf, items, cap=max(0, max_budget)) if items else None
    trivial_below: int | None = None
    for k in range(min(k_start, len(enc.selectors)), -1, -1):
        guard = enc.card.guard(k)
        b = enc.budget(k)
        if b < 0:
            if guard is None:
                trivial_below = k + 1
                break
            cnf.add_clause([guard])
        elif budget_tot is not None and b < budget_tot.max_value:
            viol = budget_tot.geq(b + 1)
            if viol is not None:
                cnf.add_clause(([-viol] if guard is None else [guard, -viol]))
    enc.trivial_below = trivial_below
    return enc
