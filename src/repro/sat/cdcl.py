"""A dependency-free CDCL SAT solver: the ``sat`` backend's contractual
fallback engine.

The solver is deliberately small but real: two-watched-literal unit
propagation, first-UIP conflict analysis with clause learning, VSIDS
branching with deterministic index tie-breaking, Luby restarts, phase
saving, activity-based learned-clause reduction, and the MiniSat-style
assumption interface the incremental cardinality walk relies on —
``solve(assumptions)`` returns ``False`` with :attr:`Cdcl.core` holding
the subset of assumption literals whose conjunction is refuted (the
replayable UNSAT certificate the backend records in its envelope).

Everything is deterministic: no randomness, no timing dependence, no
hash-order iteration over sets.  Two runs over the same clause sequence
with the same assumptions perform the identical decision/conflict
sequence, which is what lets the backend's per-``k`` statistics enter a
deterministic result envelope and lets a preempted walk resume to
byte-identical bytes.

Literals are non-zero Python ints in DIMACS convention (``v`` /
``-v``); variables are allocated densely from 1 via :meth:`Cdcl.new_var`
or :meth:`Cdcl.ensure_vars`.
"""

from __future__ import annotations

import heapq

from ..util.errors import SolverError

__all__ = ["Cdcl", "luby"]


def luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 …"""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


_RESCALE = 1e100
_DECAY = 1.0 / 0.95


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: list[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class Cdcl:
    """Conflict-driven clause learning over integer literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        # Assignment state, indexed by variable (slot 0 unused).
        self._value: list[int] = [0]  # 0 unassigned, +1 true, -1 false
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._seen: list[bool] = [False]
        # watches[lit_index(l)] = clauses currently watching literal l.
        self._watches: list[list[_Clause]] = [[], []]
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._heap: list[tuple[float, int]] = []  # (-activity, var), lazy
        self._ok = True
        # Assumption-interface outputs.
        self.core: tuple[int, ...] = ()
        self.model: dict[int, bool] = {}
        # Statistics (deterministic; surfaced in the result envelope).
        self.decisions = 0
        self.conflicts = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0

    # -- variables -----------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._value.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        return self.num_vars

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    @staticmethod
    def _widx(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit << 1) | 1)

    def value(self, lit: int) -> int:
        """+1 true, -1 false, 0 unassigned under the current trail."""
        v = self._value[abs(lit)]
        return v if lit > 0 else -v

    # -- clauses -------------------------------------------------------

    def add_clause(self, lits) -> bool:
        """Add a clause (at decision level 0).  Returns ``False`` when
        the clause database became unsatisfiable outright."""
        if not self._ok:
            return False
        if self._trail_lim:
            raise SolverError("clauses may only be added at decision level 0")
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            lit = int(lit)
            if lit == 0 or abs(lit) > self.num_vars:
                raise SolverError(f"literal {lit} outside variable range")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            if self.value(lit) == 1:
                return True  # already satisfied at root
            if self.value(lit) == -1:
                continue  # root-false literal dropped
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            self._enqueue(out[0], None)
            self._ok = self._propagate() is None
            return self._ok
        clause = _Clause(out, False)
        self._clauses.append(clause)
        self._watches[self._widx(-out[0])].append(clause)
        self._watches[self._widx(-out[1])].append(clause)
        return True

    # -- assignment ----------------------------------------------------

    def _enqueue(self, lit: int, reason: _Clause | None) -> None:
        v = abs(lit)
        self._value[v] = 1 if lit > 0 else -1
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)

    def _propagate(self) -> _Clause | None:
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            watchers = self._watches[self._widx(lit)]
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                lits = clause.lits
                # Normalise: the falsified literal at position 1.
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self.value(first) == 1:
                    i += 1
                    continue
                moved = False
                for j in range(2, len(lits)):
                    if self.value(lits[j]) != -1:
                        lits[1], lits[j] = lits[j], lits[1]
                        self._watches[self._widx(-lits[1])].append(clause)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                if self.value(first) == -1:
                    self._qhead = len(self._trail)
                    return clause  # conflict
                self._enqueue(first, clause)
                i += 1
        return None

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        heap = self._heap
        push = heapq.heappush
        for lit in reversed(self._trail[bound:]):
            v = abs(lit)
            self._phase[v] = lit > 0
            self._value[v] = 0
            self._reason[v] = None
            push(heap, (-self._activity[v], v))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)
        # Duplicate (stale) entries accumulate across backtracks; rebuild
        # once they dominate so pops stay cheap.
        if len(heap) > 4 * self.num_vars + 16:
            self._rebuild_heap()

    # -- VSIDS ---------------------------------------------------------

    def _rebuild_heap(self) -> None:
        self._heap = [
            (-self._activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self._value[v] == 0
        ]
        heapq.heapify(self._heap)

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._rebuild_heap()

    def _pick_branch_var(self) -> int:
        heap = self._heap
        while heap:
            act, v = heapq.heappop(heap)
            if self._value[v] == 0 and act == -self._activity[v]:
                return v
        for v in range(1, self.num_vars + 1):
            if self._value[v] == 0:
                return v
        return 0

    # -- conflict analysis --------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        seen = self._seen
        learnt: list[int] = [0]  # slot 0 = asserting literal (filled last)
        counter = 0
        lit = 0
        reason: _Clause | None = conflict
        idx = len(self._trail) - 1
        cur_level = len(self._trail_lim)
        while True:
            assert reason is not None
            reason.activity += self._var_inc
            start = 0 if lit == 0 else 1
            for q in reason.lits[start:]:
                v = abs(q)
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self._level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[idx])]:
                idx -= 1
            lit = self._trail[idx]
            v = abs(lit)
            seen[v] = False
            counter -= 1
            idx -= 1
            if counter == 0:
                break
            reason = self._reason[v]
        learnt[0] = -lit
        # Conflict-clause minimisation (local): drop literals implied by
        # the rest of the clause through their reason.
        orig = learnt[1:]
        marked = {abs(q) for q in orig}
        kept = [learnt[0]]
        for q in orig:
            r = self._reason[abs(q)]
            if r is not None and all(
                abs(p) in marked or self._level[abs(p)] == 0 for p in r.lits[1:]
            ):
                continue
            kept.append(q)
        learnt = kept
        for q in orig:
            seen[abs(q)] = False
        if len(learnt) == 1:
            bt = 0
        else:
            # Second-highest decision level among the learnt literals.
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt = self._level[abs(learnt[1])]
        self._var_inc *= _DECAY
        return learnt, bt

    def _analyze_final(self, lit: int) -> tuple[int, ...]:
        """Assumption core: the subset of assumption literals implying
        ``-lit`` (computed by walking the implication graph)."""
        core = {lit}
        if not self._trail_lim:
            return tuple(sorted(core))
        seen = self._seen
        seen[abs(lit)] = True
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            p = self._trail[i]
            v = abs(p)
            if not seen[v]:
                continue
            reason = self._reason[v]
            if reason is None:
                core.add(p)  # an assumption decision
            else:
                for q in reason.lits[1:]:
                    if self._level[abs(q)] > 0:
                        seen[abs(q)] = True
            seen[v] = False
        seen[abs(lit)] = False
        return tuple(sorted(core))

    # -- learned-clause housekeeping ----------------------------------

    def _reduce_db(self) -> None:
        learnts = sorted(
            (c for c in self._learnts if len(c.lits) > 2),
            key=lambda c: (c.activity, -len(c.lits)),
        )
        locked = {id(self._reason[abs(l)]) for l in self._trail if self._reason[abs(l)]}
        drop = set()
        for c in learnts[: len(learnts) // 2]:
            if id(c) not in locked:
                drop.add(id(c))
        if not drop:
            return
        self._learnts = [c for c in self._learnts if id(c) not in drop]
        for widx in range(2, len(self._watches)):
            self._watches[widx] = [c for c in self._watches[widx] if id(c) not in drop]

    # -- search --------------------------------------------------------

    def solve(
        self,
        assumptions=(),
        *,
        on_tick=None,
        tick_every: int = 512,
    ) -> bool:
        """Solve under ``assumptions``.  ``True`` fills :attr:`model`
        (a variable → bool map); ``False`` fills :attr:`core` with the
        refuted subset of the assumptions.  ``on_tick`` is called every
        ``tick_every`` conflicts — raise from it to abort (the solver's
        root state stays valid, so the caller can retry later)."""
        if not self._ok:
            self.core = ()
            return False
        assumptions = [int(a) for a in assumptions]
        self._cancel_until(0)
        confl = self._propagate()
        if confl is not None:
            self._ok = False
            self.core = ()
            return False
        self._heap = [
            (-self._activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self._value[v] == 0
        ]
        heapq.heapify(self._heap)
        conflicts_this_call = 0
        restart_num = 0
        restart_budget = 32 * luby(1)
        learnt_cap = max(4000, len(self._clauses) // 2)
        while True:
            confl = self._propagate()
            if confl is not None:
                self.conflicts += 1
                conflicts_this_call += 1
                if on_tick is not None and self.conflicts % tick_every == 0:
                    on_tick()
                if not self._trail_lim:
                    self._ok = False
                    self.core = ()
                    return False
                learnt, bt = self._analyze(confl)
                self._cancel_until(bt)
                self._attach_learnt(learnt)
                if len(self._learnts) > learnt_cap:
                    self._reduce_db()
                    learnt_cap += learnt_cap // 2
                if conflicts_this_call >= restart_budget:
                    restart_num += 1
                    self.restarts += 1
                    restart_budget = conflicts_this_call + 32 * luby(restart_num + 1)
                    self._cancel_until(len(assumptions))
                continue
            # Decision: assumptions first, then VSIDS.
            if len(self._trail_lim) < len(assumptions):
                a = assumptions[len(self._trail_lim)]
                val = self.value(a)
                if val == -1:
                    self.core = self._analyze_final(a)
                    self._cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                if val == 0:
                    self._enqueue(a, None)
                continue
            var = self._pick_branch_var()
            if var == 0:
                self.model = {
                    v: self._value[v] > 0 for v in range(1, self.num_vars + 1)
                }
                self._cancel_until(0)
                return True
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(var if self._phase[var] else -var, None)

    def _attach_learnt(self, learnt: list[int]) -> None:
        self.learned += 1
        if len(learnt) == 1:
            if self.value(learnt[0]) == 0:
                self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, True)
        clause.activity = self._var_inc
        self._learnts.append(clause)
        self._watches[self._widx(-learnt[0])].append(clause)
        self._watches[self._widx(-learnt[1])].append(clause)
        self._enqueue(learnt[0], clause)
