"""SAT engine selection: the ``REPRO_SAT`` probe contract.

Mirrors :func:`repro.core.kernel.resolve_kernel`: the internal CDCL
(:class:`repro.sat.cdcl.Cdcl`) is the contractual fallback engine that
is always present, and `python-sat`_ is an optional fast path.
``REPRO_SAT=internal|pysat`` (or the explicit ``engine=`` argument)
picks one; unset or ``auto`` means pysat-when-importable.  An explicit
``pysat`` without the package installed silently falls back to
``internal`` — same rule as ``REPRO_KERNEL=numpy`` without numpy.
Anything else raises a :class:`~repro.util.errors.SolverError` listing
the runnable engines.  ``REPRO_NO_PYSAT`` (any non-empty value) makes
the probe report pysat as absent, so CI can pin the fallback path
without uninstalling anything.

Both engines present the same face to the walk
(:func:`new_solver` → object with ``solve(assumptions)`` /
``.model`` / ``.core`` / conflict statistics), and both refute the
same deterministic CNF — the recorded certificate names its engine, and
the replay audit accepts either.

.. _python-sat: https://pysathq.github.io/
"""

from __future__ import annotations

import os

from ..util.errors import SolverError
from .cdcl import Cdcl

__all__ = [
    "SAT_ENGINE_ENV",
    "SAT_ENGINES",
    "NO_PYSAT_ENV",
    "available_engines",
    "pysat_available",
    "resolve_engine",
    "new_solver",
    "PysatSolver",
]

#: Environment variable selecting the engine (``internal``/``pysat``;
#: unset or ``auto`` picks pysat when importable).
SAT_ENGINE_ENV = "REPRO_SAT"

#: Engines the backend can resolve to.
SAT_ENGINES = ("internal", "pysat")

#: Set (to any non-empty value) to make the probe report python-sat as
#: absent — CI's sat-smoke job uses it to pin the internal-CDCL path.
NO_PYSAT_ENV = "REPRO_NO_PYSAT"

_UNRESOLVED = object()
_pysat_module = _UNRESOLVED


def _pysat():
    """The ``pysat.solvers`` module, or ``None`` when not installed
    (cached); ``REPRO_NO_PYSAT`` forces ``None``."""
    if os.environ.get(NO_PYSAT_ENV):
        return None
    global _pysat_module
    if _pysat_module is _UNRESOLVED:
        try:
            from pysat import solvers as pysat_solvers  # type: ignore[import-not-found]

            _pysat_module = pysat_solvers
        except ImportError:
            _pysat_module = None
    return _pysat_module


def pysat_available() -> bool:
    return _pysat() is not None


def available_engines() -> tuple[str, ...]:
    """The engines runnable in this process (``internal`` always is)."""
    return SAT_ENGINES if pysat_available() else ("internal",)


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine request to a runnable engine name.

    ``engine`` wins over ``REPRO_SAT``; ``None``/``"auto"``/empty mean
    pysat-when-available.  An explicit ``"pysat"`` without python-sat
    installed falls back to ``"internal"`` (the reference path is the
    fallback by contract); anything else raises a friendly
    :class:`SolverError` naming the runnable engines.
    """
    raw = engine if engine is not None else os.environ.get(SAT_ENGINE_ENV, "auto")
    name = str(raw).strip().lower() or "auto"
    if name not in SAT_ENGINES and name != "auto":
        raise SolverError(
            f"unknown SAT engine {raw!r} (expected one of "
            f"{SAT_ENGINES + ('auto',)}; runnable here: "
            f"{', '.join(available_engines())})"
        )
    if name == "internal":
        return "internal"
    return "pysat" if pysat_available() else "internal"


class PysatSolver:
    """python-sat adapter presenting the internal CDCL's face.

    ``solve`` returns a bool and fills ``model`` (var → bool) or
    ``core`` (sorted tuple of failed assumption literals).  Conflict
    statistics come from the underlying solver's accumulated stats so
    the backend records comparable numbers for either engine.
    """

    def __init__(self) -> None:
        self._solver = _pysat().Solver(name="minicard", incr=False)
        self.num_vars = 0
        self.model: dict[int, bool] = {}
        self.core: tuple[int, ...] = ()
        self.decisions = 0
        self.conflicts = 0
        self.propagations = 0

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def ensure_vars(self, n: int) -> None:
        if n > self.num_vars:
            self.num_vars = n

    def add_clause(self, lits) -> bool:
        self._solver.add_clause([int(l) for l in lits])
        return True

    def solve(self, assumptions=(), *, on_tick=None, tick_every: int = 512) -> bool:
        # python-sat has no conflict-tick callback; deadline handling
        # for this engine happens between k steps in the backend.
        ok = self._solver.solve(assumptions=[int(a) for a in assumptions])
        stats = self._solver.accum_stats() or {}
        self.decisions = int(stats.get("decisions", 0))
        self.conflicts = int(stats.get("conflicts", 0))
        self.propagations = int(stats.get("propagations", 0))
        if ok:
            self.model = {abs(l): l > 0 for l in (self._solver.get_model() or ())}
            return True
        core = self._solver.get_core() or ()
        self.core = tuple(sorted(int(l) for l in core))
        return False

    def delete(self) -> None:
        self._solver.delete()


def new_solver(engine: str):
    """A fresh solver for a *resolved* engine name."""
    if engine == "internal":
        return Cdcl()
    if engine == "pysat":
        if not pysat_available():
            raise SolverError(
                "python-sat is not importable in this process "
                "(runnable engines: internal)"
            )
        return PysatSolver()
    raise SolverError(
        f"unknown SAT engine {engine!r} (expected one of {SAT_ENGINES})"
    )


def load_encoding(solver, enc) -> bool:
    """Replay an encoding's recorded clauses into a live solver.
    Returns ``False`` when the clause database is already root-UNSAT."""
    solver.ensure_vars(enc.cnf.num_vars)
    ok = True
    for clause in enc.cnf.clauses:
        ok = solver.add_clause(clause) and ok
    return ok
