"""Persistence: versioned JSON (de)serialisation for coverings and results.

Coverings are the expensive artifacts (the even-case completion search
takes seconds to minutes at large n), so downstream users cache them.
The format is deliberately boring JSON::

    {
      "format": "repro-covering",
      "version": "1.1",
      "n": 10,
      "blocks": [[0, 1, 5, 6], ...],
      "meta": {...}            # optional, caller-owned
    }

Schema versioning
-----------------
Every document this module reads or writes carries a ``"version"``
field in ``"<major>.<minor>"`` form (legacy integer versions parse as
``(major, 0)``).  Readers accept any minor revision of a known major —
minor bumps add optional fields only — and reject unknown majors, so a
cached artifact written by a newer incompatible schema fails loudly
instead of being half-parsed.  The :mod:`repro.api` result envelopes
build their own documents on the same helpers
(:func:`schema_version_field`, :func:`require_schema`,
:func:`covering_to_payload`, :func:`covering_from_payload`).

``save_covering``/``load_covering`` round-trip exactly;
``load_covering`` re-validates structure (and optionally full DRC
validity) so a corrupted or hand-edited file cannot sneak an invalid
covering into a design.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core.covering import Covering
from .core.verify import assert_valid_covering
from .util.errors import InvalidCoveringError

__all__ = [
    "save_covering",
    "load_covering",
    "covering_to_json",
    "covering_from_json",
    "covering_to_payload",
    "covering_from_payload",
    "schema_version_field",
    "require_schema",
    "COVERING_FORMAT",
    "COVERING_SCHEMA_MAJOR",
]

COVERING_FORMAT = "repro-covering"
COVERING_SCHEMA_MAJOR = 1
_COVERING_SCHEMA_MINOR = 1


def schema_version_field(major: int, minor: int) -> str:
    """The canonical ``"version"`` value for a schema revision."""
    return f"{major}.{minor}"


def _parse_version(value: Any) -> tuple[int, int]:
    """Parse a document's ``version`` field into ``(major, minor)``.

    Integers are the legacy spelling of ``(major, 0)``; strings must be
    ``"<major>.<minor>"``.  Anything else is malformed.
    """
    if isinstance(value, bool):
        raise InvalidCoveringError(f"malformed schema version {value!r}")
    if isinstance(value, int):
        return value, 0
    if isinstance(value, str):
        major_s, sep, minor_s = value.partition(".")
        if major_s.isdigit() and (not sep or minor_s.isdigit()):
            return int(major_s), int(minor_s) if sep else 0
    raise InvalidCoveringError(f"malformed schema version {value!r}")


def require_schema(payload: Any, fmt: str, major: int) -> tuple[int, int]:
    """Check a parsed document's ``format`` tag and schema version.

    Returns the parsed ``(major, minor)``.  Raises
    :class:`InvalidCoveringError` when the payload is not a dict, the
    format tag differs, or the major version is unknown — a *newer
    minor* of the same major is accepted (minor revisions only add
    optional fields).
    """
    if not isinstance(payload, dict):
        raise InvalidCoveringError(f"not a {fmt} document")
    if payload.get("format") != fmt:
        raise InvalidCoveringError(
            f"not a {fmt} document (format={payload.get('format')!r})"
        )
    if "version" not in payload:
        raise InvalidCoveringError(f"{fmt} document has no schema version")
    got_major, got_minor = _parse_version(payload["version"])
    if got_major != major:
        raise InvalidCoveringError(
            f"unsupported {fmt} schema version "
            f"{payload['version']!r} (supported major: {major})"
        )
    return got_major, got_minor


def covering_to_payload(
    covering: Covering, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The covering document as a plain dict (embeddable in larger
    envelopes — the :mod:`repro.api` result cache stores these)."""
    payload: dict[str, Any] = {
        "format": COVERING_FORMAT,
        "version": schema_version_field(COVERING_SCHEMA_MAJOR, _COVERING_SCHEMA_MINOR),
        "n": covering.n,
        "blocks": [list(blk.vertices) for blk in covering.blocks],
    }
    if meta:
        payload["meta"] = meta
    return payload


def covering_from_payload(payload: Any, *, verify: bool = False) -> Covering:
    """Rebuild a covering from a parsed document dict; see
    :func:`covering_from_json` for the verification contract."""
    require_schema(payload, COVERING_FORMAT, COVERING_SCHEMA_MAJOR)
    try:
        covering = Covering.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidCoveringError(f"malformed covering payload: {exc}") from exc
    if verify:
        assert_valid_covering(covering)
    return covering


def covering_to_json(covering: Covering, meta: dict[str, Any] | None = None) -> str:
    """Serialise a covering (and optional caller metadata) to JSON."""
    return json.dumps(covering_to_payload(covering, meta), indent=2, sort_keys=True)


def covering_from_json(text: str, *, verify: bool = False) -> Covering:
    """Parse a covering from JSON produced by :func:`covering_to_json`.

    ``verify=True`` additionally runs the full DRC/coverage verifier
    against All-to-All traffic.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidCoveringError(f"not valid JSON: {exc}") from exc
    return covering_from_payload(payload, verify=verify)


def save_covering(
    covering: Covering, path: str | Path, meta: dict[str, Any] | None = None
) -> Path:
    """Write a covering to ``path`` (creating parent directories)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(covering_to_json(covering, meta), encoding="utf-8")
    return out


def load_covering(path: str | Path, *, verify: bool = False) -> Covering:
    """Read a covering from ``path``; see :func:`covering_from_json`."""
    return covering_from_json(Path(path).read_text(encoding="utf-8"), verify=verify)
