"""Persistence: JSON (de)serialisation for coverings and designs.

Coverings are the expensive artifacts (the even-case completion search
takes seconds to minutes at large n), so downstream users cache them.
The format is deliberately boring JSON::

    {
      "format": "repro-covering",
      "version": 1,
      "n": 10,
      "blocks": [[0, 1, 5, 6], ...],
      "meta": {...}            # optional, caller-owned
    }

``save_covering``/``load_covering`` round-trip exactly;
``load_covering`` re-validates structure (and optionally full DRC
validity) so a corrupted or hand-edited file cannot sneak an invalid
covering into a design.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core.covering import Covering
from .core.verify import assert_valid_covering
from .util.errors import InvalidCoveringError

__all__ = ["save_covering", "load_covering", "covering_to_json", "covering_from_json"]

_FORMAT = "repro-covering"
_VERSION = 1


def covering_to_json(covering: Covering, meta: dict[str, Any] | None = None) -> str:
    """Serialise a covering (and optional caller metadata) to JSON."""
    payload: dict[str, Any] = {
        "format": _FORMAT,
        "version": _VERSION,
        "n": covering.n,
        "blocks": [list(blk.vertices) for blk in covering.blocks],
    }
    if meta:
        payload["meta"] = meta
    return json.dumps(payload, indent=2, sort_keys=True)


def covering_from_json(text: str, *, verify: bool = False) -> Covering:
    """Parse a covering from JSON produced by :func:`covering_to_json`.

    ``verify=True`` additionally runs the full DRC/coverage verifier
    against All-to-All traffic.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidCoveringError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise InvalidCoveringError(
            f"not a {_FORMAT} document (format={payload.get('format')!r})"
            if isinstance(payload, dict)
            else "not a repro-covering document"
        )
    if payload.get("version") != _VERSION:
        raise InvalidCoveringError(
            f"unsupported format version {payload.get('version')!r}"
        )
    try:
        covering = Covering.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidCoveringError(f"malformed covering payload: {exc}") from exc
    if verify:
        assert_valid_covering(covering)
    return covering


def save_covering(
    covering: Covering, path: str | Path, meta: dict[str, Any] | None = None
) -> Path:
    """Write a covering to ``path`` (creating parent directories)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(covering_to_json(covering, meta), encoding="utf-8")
    return out


def load_covering(path: str | Path, *, verify: bool = False) -> Covering:
    """Read a covering from ``path``; see :func:`covering_from_json`."""
    return covering_from_json(Path(path).read_text(encoding="utf-8"), verify=verify)
