"""Command-line interface over the declarative :mod:`repro.api` layer.

Subcommands::

    python -m repro solve --n 11                  # one job, auto-routed
    python -m repro solve --n 10 --backend exact --no-hints --json
    python -m repro solve --n 8 --backend exact --no-hints \
        --checkpoint-dir ckpts --resume --preempt-after 800n  # resumable
    python -m repro solve --n 8 --objective min_total_size   # ADM-count optimum
    python -m repro solve --n 7 --allowed-sizes 3 # restricted cover (C3 only)
    python -m repro sweep --ns 4..11 --json       # many jobs, shared cache
    python -m repro sweep --ns 4..11 --transport subprocess --workers 2
    python -m repro sweep --ns 4..8 --objective min_total_size --json
    python -m repro objectives                    # objective × backend matrix
    python -m repro backends                      # backend capability matrix
    python -m repro solve --n 12 --backend sat --no-hints  # SAT certification
    python -m repro worker                        # serve dispatcher jobs (stdio)
    python -m repro worker --spool DIR            # serve a shared spool dir
    python -m repro serve --port 8323             # HTTP solver service (repro.serve)
    python -m repro experiments E1 E10            # regenerate paper tables
    python -m repro experiments --list
    python -m repro rho 6..20                     # closed-form ρ(n) table

``--objective`` selects a registered covering objective
(``min_blocks`` — the paper's ρ — by default; ``min_total_size`` — the
ring-size-sum / ADM-count objective of refs [3]/[4]); ``--allowed-sizes
L1,L2,...`` restricts candidate cycle lengths (Manthey-style restricted
cycle covers).  ``objectives`` prints the registry with each
objective's certificate arguments and the backends that take it.

``sweep --transport {inproc,subprocess,spool}`` fans the jobs out
through the distributed dispatcher (:mod:`repro.dispatch`): with
``--transport`` set, ``--workers`` sizes the dispatch pool (it is *not*
written into the specs, so the envelopes stay byte-identical to a
serial run's), ``--job-timeout`` adds a per-job deadline with
retry-with-exclusion, and ``--spool DIR`` names the shared spool
directory external ``python -m repro worker --spool DIR`` workers are
watching.  ``worker`` is the remote end of both worker protocols.
``--degrade heuristic`` arms graceful degradation (jobs that exhaust
their retries fall back to a verified heuristic envelope with
degradation provenance instead of failing the sweep), ``--lease-timeout``
tunes the spool transport's heartbeat-staleness reclaim window, and
``--fault-plan`` (sweep and worker) injects a seeded
:mod:`repro.dispatch.faults` plan — the chaos harness CI drives.

``solve --checkpoint-dir DIR`` makes a long proof *resumable*: a run
preempted by ``--preempt-after`` (``'800n'`` nodes or seconds) or by a
``--time-budget`` deadline exits with status 3 leaving a checkpoint in
DIR, and ``--resume`` picks the proof up where it stopped.  The final
envelope is byte-identical however many preempt/resume cycles produced
it.  ``worker --preempt-after / --checkpoint-every`` give spool workers
the same powers (checkpoint, bow out, let any worker resume).

``solve`` and ``sweep`` go through ``api.solve`` — spec construction,
backend routing, the content-addressed result cache (default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; ``--no-cache`` disables,
``--cache DIR`` redirects).  ``--json`` prints the deterministic
``Result`` envelope(s), so two runs of the same jobs emit *byte
identical* output — cache hits are reported on stderr, never mixed
into the payload.

The pre-subcommand spelling (``python -m repro E1 E2``, ``--list``,
``--rho 6..20``) keeps working as a legacy alias of ``experiments`` /
``rho``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Callable

from .analysis import experiments as X

_SUBCOMMANDS = (
    "solve", "sweep", "objectives", "backends", "worker", "serve", "experiments", "rho"
)

# E10's default range tracks the certified sweep (ρ(n) proven through
# n = 11 — BENCH_solver.json); the time budget gates the tail so a
# full `experiments` run stays interactive even on slow hardware.
_E10_NS = (4, 5, 6, 7, 8, 9, 10, 11)
_E10_SHARD_THRESHOLD = 11
_E10_TIME_BUDGET = 60.0

_EXPERIMENTS: dict[str, tuple[str, Callable[[], "X.ExperimentResult"]]] = {
    "E1": ("Theorem 1 (odd n)", lambda: X.experiment_theorem1((5, 7, 9, 11, 13, 15, 17, 21))),
    "E2": ("Theorem 2 (even n)", lambda: X.experiment_theorem2((4, 6, 8, 10, 12, 14, 16, 18))),
    "E3": ("paper worked example", X.experiment_paper_example),
    "E4": ("cost model", lambda: X.experiment_cost_model((7, 9, 11, 12, 13))),
    "E5": ("non-DRC baselines", lambda: X.experiment_nondrc_baseline((5, 7, 9, 11, 13))),
    "E6": ("survivability sweep", lambda: X.experiment_survivability((6, 8, 9, 11))),
    "E8": ("λK_n extension", lambda: X.experiment_lambda_fold((5, 7, 6, 8), (1, 2, 3))),
    "E9": ("other topologies", X.experiment_topologies),
    "E10": (
        "exact solver certification (n ≤ 11)",
        lambda: X.experiment_solver_certification(
            _E10_NS,
            shard_threshold=_E10_SHARD_THRESHOLD,
            time_budget=_E10_TIME_BUDGET,
        ),
    ),
    "E11": ("protection vs restoration", lambda: X.experiment_protection_vs_restoration((8, 11, 14))),
    "E12": ("dual-failure degradation", lambda: X.experiment_dual_failures((8, 10, 12))),
}


def _parse_range(spec: str) -> list[int]:
    if ".." in spec:
        lo, hi = spec.split("..", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(s) for s in spec.split(",")]


# ---------------------------------------------------------------------------
# solve / sweep (the api-backed subcommands)
# ---------------------------------------------------------------------------


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(s) for s in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"allowed sizes must be comma-separated integers, got {text!r}"
        ) from None


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    from .api import available_backends
    from .core.objective import available_objectives

    parser.add_argument("--lam", type=int, default=1, metavar="λ",
                        help="demand multiplicity (λK_n; default 1)")
    parser.add_argument("--max-size", type=int, default=4,
                        help="largest candidate cycle length (default 4)")
    parser.add_argument("--objective", choices=available_objectives(),
                        default="min_blocks",
                        help="registered covering objective (default min_blocks; "
                             "see `python -m repro objectives`)")
    parser.add_argument("--allowed-sizes", type=_parse_sizes, metavar="L1,L2,...",
                        help="restrict candidate cycle lengths (Manthey-style "
                             "restricted covers), e.g. --allowed-sizes 3")
    parser.add_argument("--backend", choices=available_backends(),
                        help="pin a backend instead of routing")
    parser.add_argument("--no-optimal", action="store_true",
                        help="accept a heuristic (uncertified) covering")
    parser.add_argument("--no-hints", action="store_true",
                        help="certification mode: no warm-start upper bounds")
    parser.add_argument("--workers", type=int, help="worker processes for sharded solves")
    parser.add_argument("--shard-threshold", type=int, metavar="N",
                        help="ring sizes ≥ N use the sharded exact backend")
    parser.add_argument("--node-limit", type=int, help="branch-and-bound node cap")
    parser.add_argument("--time-budget", type=float, metavar="SECONDS",
                        help="wall-clock budget for exact solves")
    parser.add_argument("--json", action="store_true",
                        help="print deterministic Result envelope JSON")
    parser.add_argument("--cache", metavar="DIR",
                        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="persist resumable search checkpoints under DIR; "
                             "a preempted or killed solve leaves its state there")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing checkpoint in "
                             "--checkpoint-dir instead of starting fresh")
    parser.add_argument("--preempt-after", metavar="X",
                        help="preempt the solve after X ('800n' = 800 search "
                             "nodes, '2.5' = seconds), flush a checkpoint, and "
                             "exit with status 3")
    parser.add_argument("--checkpoint-every", type=int, metavar="NODES",
                        help="also flush a checkpoint every NODES search nodes")


def _add_dispatch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport", choices=("inproc", "subprocess", "spool"),
        help="fan the sweep out through the distributed dispatcher; "
             "--workers then sizes the dispatch pool",
    )
    parser.add_argument("--job-timeout", type=float, metavar="SECONDS",
                        help="per-job deadline (dead jobs retry on another worker)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="worker deaths tolerated per job (default 2)")
    parser.add_argument("--spool", metavar="DIR",
                        help="spool directory for --transport spool "
                             "(default: a private temp dir)")
    parser.add_argument("--degrade", choices=("heuristic",),
                        help="when a job exhausts its retries or deadline, fall "
                             "back to a verified heuristic envelope (stamped "
                             "with degradation provenance) instead of failing "
                             "the whole sweep")
    parser.add_argument("--lease-timeout", type=float, metavar="SECONDS",
                        help="spool transport: reclaim a claim once its "
                             "heartbeat lease has been frozen this long "
                             "(default 5; heartbeating workers are never "
                             "reclaimed)")
    parser.add_argument("--fault-plan", metavar="PLAN",
                        help="fault-injection plan (inline JSON or @file) armed "
                             "and exported to spawned workers — chaos testing "
                             "only")


def _spec_from_args(args: argparse.Namespace, n: int):
    from .api import CoverSpec

    # With --transport, --workers sizes the *dispatch* pool; keeping it
    # out of the spec keeps the spec hash (and therefore the envelope
    # bytes and cache entry) identical to a serial run's.
    dispatching = getattr(args, "transport", None) is not None
    return CoverSpec.for_ring(
        n,
        lam=args.lam,
        max_size=args.max_size,
        objective=args.objective,
        allowed_sizes=args.allowed_sizes,
        backend=args.backend,
        require_optimal=not args.no_optimal,
        use_hints=not args.no_hints,
        workers=None if dispatching else args.workers,
        shard_threshold=args.shard_threshold,
        node_limit=args.node_limit,
        time_budget=args.time_budget,
    )


def _arm_fault_plan(raw: str) -> None:
    """Parse a ``--fault-plan`` argument, arm its tokens in a private
    temp directory (each fault then fires exactly once across the
    fleet), and export it so spawned workers inherit it."""
    import os
    import tempfile

    from .dispatch.faults import _load_plan_text

    plan = _load_plan_text(raw).arm(tempfile.mkdtemp(prefix="repro-faults-"))
    os.environ.update(plan.env())


def _cache_from_args(args: argparse.Namespace):
    from .api import ResultCache, default_cache_dir

    if args.no_cache:
        return None
    if args.cache:
        return ResultCache(args.cache)
    return ResultCache(default_cache_dir())


def _solve_resumable(spec, cache, ckpt_store, budget, args: argparse.Namespace):
    """One checkpointed `solve` call: honour --resume (or clear stale
    state without it), and turn a --preempt-after budget into a preempt
    callback whose node counts continue from the resumed checkpoint —
    so repeated --resume runs each advance the proof by the full budget."""
    from .api import solve

    prior = None
    if ckpt_store is not None:
        if getattr(args, "resume", False):
            prior = ckpt_store.load(spec.spec_hash)
        else:
            ckpt_store.delete(spec.spec_hash)
    preempt = None
    if budget is not None:
        unit, amount = budget
        if unit == "nodes":
            ceiling = (prior.nodes if prior is not None else 0) + int(amount)
            preempt = lambda st: st.nodes >= ceiling  # noqa: E731
        else:
            deadline = time.monotonic() + amount
            preempt = lambda st: time.monotonic() >= deadline  # noqa: E731
    return solve(
        spec,
        cache=cache,
        checkpoints=ckpt_store,
        checkpoint_every=getattr(args, "checkpoint_every", None),
        preempt=preempt,
    )


def _note_cache(result) -> None:
    if result.from_cache:
        print(
            f"[cache] hit {result.spec.spec_hash[:12]} (n={result.spec.n})",
            file=sys.stderr,
        )


def _note_cache_stats(cache) -> None:
    """One stderr line of ResultCache counters after a batch.  The key
    order matters: CI greps for '[cache] hit …' per-entry lines, so
    this summary leads with `entries=` to stay un-matchable."""
    if cache is None:
        return
    stats = cache.stats()
    print(
        "[cache] entries={entries} hits={hits} misses={misses} "
        "evictions={evictions} coalesced={coalesced} "
        "hit_rate={hit_rate:.2f}".format(**stats),
        file=sys.stderr,
    )


def _run_jobs(ns: list[int], args: argparse.Namespace, *, single: bool = False) -> int:
    from .api import solve
    from .util.errors import ReproError
    from .util.tables import Table

    cache = _cache_from_args(args)
    results = []
    if getattr(args, "transport", None):
        from .dispatch import dispatch_batch

        try:
            if getattr(args, "fault_plan", None):
                _arm_fault_plan(args.fault_plan)
            specs = [_spec_from_args(args, n) for n in ns]
            report = dispatch_batch(
                specs,
                transport=args.transport,
                workers=args.workers,
                cache=cache,
                job_timeout=args.job_timeout,
                max_retries=args.max_retries,
                spool_dir=args.spool,
                degrade=args.degrade,
                lease_timeout=args.lease_timeout,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for result in report.results:
            _note_cache(result)
            results.append((result, report.seconds.get(result.spec_hash, 0.0)))
        print(f"[dispatch] {report.summary()}", file=sys.stderr)
    else:
        from .util.errors import SolverPreempted

        ckpt_store = None
        if getattr(args, "checkpoint_dir", None):
            from .api import CheckpointStore

            ckpt_store = CheckpointStore(args.checkpoint_dir)
        budget = None
        if getattr(args, "preempt_after", None):
            from .dispatch.worker import parse_preempt_after

            try:
                budget = parse_preempt_after(args.preempt_after)
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        checkpointing = ckpt_store is not None or budget is not None
        for n in ns:
            t0 = time.perf_counter()
            try:
                spec = _spec_from_args(args, n)
                if checkpointing:
                    result = _solve_resumable(spec, cache, ckpt_store, budget, args)
                else:
                    result = solve(spec, cache=cache)
            except SolverPreempted:
                nodes = ckpt_store.load(spec.spec_hash).nodes if ckpt_store else "?"
                print(
                    f"[preempted] n={n} checkpointed at {nodes} nodes; "
                    f"re-run with --resume to continue",
                    file=sys.stderr,
                )
                return 3
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            elapsed = time.perf_counter() - t0
            _note_cache(result)
            results.append((result, elapsed))

    _note_cache_stats(cache)

    if args.json:
        payloads = [result.to_payload() for result, _ in results]
        # `solve` emits one envelope; `sweep` always emits an array, even
        # for a one-element range — scripts parse a stable shape.
        out = payloads[0] if single else payloads
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0

    # Objective-axis jobs (anything beyond unrestricted min_blocks) get
    # an extra value column; the legacy table shape stays untouched.
    extended = any(result.objective_value is not None for result, _ in results)
    headers = ["n", "λ", "backend", "status", "blocks", "lower bnd", "nodes", "seconds", "origin"]
    if extended:
        headers.insert(5, "value")
    table = Table("DRC covering jobs (repro.api)", headers)
    for result, elapsed in results:
        row = [
            result.spec.n,
            result.spec.lam,
            result.backend,
            result.status,
            result.num_blocks,
            result.lower_bound,
            result.stats.nodes,
            round(elapsed, 3),
            "cache" if result.from_cache else "solved",
        ]
        if extended:
            row.insert(5, result.objective_value if result.objective_value is not None else "-")
        table.add_row(*row)
    print(table.render())
    if single:
        result = results[0][0]
        print("\nblocks:", " ".join(str(blk.vertices) for blk in result.covering.blocks))
    return 0


def _cmd_solve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro solve",
        description="Solve one covering job through the declarative API.",
    )
    parser.add_argument("--n", type=int, required=True, help="ring order")
    _add_spec_arguments(parser)
    _add_checkpoint_arguments(parser)
    args = parser.parse_args(argv)
    return _run_jobs([args.n], args, single=True)


def _cmd_sweep(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Solve a range of ring sizes through the declarative API.",
    )
    parser.add_argument("--ns", required=True, metavar="RANGE",
                        help="ring sizes (e.g. 4..11 or 5,9,14)")
    _add_spec_arguments(parser)
    _add_dispatch_arguments(parser)
    args = parser.parse_args(argv)
    return _run_jobs(_parse_range(args.ns), args)


def _cmd_objectives(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro objectives",
        description=(
            "List registered covering objectives: for each, the backends "
            "that accept it (probed on uniform K_n jobs) and the arguments "
            "of its lower-bound certificate."
        ),
    )
    parser.parse_args(argv)
    from .api import CoverSpec, available_backends, get_backend
    from .core.objective import available_objectives, get_objective
    from .util.tables import Table

    table = Table(
        "Covering objectives (repro.core.objective registry)",
        ["objective", "backends", "certificate", "description"],
    )
    for name in available_objectives():
        obj = get_objective(name)
        # Probe odd and even uniform rings: a backend claims the
        # objective when it takes either shape (closed_form is
        # per-parity for some objectives).
        probes = [
            CoverSpec.for_ring(9, objective=name),
            CoverSpec.for_ring(8, objective=name),
        ]
        supported = [
            backend
            for backend in available_backends()
            if any(get_backend(backend).supports(spec) for spec in probes)
        ]
        cert_args = obj.instance_certificate(probes[1].instance()).arguments
        table.add_row(
            name,
            ",".join(supported),
            "+".join(arg.name for arg in cert_args),
            obj.description,
        )
    print(table.render())
    return 0


def _cmd_backends(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro backends",
        description=(
            "List registered backends: the objectives each accepts (probed "
            "on uniform K_n jobs), the result status it emits, its "
            "optimality certificate, and engine/size notes."
        ),
    )
    parser.parse_args(argv)
    from .api import CoverSpec, available_backends, get_backend
    from .api.backends import EXACT_INSTANCE_MAX_N, EXACT_KN_MAX_N
    from .core.objective import available_objectives
    from .sat import SAT_MAX_N, available_engines, resolve_engine
    from .util.tables import Table

    notes = {
        "closed_form": "Theorem 1/2 constructions; O(n²), any n",
        "exact": (
            f"branch-and-bound; K_n n ≤ {EXACT_KN_MAX_N}, "
            f"instances n ≤ {EXACT_INSTANCE_MAX_N}"
        ),
        "exact_sharded": f"root-orbit sharded B&B; uniform K_n n ≤ {EXACT_KN_MAX_N}",
        "heuristic": "greedy + local search; any n, never certified",
        "sat": (
            f"cardinality-SAT walk; n ≤ {SAT_MAX_N}, REPRO_SAT="
            f"{resolve_engine()} (runnable: {','.join(available_engines())})"
        ),
    }
    status = {
        "closed_form": "closed_form",
        "exact": "proven_optimal",
        "exact_sharded": "proven_optimal",
        "heuristic": "feasible",
        "sat": "proven_optimal",
    }
    certificate = {
        "closed_form": "formula lower bounds",
        "exact": "branch_and_bound_exhaustive",
        "exact_sharded": "branch_and_bound_exhaustive",
        "heuristic": "(none)",
        "sat": "sat_unsat_core (replayable)",
    }
    table = Table(
        "Backends (repro.api registry)",
        ["backend", "objectives", "status", "certificate", "notes"],
    )
    for name in available_backends():
        backend = get_backend(name)
        objectives = [
            obj
            for obj in available_objectives()
            if any(
                backend.supports(CoverSpec.for_ring(n, objective=obj))
                for n in (9, 8)
            )
        ]
        table.add_row(
            name,
            ",".join(objectives) or "(probe-dependent)",
            status.get(name, "?"),
            certificate.get(name, "?"),
            notes.get(name, ""),
        )
    print(table.render())
    return 0


def _cmd_worker(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description=(
            "Serve dispatcher jobs: with no arguments, read spec-JSON job "
            "lines from stdin and emit Result envelopes on stdout (the "
            "subprocess transport); with --spool DIR, poll a shared spool "
            "directory (claim jobs by atomic rename, write results "
            "atomically) until DIR/STOP appears."
        ),
    )
    parser.add_argument("--spool", metavar="DIR",
                        help="serve a spool directory instead of stdio")
    parser.add_argument("--poll", type=float, default=0.05, metavar="SECONDS",
                        help="spool polling interval (default 0.05)")
    parser.add_argument("--max-jobs", type=int, metavar="K",
                        help="exit after serving K spool jobs")
    parser.add_argument("--exit-when-idle", action="store_true",
                        help="exit when the spool has no eligible jobs")
    parser.add_argument("--worker-id", metavar="ID",
                        help="spool worker id (default: w<pid>)")
    parser.add_argument("--checkpoint-every", type=int, metavar="NODES",
                        help="flush a resumable checkpoint every NODES search "
                             "nodes (spool default: 2048)")
    parser.add_argument("--preempt-after", metavar="X",
                        help="spool mode: bow out of a proof after X ('800n' "
                             "nodes or seconds), checkpoint it, and hand the "
                             "job back for any worker to resume")
    parser.add_argument("--heartbeat-every", type=float, metavar="SECONDS",
                        help="spool mode: renew the claim's heartbeat lease at "
                             "most this often (default 0.5)")
    parser.add_argument("--fault-plan", metavar="PLAN",
                        help="fault-injection plan (inline JSON or @file) for "
                             "this worker — chaos testing only")
    args = parser.parse_args(argv)
    from .dispatch import spool_worker_loop, stdio_worker_loop
    from .dispatch.faults import FAULT_PLAN_ENV, _load_plan_text
    from .dispatch.worker import (
        HEARTBEAT_EVERY_DEFAULT,
        SPOOL_CHECKPOINT_EVERY_DEFAULT,
    )

    if args.fault_plan:
        import os

        # Validate eagerly (a typo should fail the command line, not the
        # first job) and pass through the environment, the same door the
        # dispatcher-side --fault-plan uses.
        os.environ[FAULT_PLAN_ENV] = _load_plan_text(args.fault_plan).to_json()
    if args.spool:
        return spool_worker_loop(
            args.spool,
            poll=args.poll,
            exit_when_idle=args.exit_when_idle,
            max_jobs=args.max_jobs,
            worker_id=args.worker_id,
            checkpoint_every=(
                args.checkpoint_every
                if args.checkpoint_every is not None
                else SPOOL_CHECKPOINT_EVERY_DEFAULT
            ),
            preempt_after=args.preempt_after,
            heartbeat_every=(
                args.heartbeat_every
                if args.heartbeat_every is not None
                else HEARTBEAT_EVERY_DEFAULT
            ),
        )
    return stdio_worker_loop(checkpoint_every=args.checkpoint_every)


def _cmd_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Run the long-lived HTTP solver service (repro.serve): "
            "POST /v1/solve answers from the result cache when it can, "
            "coalesces concurrent identical submissions onto one solve, "
            "and queues the rest in a persistent SQLite job ledger — a "
            "restarted server resumes unfinished proofs from their "
            "checkpoints.  SIGTERM/SIGINT drain gracefully (exit 3 when "
            "a preempted proof is left checkpointed, else 0)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8323,
                        help="bind port (default 8323; 0 picks a free one)")
    parser.add_argument("--workers", type=int, default=1,
                        help="solver worker threads (default 1)")
    parser.add_argument("--transport", choices=("inproc", "subprocess", "spool"),
                        help="run solves through the dispatcher transport "
                             "instead of in-process (in-process gives live "
                             "SSE progress and checkpoint resume)")
    parser.add_argument("--ledger", metavar="DIR",
                        help="persistent state directory: jobs.sqlite3 + "
                             "checkpoints/ (default: <cache dir>/serve)")
    parser.add_argument("--cache", metavar="DIR",
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--max-inflight-weight", type=float, metavar="W",
                        help="admission budget in 4**n·λ cost-weight units; "
                             "submissions beyond it get 429 + Retry-After "
                             "(an idle service always admits)")
    parser.add_argument("--degrade", choices=("heuristic",),
                        help="arm graceful degradation (rides the dispatcher; "
                             "implies --transport inproc unless one is given)")
    parser.add_argument("--checkpoint-every", type=int, default=256,
                        metavar="NODES",
                        help="flush resumable checkpoints every NODES search "
                             "nodes (default 256)")
    parser.add_argument("--preempt-after", metavar="X",
                        help="self-drain budget per proof slice ('800n' nodes "
                             "or seconds): preempt the active proof, leave it "
                             "checkpointed + pending, and exit 3 — restart to "
                             "resume (testing/ops drills)")
    args = parser.parse_args(argv)

    from .api import default_cache_dir
    from .serve import SolverService, run_server
    from .util.errors import ReproError

    cache = _cache_from_args(args)
    ledger_dir = args.ledger or (default_cache_dir() / "serve")
    preempt_after = None
    if args.preempt_after:
        from .dispatch.worker import parse_preempt_after

        try:
            preempt_after = parse_preempt_after(args.preempt_after)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    service = SolverService(
        ledger_dir,
        cache=cache,
        workers=args.workers,
        transport=args.transport,
        degrade=args.degrade,
        max_inflight_weight=args.max_inflight_weight,
        checkpoint_every=args.checkpoint_every,
        preempt_after=preempt_after,
    )
    try:
        return run_server(service, args.host, args.port)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# experiments / rho
# ---------------------------------------------------------------------------


def _list_experiments() -> int:
    for key, (desc, _) in _EXPERIMENTS.items():
        print(f"{key:4s} {desc}")
    return 0


def _run_experiments(selected: list[str]) -> int:
    selected = selected or list(_EXPERIMENTS)
    unknown = [e for e in selected if e not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} (try --list)", file=sys.stderr)
        return 2
    for key in selected:
        desc, runner = _EXPERIMENTS[key]
        print(f"\n# {key} — {desc}\n")
        print(runner().render())
    return 0


def _cmd_experiments(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro experiments",
        description="Regenerate tables from 'A Note on Cycle Covering' (SPAA 2001).",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    args = parser.parse_args(argv)
    if args.list:
        return _list_experiments()
    return _run_experiments(args.experiments)


def _print_rho(spec: str) -> int:
    from .core.formulas import optimal_excess, rho, theorem_cycle_mix
    from .util.tables import Table

    table = Table("ρ(n) — minimum DRC-covering sizes", ["n", "ρ(n)", "C3", "C4", "excess"])
    for n in _parse_range(spec):
        mix = theorem_cycle_mix(n)
        table.add_row(n, rho(n), mix[3], mix[4], optimal_excess(n))
    print(table.render())
    return 0


def _cmd_rho(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro rho",
        description="Print closed-form ρ(n) over a range.",
    )
    parser.add_argument("range", metavar="RANGE", help="e.g. 6..20 or 5,9,14")
    args = parser.parse_args(argv)
    return _print_rho(args.range)


# ---------------------------------------------------------------------------
# entry point (subcommands + the legacy flat spelling)
# ---------------------------------------------------------------------------


def _legacy_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate tables from 'A Note on Cycle Covering' (SPAA 2001). "
            "Subcommands: solve, sweep, experiments, rho (see --help of each)."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--rho", metavar="RANGE", help="print ρ(n) for n in RANGE (e.g. 6..20 or 5,9,14)"
    )
    args = parser.parse_args(argv)
    if args.list:
        return _list_experiments()
    if args.rho:
        return _print_rho(args.rho)
    return _run_experiments(args.experiments)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
        if command == "solve":
            return _cmd_solve(rest)
        if command == "sweep":
            return _cmd_sweep(rest)
        if command == "objectives":
            return _cmd_objectives(rest)
        if command == "backends":
            return _cmd_backends(rest)
        if command == "worker":
            return _cmd_worker(rest)
        if command == "serve":
            return _cmd_serve(rest)
        if command == "experiments":
            return _cmd_experiments(rest)
        return _cmd_rho(rest)
    return _legacy_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
