"""Command-line interface: regenerate the paper's tables.

Usage::

    python -m repro                 # run every experiment, print tables
    python -m repro E1 E2           # selected experiments
    python -m repro --list          # what's available
    python -m repro --rho 6..20     # just the ρ(n) values over a range

Experiments map 1:1 to DESIGN.md §4 / the benchmark suite; this entry
point exists so the tables are reachable without pytest.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from .analysis import experiments as X

_EXPERIMENTS: dict[str, tuple[str, Callable[[], "X.ExperimentResult"]]] = {
    "E1": ("Theorem 1 (odd n)", lambda: X.experiment_theorem1((5, 7, 9, 11, 13, 15, 17, 21))),
    "E2": ("Theorem 2 (even n)", lambda: X.experiment_theorem2((4, 6, 8, 10, 12, 14, 16, 18))),
    "E3": ("paper worked example", X.experiment_paper_example),
    "E4": ("cost model", lambda: X.experiment_cost_model((7, 9, 11, 12, 13))),
    "E5": ("non-DRC baselines", lambda: X.experiment_nondrc_baseline((5, 7, 9, 11, 13))),
    "E6": ("survivability sweep", lambda: X.experiment_survivability((6, 8, 9, 11))),
    "E8": ("λK_n extension", lambda: X.experiment_lambda_fold((5, 7, 6, 8), (1, 2, 3))),
    "E9": ("other topologies", X.experiment_topologies),
    "E10": ("exact solver certification", lambda: X.experiment_solver_certification((4, 5, 6, 7))),
    "E11": ("protection vs restoration", lambda: X.experiment_protection_vs_restoration((8, 11, 14))),
    "E12": ("dual-failure degradation", lambda: X.experiment_dual_failures((8, 10, 12))),
}


def _parse_range(spec: str) -> list[int]:
    if ".." in spec:
        lo, hi = spec.split("..", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(s) for s in spec.split(",")]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables from 'A Note on Cycle Covering' (SPAA 2001).",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--rho", metavar="RANGE", help="print ρ(n) for n in RANGE (e.g. 6..20 or 5,9,14)"
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, (desc, _) in _EXPERIMENTS.items():
            print(f"{key:4s} {desc}")
        return 0

    if args.rho:
        from .core.formulas import optimal_excess, rho, theorem_cycle_mix
        from .util.tables import Table

        table = Table("ρ(n) — minimum DRC-covering sizes", ["n", "ρ(n)", "C3", "C4", "excess"])
        for n in _parse_range(args.rho):
            mix = theorem_cycle_mix(n)
            table.add_row(n, rho(n), mix[3], mix[4], optimal_excess(n))
        print(table.render())
        return 0

    selected = args.experiments or list(_EXPERIMENTS)
    unknown = [e for e in selected if e not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} (try --list)", file=sys.stderr)
        return 2

    for key in selected:
        desc, runner = _EXPERIMENTS[key]
        print(f"\n# {key} — {desc}\n")
        print(runner().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
