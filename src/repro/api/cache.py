"""Content-addressed on-disk result cache.

Entries are keyed by the canonical spec hash
(:attr:`~repro.api.spec.CoverSpec.spec_hash` — SHA-256 of the spec's
compact canonical JSON) and stored as the result's own deterministic
JSON envelope at ``<root>/<hash[:2]>/<hash>.json``.  Because the
envelope serialises byte-identically, a cache hit returns *exactly*
the bytes the first run produced — repeated sweeps and experiment
reruns skip the solve and still emit diffable output.

Robustness contract:

* writes are atomic (temp file + ``os.replace``), so a crashed run
  never leaves a half-written entry — and *concurrent* writers (two
  dispatch workers completing the same spec hash) cannot interleave
  partial JSON: each writes a private temp file and the last rename
  wins whole, a property the multi-process race test in
  ``tests/api/test_cache.py`` hammers;
* reads re-parse and re-validate the envelope (format tag, schema
  major, spec-hash consistency, covering structure); any failure
  *quarantines* the entry — it is deleted and reported as a miss, and
  the job is simply re-solved;
* a hit whose embedded spec hash disagrees with the requested spec
  (hash collision or hand-edited file) is likewise discarded.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..util.errors import InvalidCoveringError, ReproError
from .result import Result
from .spec import CoverSpec, SpecError

__all__ = ["ResultCache", "default_cache_dir", "CACHE_DIR_ENV"]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class ResultCache:
    """A content-addressed store of :class:`~repro.api.result.Result`
    envelopes under ``root``."""

    root: Path
    verify: bool = False  # re-run the coverage verifier on every hit
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    evictions: int = field(default=0, init=False)
    # Requests absorbed without a solve *or* a disk read because an
    # identical in-flight computation served them: batch duplicates in
    # the dispatcher, concurrent identical submissions in repro.serve.
    # The cache is the natural home for the counter — every layer that
    # dedupes by spec hash already holds the ResultCache, and stats()
    # stays the single accounting surface.
    coalesced: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @classmethod
    def open(cls, where: "ResultCache | str | Path | None") -> "ResultCache | None":
        """Coerce a user-facing cache argument: an existing cache passes
        through, a path opens one, ``None`` stays ``None`` (disabled)."""
        if where is None or isinstance(where, ResultCache):
            return where
        return cls(Path(where))

    # -- addressing ------------------------------------------------------

    def path_for(self, spec: CoverSpec) -> Path:
        h = spec.spec_hash
        return self.root / h[:2] / f"{h}.json"

    # -- operations ------------------------------------------------------

    def get(self, spec: CoverSpec) -> Result | None:
        """The cached result for ``spec``, or ``None``.

        Corrupt or inconsistent entries are deleted (quarantined) and
        reported as misses — the cache never propagates a bad artifact.
        """
        path = self.path_for(spec)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            result = Result.from_json(text, verify=self.verify)
            if result.spec != spec:
                raise SpecError(
                    "cache entry's spec does not match the requested spec"
                )
        except (
            ReproError,
            InvalidCoveringError,
            SpecError,
            ValueError,
            KeyError,
            TypeError,
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, result: Result) -> Path:
        """Store ``result`` under its spec hash (atomic write)."""
        path = self.path_for(result.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = result.to_json()
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def evict(self, spec: CoverSpec) -> None:
        """Drop the entry for ``spec`` (the service quarantines hits
        that fail its demand validation through this)."""
        self._quarantine(self.path_for(spec))

    def _quarantine(self, path: Path) -> None:
        try:
            path.unlink()
            self.evictions += 1
        except OSError:
            pass

    # -- maintenance -----------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("??/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def note_coalesced(self, count: int = 1) -> None:
        """Record ``count`` requests served by piggybacking on an
        identical in-flight solve (no disk read, no engine run)."""
        if count > 0:
            self.coalesced += count

    def stats(self) -> dict[str, int | float]:
        """Counters for this cache handle's lifetime, plus the on-disk
        entry count.  ``hit_rate`` is hits / (hits + misses), 0.0 when
        the cache has not been consulted yet."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "coalesced": self.coalesced,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
