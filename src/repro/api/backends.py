"""Backend implementations behind the declarative API.

A :class:`Backend` turns a :class:`~repro.api.spec.CoverSpec` into a
:class:`~repro.api.result.Result`.  Four ship by default:

``closed_form``
    The paper's Theorem 1/2 constructions (and, for odd ``n``, their
    λ-fold repetition).  Applies only where a formula certificate proves
    optimality — the lower-bound certificate is recomputed and attached,
    never trusted.  O(n²); no search.
``exact``
    The branch-and-bound certifier: :meth:`SolverEngine.min_covering`
    for uniform ``K_n`` demand, :meth:`SolverEngine.min_covering_instance`
    for everything else (``λK_n``, restricted variants).  Exhaustive —
    status ``proven_optimal``.
``exact_sharded``
    The same certification scaled out across processes by root-orbit
    partitioning (uniform ``K_n`` only — the shard seam lives in the
    root branch of the All-to-All search).
``heuristic``
    Deterministic max-coverage greedy tightened by the
    :mod:`repro.core.improve` local search.  Status ``feasible`` —
    valid, never claimed optimal.

Every backend is **objective-generic**: the spec's ``objective`` names
a registered :class:`repro.core.objective.Objective`, which supplies
the cost model, the engine's pruning bound, the per-tier lower-bound
certificate, and the improver's move scoring.  ``closed_form`` claims
only the objectives its constructions certify (the Theorem 1/2
coverings are simultaneously ρ-optimal and ring-size-sum-optimal for
every ``n`` except the ``n = 4`` ADM case); ``exact`` /
``exact_sharded`` / ``heuristic`` take any registered objective, and
Manthey-style restricted covers (``CoverSpec.allowed_sizes``) flow
through the exact and heuristic tiers' filtered block tables.

Custom backends register through :func:`register_backend`; the router
and CLI discover them via :func:`available_backends`.

Warm-start hints flow *between* tiers at this layer: a uniform-``K_n``
exact solve with ``use_hints=True`` first asks the closed-form tier
for an inclusive upper bound (exactly ρ-sized where its certificate
applies), so the search opens with the strongest possible incumbent.
The greedy+improve pass is *not* re-run here — every exact engine path
already seeds its own greedy/improver incumbent internally, and the
instance solver accepts no external bound at all.  Certification runs
(``use_hints=False``) get no cross-tier hint — that is what makes
their node counts comparable with ``BENCH_solver.json``.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from ..core.construction import optimal_covering
from ..core.covering import Covering
from ..core.engine import DEFAULT_NODE_LIMIT, SolverEngine, SolverStats
from ..core.formulas import optimal_excess, rho
from ..core.objective import Objective as CoverObjective
from ..core.objective import get_objective
from ..util.errors import SolverError
from .checkpoints import CheckpointStore
from .result import Result
from .spec import CoverSpec, SpecError

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "EXACT_KN_MAX_N",
    "EXACT_INSTANCE_MAX_N",
]

# The exact solvers' size ceilings (mirrored from the engine's own
# guards so the router can refuse *before* dispatch, with a routing
# error instead of a deep solver failure).
EXACT_KN_MAX_N = 12
EXACT_INSTANCE_MAX_N = 10


@runtime_checkable
class Backend(Protocol):
    """A registered solving strategy."""

    name: str

    def supports(self, spec: CoverSpec) -> bool:
        """Can this backend honour the spec's guarantees?  Must be cheap
        (formula-level work only) — the router calls it while choosing."""
        ...

    def run(
        self,
        spec: CoverSpec,
        *,
        checkpoints=None,
        checkpoint_every: int | None = None,
        preempt=None,
    ) -> Result:
        """Solve the job.  Only called when :meth:`supports` is true.

        ``checkpoints`` is an optional
        :class:`~repro.api.checkpoints.CheckpointStore`: resumable
        backends load the spec's checkpoint from it before searching,
        flush snapshots into it every ``checkpoint_every`` nodes (and
        on preemption), and delete the entry on success.  ``preempt``
        is polled with the live engine stats; returning truthy raises
        :class:`~repro.util.errors.SolverPreempted` with the flushed
        checkpoint.  Backends without resumable state accept and
        ignore the keywords.  The service only passes them when the
        caller opted in, so ``run(spec)`` remains a valid minimal
        implementation for custom backends.
        """
        ...


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register a backend under ``backend.name``; refuses to shadow an
    existing name unless ``replace=True``."""
    name = backend.name
    if not replace and name in _REGISTRY:
        raise SpecError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown backend {name!r} (available: {', '.join(available_backends())})"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _deadline_of(spec: CoverSpec) -> float | None:
    if spec.time_budget is None:
        return None
    return time.time() + spec.time_budget


def _node_limit_of(spec: CoverSpec) -> int:
    return spec.node_limit if spec.node_limit is not None else DEFAULT_NODE_LIMIT


def _objective_of(spec: CoverSpec) -> CoverObjective:
    return get_objective(spec.objective)


def warm_start_bound(spec: CoverSpec) -> int | None:
    """An inclusive upper bound (in the spec's objective units) from
    the closed-form tier, or ``None``.

    Only the formula tier is consulted: its bound is exactly
    optimum-sized where the certificate applies, and the exact engine
    paths already seed their own greedy+improve incumbent internally,
    so re-running the heuristic here would duplicate work for no
    tighter bound.  Never consulted when the spec disables hints.
    """
    if not spec.use_hints:
        return None
    closed = get_backend("closed_form")
    if closed.supports(spec):
        return _objective_of(spec).covering_value(closed.run(spec).covering)
    return None


# ---------------------------------------------------------------------------
# closed_form
# ---------------------------------------------------------------------------


class ClosedFormBackend:
    """Theorem 1/2 constructions (λ-fold repetition for odd ``n``).

    Claims only the objectives its constructions *certify* — i.e. where
    a formula-level argument proves the construction's value equals the
    objective's lower bound:

    ``min_blocks``
        λ = 1 always; λ > 1 for odd ``n`` whenever the λ-repetition
        bound meets ``λ·ρ(n)``.
    ``min_total_size``
        The same coverings are simultaneously ring-size-sum optimal
        wherever their excess matches the end-parity bound: every odd
        ``n`` (exact decompositions, any λ — degrees stay even), and
        even ``n`` at λ = 1 whose theorem excess is exactly ``n/2``
        (all even ``n ≥ 6``; the ``n = 4`` example covering is not ADM
        optimal, so that job routes to the exact tier).
    """

    name = "closed_form"

    def supports(self, spec: CoverSpec) -> bool:
        if not spec.is_all_to_all or spec.allowed_sizes is not None:
            return False
        # The theorems build C3/C4 coverings: the spec must admit
        # 4-cycles and must not restrict the pool below them.
        if spec.max_size != 4:
            return False
        if spec.objective == "min_blocks":
            if spec.lam == 1:
                return True
            # λ-fold repetition is certified optimal exactly when the λ
            # lower bound meets λ·ρ(n) — always for odd n, never useful
            # for even n (the doubled-copy constructions beat it, so
            # the exact tier must decide).
            cert = _objective_of(spec).certificate(spec, "closed_form")
            return spec.n % 2 == 1 and cert.value == spec.lam * rho(spec.n)
        if spec.objective == "min_total_size":
            if spec.n % 2 == 1:
                return True  # exact decompositions: λ·|E| slots meet the bound
            return spec.lam == 1 and optimal_excess(spec.n) == spec.n // 2
        return False

    def run(
        self,
        spec: CoverSpec,
        *,
        checkpoints=None,
        checkpoint_every: int | None = None,
        preempt=None,
    ) -> Result:
        # No search state to checkpoint: the construction is O(n²).
        if not self.supports(spec):
            raise SpecError("closed_form backend does not support this spec")
        obj = _objective_of(spec)
        base = optimal_covering(spec.n)
        covering = base if spec.lam == 1 else Covering(spec.n, base.blocks * spec.lam)
        cert = obj.certificate(spec, "closed_form")
        value = obj.covering_value(covering)
        if value != cert.value:
            raise SolverError(
                f"closed-form covering has {spec.objective} value {value} but the "
                f"lower bound certifies {cert.value} — formula/construction mismatch"
            )
        theorem = "theorem1_odd" if spec.n % 2 == 1 else "theorem2_even"
        stats = SolverStats(nodes=0, best_value=value, proven_optimal=True)
        return Result(
            spec=spec,
            covering=covering,
            status="closed_form",
            backend=self.name,
            stats=stats,
            lower_bound=cert.value,
            certificates=(theorem,) + tuple(a.name for a in cert.arguments),
        )


# ---------------------------------------------------------------------------
# exact / exact_sharded
# ---------------------------------------------------------------------------


class ExactBackend:
    """Serial branch-and-bound certification (``K_n`` or instance),
    generic over every registered objective and over Manthey-style
    size restrictions."""

    name = "exact"

    def supports(self, spec: CoverSpec) -> bool:
        # Objective-generic: CoverSpec validation already guarantees the
        # objective is registered, so only the size ceilings gate here.
        if spec.is_all_to_all and spec.lam == 1:
            return spec.n <= EXACT_KN_MAX_N
        return spec.n <= EXACT_INSTANCE_MAX_N

    def run(
        self,
        spec: CoverSpec,
        *,
        checkpoints=None,
        checkpoint_every: int | None = None,
        preempt=None,
    ) -> Result:
        engine = SolverEngine(spec.n, max_size=spec.max_size)
        obj = _objective_of(spec)
        stats = SolverStats()
        deadline = _deadline_of(spec)
        node_limit = _node_limit_of(spec)
        store = CheckpointStore.open(checkpoints)
        resume = store.load(spec.spec_hash) if store is not None else None
        on_checkpoint = None
        if store is not None:
            on_checkpoint = lambda ckpt: store.save(spec.spec_hash, ckpt)  # noqa: E731
        try:
            if spec.is_all_to_all and spec.lam == 1:
                covering = engine.min_covering(
                    upper_bound=warm_start_bound(spec),
                    node_limit=node_limit,
                    stats=stats,
                    branching=spec.branching,
                    use_memo=spec.use_memo,
                    deadline=deadline,
                    objective=obj,
                    allowed_sizes=spec.allowed_sizes,
                    checkpoint=resume,
                    checkpoint_every=checkpoint_every,
                    on_checkpoint=on_checkpoint,
                    preempt=preempt,
                )
            else:
                # The instance solver has no external-bound seam — it seeds
                # its own greedy incumbent — so use_hints cannot thread a
                # cross-tier bound into this path (see the module docstring).
                inst = spec.instance()
                covering = engine.min_covering_instance(
                    inst,
                    node_limit=node_limit,
                    stats=stats,
                    deadline=deadline,
                    objective=obj,
                    allowed_sizes=spec.allowed_sizes,
                    checkpoint=resume,
                    checkpoint_every=checkpoint_every,
                    on_checkpoint=on_checkpoint,
                    preempt=preempt,
                )
        except SolverError as exc:
            # Budget overruns and preemptions flush their resumable
            # state before propagating, so the next run picks up here.
            if store is not None and exc.checkpoint is not None:
                store.save(spec.spec_hash, exc.checkpoint)
            raise
        if store is not None:
            store.delete(spec.spec_hash)
        cert = obj.certificate(spec, "exact")
        result = Result(
            spec=spec,
            covering=covering,
            status="proven_optimal",
            backend=self.name,
            stats=stats,
            lower_bound=cert.value,
            certificates=("branch_and_bound_exhaustive",)
            + tuple(a.name for a in cert.arguments),
        )
        if resume is not None:
            # Runtime-only resume lineage: visible to callers, stripped
            # from the serialized envelope (byte-identity guarantee).
            result = result.annotate_resume(
                {
                    "resumed": True,
                    "resumes": resume.resumes + 1,
                    "checkpoint_nodes": resume.nodes,
                }
            )
        return result


class ExactShardedBackend:
    """Root-orbit-sharded certification across worker processes."""

    name = "exact_sharded"

    def supports(self, spec: CoverSpec) -> bool:
        # Objective-generic (any registered objective); the shard seam
        # constrains the demand shape, not the objective.
        return spec.is_all_to_all and spec.lam == 1 and spec.n <= EXACT_KN_MAX_N

    def run(
        self,
        spec: CoverSpec,
        *,
        checkpoints=None,
        checkpoint_every: int | None = None,
        preempt=None,
    ) -> Result:
        # Checkpoint keywords are accepted and ignored: shard workers
        # run in separate processes and their interleaved frontiers have
        # no single serializable stack — resumable sharded certification
        # would need per-shard checkpoints (future work; the serial
        # `exact` backend is the resumable path).
        if not self.supports(spec):
            raise SpecError(
                "exact_sharded certifies uniform K_n demand only "
                "(the shard seam is the All-to-All root orbit)"
            )
        engine = SolverEngine(spec.n, max_size=spec.max_size)
        obj = _objective_of(spec)
        stats = SolverStats()
        covering = engine.min_covering_sharded(
            workers=spec.workers,
            upper_bound=warm_start_bound(spec),
            node_limit=_node_limit_of(spec),
            stats=stats,
            branching=spec.branching,
            deadline=_deadline_of(spec),
            objective=obj,
            allowed_sizes=spec.allowed_sizes,
        )
        cert = obj.certificate(spec, "exact")
        return Result(
            spec=spec,
            covering=covering,
            status="proven_optimal",
            backend=self.name,
            stats=stats,
            lower_bound=cert.value,
            certificates=("branch_and_bound_exhaustive",)
            + tuple(a.name for a in cert.arguments),
        )


# ---------------------------------------------------------------------------
# heuristic
# ---------------------------------------------------------------------------


class HeuristicBackend:
    """Greedy + local-search tier: always feasible, never certified.
    Objective-generic — the improver accepts moves under the spec
    objective's scoring key, and size restrictions filter every pool
    the greedy and the moves may draw from."""

    name = "heuristic"

    def supports(self, spec: CoverSpec) -> bool:
        # Objective-generic and size-unlimited: every validated spec
        # (whose objective is registered by construction) is accepted.
        return True

    def run(
        self,
        spec: CoverSpec,
        *,
        checkpoints=None,
        checkpoint_every: int | None = None,
        preempt=None,
    ) -> Result:
        # No search tree to checkpoint: greedy + improver is polynomial.
        from ..core.improve import ImproveStats, improve_covering

        inst = spec.instance()
        engine = SolverEngine(spec.n, max_size=spec.max_size)
        obj = _objective_of(spec)
        covering = self._greedy(engine, inst, spec)
        if spec.improve:
            covering = improve_covering(
                covering,
                inst,
                pool=spec.pool,
                max_size=spec.max_size,
                stats=ImproveStats(),
                objective=obj,
                allowed_sizes=spec.allowed_sizes,
            )
        stats = SolverStats(
            nodes=0, best_value=obj.covering_value(covering), proven_optimal=False
        )
        cert = obj.certificate(spec, "heuristic")
        return Result(
            spec=spec,
            covering=covering,
            status="feasible",
            backend=self.name,
            stats=stats,
            lower_bound=cert.value,
            certificates=tuple(a.name for a in cert.arguments),
        )

    @staticmethod
    def _greedy(engine: SolverEngine, inst, spec: CoverSpec) -> Covering:
        """Pool resolution mirrors :func:`improved_greedy_covering`:
        ``auto`` prefers the tight pool (zero-waste blocks) and falls
        back to convex; an explicit pool is honoured strictly (the
        greedy baseline's historical error contract relies on a tight
        pool that cannot reach some demand *raising*)."""
        if spec.pool == "auto":
            try:
                return engine.greedy_cover(
                    inst, pool="tight", allowed_sizes=spec.allowed_sizes
                )
            except SolverError:
                return engine.greedy_cover(
                    inst, pool="convex", allowed_sizes=spec.allowed_sizes
                )
        return engine.greedy_cover(inst, pool=spec.pool, allowed_sizes=spec.allowed_sizes)


register_backend(ClosedFormBackend())
register_backend(ExactBackend())
register_backend(ExactShardedBackend())
register_backend(HeuristicBackend())

# The SAT certification backend lives in its own subsystem
# (:mod:`repro.sat`); imported after every definition above so its
# module can import this one's helpers without a cycle.
from ..sat.backend import SatBackend  # noqa: E402

register_backend(SatBackend())
