"""Checkpoint persistence for the api layer.

:class:`CheckpointStore` sits next to the
:class:`~repro.api.cache.ResultCache` and addresses search checkpoints
by the same canonical spec hash, one file per in-flight job at
``<root>/<hash>.ckpt.json``.  The spool transport mounts one at
``<spool>/checkpoints/`` so a worker killed mid-proof leaves resumable
state for whichever worker reclaims the job; the CLI mounts one at
``--checkpoint-dir``.

Contract (mirrors the result cache):

* writes are atomic (temp file + ``os.replace``) — a crashed flush
  never leaves a torn checkpoint, and concurrent writers cannot
  interleave partial JSON;
* loads re-parse and re-validate the schema-versioned payload; corrupt
  entries are quarantined (deleted) and reported as absent — a bad
  checkpoint degrades to solving from scratch, never to a bad result;
* completed jobs delete their checkpoint (:meth:`CheckpointStore.delete`),
  so the directory only ever holds in-flight proofs.

:class:`MemoryCheckpointStore` is the same interface over a dict — the
stdio worker protocol uses it to resume from a checkpoint that arrived
over the wire rather than from disk.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from ..core.checkpoint import SearchCheckpoint
from ..util.errors import ReproError

__all__ = ["CHECKPOINT_SUFFIX", "CheckpointStore", "MemoryCheckpointStore"]

CHECKPOINT_SUFFIX = ".ckpt.json"


class CheckpointStore:
    """Spec-hash-addressed search checkpoints under ``root``."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    @classmethod
    def open(
        cls, where: "CheckpointStore | str | Path | None"
    ) -> "CheckpointStore | None":
        """Coerce a user-facing checkpoint-store argument: an existing
        store passes through, a path opens one, ``None`` stays ``None``
        (checkpointing disabled)."""
        if where is None or isinstance(where, CheckpointStore):
            return where
        return cls(Path(where))

    def path_for(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}{CHECKPOINT_SUFFIX}"

    def load(self, spec_hash: str) -> SearchCheckpoint | None:
        """The persisted checkpoint for ``spec_hash``, or ``None``.
        Corrupt entries are quarantined (deleted) and reported absent —
        the job simply restarts from scratch."""
        path = self.path_for(spec_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return SearchCheckpoint.from_json(text)
        except (ReproError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def save(self, spec_hash: str, checkpoint: SearchCheckpoint) -> Path:
        """Persist ``checkpoint`` under ``spec_hash`` (atomic write)."""
        path = self.path_for(spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = checkpoint.to_json()
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def delete(self, spec_hash: str) -> None:
        """Drop the checkpoint for ``spec_hash`` (job completed)."""
        try:
            self.path_for(spec_hash).unlink()
        except OSError:
            pass


class MemoryCheckpointStore(CheckpointStore):
    """The :class:`CheckpointStore` interface over an in-process dict —
    nothing touches disk.  Used by the stdio worker protocol, where the
    resume checkpoint arrives in the job message and the flushed one
    leaves in the preempt reply."""

    def __init__(self) -> None:
        self.entries: dict[str, SearchCheckpoint] = {}

    def load(self, spec_hash: str) -> SearchCheckpoint | None:
        return self.entries.get(spec_hash)

    def save(self, spec_hash: str, checkpoint: SearchCheckpoint) -> str:
        self.entries[spec_hash] = checkpoint
        return spec_hash

    def delete(self, spec_hash: str) -> None:
        self.entries.pop(spec_hash, None)
