"""The service front door: :func:`solve` and :func:`solve_batch`.

``solve(spec)`` is the repo's single call path into the covering
machinery: route the spec to a backend (or honour its pin), serve from
the content-addressed cache when one is supplied, run, validate, store.
``solve_batch`` is the sweep shape — one call, many specs, shared
cache — and the serializable :class:`~repro.api.spec.CoverSpec` is the
wire format a distributed dispatcher would ship to remote workers (the
ROADMAP's distributed-``solve_many`` seam).

Every result is re-checked against the spec's demand before it is
returned or cached — no backend, present or future, can hand back a
non-covering without tripping :class:`InvalidCoveringError` here.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import replace

from ..util.errors import InvalidCoveringError
from .cache import ResultCache
from .result import Result
from .router import route_backend
from .spec import CoverSpec
from .backends import get_backend

__all__ = ["solve", "solve_batch"]


def solve(
    spec: CoverSpec,
    *,
    cache: ResultCache | str | None = None,
    checkpoints: "CheckpointStore | str | None" = None,
    checkpoint_every: int | None = None,
    preempt=None,
    on_progress=None,
) -> Result:
    """Solve one covering job.

    ``cache`` may be a :class:`~repro.api.cache.ResultCache`, a
    directory path (opened as one), or ``None`` (no caching).  Cache
    hits come back with ``from_cache=True`` and byte-identical
    :meth:`~repro.api.result.Result.to_json` output.

    ``checkpoints`` (a :class:`~repro.api.checkpoints.CheckpointStore`
    or a directory path) makes the solve *resumable*: an existing
    checkpoint for this spec hash is resumed, a snapshot is flushed
    every ``checkpoint_every`` nodes, and a preempted/overrun run
    leaves its state in the store before raising
    :class:`~repro.util.errors.SolverPreempted` (node-limit overruns
    leave one too).  ``preempt`` is a callable polled with the live
    engine stats; returning truthy triggers exactly that preemption.
    Resume history never changes the envelope: the final result is
    byte-identical to an uninterrupted solve.

    ``on_progress`` is an observation-only sibling of ``preempt``: it
    is called with the same live engine stats at the same poll cadence
    (every 256 nodes past the poll floor), but its return value is
    ignored — it can never preempt.  The :mod:`repro.serve` SSE stream
    rides this hook.  It shares ``preempt``'s engine seam, so passing
    it routes the backend through the checkpoint-capable call shape.
    """
    from .checkpoints import CheckpointStore

    store = ResultCache.open(cache)
    if store is not None:
        hit = store.get(spec)
        if hit is not None:
            # The service-level invariant holds for hits too: a
            # structurally-valid envelope whose covering no longer
            # meets the demand (hand-edited, bit-rotted) is evicted
            # and the job re-solved, never served.
            try:
                _validate(hit)
            except InvalidCoveringError:
                store.evict(spec)
            else:
                return replace(hit, from_cache=True)

    backend = get_backend(route_backend(spec))
    ckpt_store = CheckpointStore.open(checkpoints)
    if on_progress is not None:
        # Fold the observer into the preempt callback: one engine poll
        # site serves both, and an observer alone can never preempt.
        inner = preempt

        def preempt(stats, _inner=inner, _observe=on_progress):
            _observe(stats)
            return bool(_inner(stats)) if _inner is not None else False

    if ckpt_store is None and checkpoint_every is None and preempt is None:
        # Keep the historical single-argument call shape so minimal
        # custom backends (``run(self, spec)``) stay compatible.
        result = backend.run(spec)
    else:
        result = backend.run(
            spec,
            checkpoints=ckpt_store,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
        )
    _validate(result)
    if store is not None:
        store.put(result)
    return result


def solve_batch(
    specs: Iterable[CoverSpec],
    *,
    cache: ResultCache | str | None = None,
    transport: str | object | None = None,
    workers: int | None = None,
    job_timeout: float | None = None,
    max_retries: int = 2,
    degrade: str | None = None,
) -> list[Result]:
    """Solve many jobs with one shared cache handle; result order
    matches spec order.

    ``transport=None`` (the default) solves in-line, serially, in this
    process.  Anything else — a transport name (``"inproc"``,
    ``"subprocess"``, ``"spool"``) or a
    :class:`~repro.dispatch.base.Transport` instance — routes the batch
    through the distributed dispatcher
    (:func:`repro.dispatch.dispatch_batch`): cost-weighted scheduling
    over ``workers`` workers, per-job ``job_timeout`` deadlines,
    retry-with-exclusion on worker death, and cache write-through, with
    envelopes byte-identical to the in-line path's.  ``degrade``
    (``"heuristic"``; dispatcher path only) re-routes jobs that exhaust
    their retries through the heuristic backend instead of failing the
    batch — the fallback envelopes carry runtime-only ``degraded``
    provenance and are never cached.
    """
    specs = list(specs)
    if transport is None:
        if degrade is not None:
            raise ValueError(
                "degrade requires a dispatcher transport (inproc/subprocess/spool)"
            )
        store = ResultCache.open(cache)
        return [solve(spec, cache=store) for spec in specs]
    from ..dispatch import dispatch_batch

    report = dispatch_batch(
        specs,
        transport=transport,
        workers=workers,
        cache=cache,
        job_timeout=job_timeout,
        max_retries=max_retries,
        degrade=degrade,
    )
    return report.results


def _validate(result: Result) -> None:
    """Reject any backend output that fails the spec's demand or its
    size restriction (the service-level invariant the Result envelope
    promises — cache hits re-pass through here too)."""
    spec = result.spec
    if not result.covering.covers(spec.instance()):
        raise InvalidCoveringError(
            f"backend {result.backend!r} returned a non-covering for "
            f"spec {spec.spec_hash[:12]}"
        )
    if spec.allowed_sizes is not None:
        allowed = set(spec.allowed_sizes)
        bad = sorted({blk.size for blk in result.covering.blocks} - allowed)
        if bad:
            raise InvalidCoveringError(
                f"backend {result.backend!r} used cycle length(s) {bad} outside "
                f"the spec's allowed sizes {tuple(sorted(allowed))} "
                f"(spec {spec.spec_hash[:12]})"
            )
