"""Declarative job specs: :class:`CoverSpec`, the API's wire format.

A :class:`CoverSpec` is a frozen, hashable, JSON-round-trippable
description of one covering job — *what* to cover (a ring's All-to-All
``λK_n`` demand or an arbitrary chord multiset), *what counts as done*
(objective, optimality requirement), *how hard to try* (node and time
budgets), and *which machinery may run* (backend pin, block pool,
worker/shard policy, solver-regime knobs).  Everything downstream —
the router, the backends, the result cache — keys off the spec alone,
so the same spec always means the same job.

Canonicalisation matters for the content-addressed cache: explicit
demand that turns out to be uniform All-to-All is normalised to the
``(n, λ)`` spelling at construction, so ``CoverSpec.from_instance(
lambda_all_to_all(7, 2))`` and ``CoverSpec.for_ring(7, lam=2)`` are
*equal*, hash identically, and share a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from functools import cached_property
from typing import Any

from ..core.engine import BRANCHING_ORDERS
from ..core.objective import available_objectives
from ..traffic.instances import Instance, all_to_all, lambda_all_to_all
from ..util import circular
from ..util.errors import ReproError

__all__ = ["CoverSpec", "SpecError", "SPEC_FORMAT", "SPEC_SCHEMA_MAJOR"]

SPEC_FORMAT = "repro-coverspec"
SPEC_SCHEMA_MAJOR = 1
# Minor 1 added the optional ``allowed_sizes`` field (restricted
# covers).  Specs without a restriction serialise in the minor-0
# spelling — no new key, same canonical JSON — so every pre-existing
# spec hash (and with it every cache entry and envelope byte) is
# untouched, while restricted specs self-describe as the newer minor.
_SPEC_SCHEMA_MINOR = 1

_POOLS = ("auto", "convex", "tight")


class SpecError(ReproError, ValueError):
    """A cover spec is malformed or internally inconsistent."""


@dataclass(frozen=True)
class CoverSpec:
    """One covering job, declaratively.

    Demand
        ``n`` is the ring order.  ``demand=None`` means the uniform
        ``λK_n`` instance with multiplicity ``lam`` (the paper's
        headline case at ``lam=1``); otherwise ``demand`` is a tuple of
        ``(a, b, multiplicity)`` chords and ``lam`` must stay 1.
    Objective & guarantees
        ``objective`` names a registered :class:`repro.core.objective.
        Objective` — the quantity minimised.  ``min_blocks`` (the
        paper's ρ) and ``min_total_size`` (ring-size sum / ADM count,
        refs [3]/[4]) ship by default; out-of-tree objectives join via
        :func:`repro.core.objective.register_objective` with no wire-
        format break.  ``allowed_sizes`` restricts candidate cycle
        lengths to a set ``L`` (Manthey-style restricted cycle covers);
        ``None`` admits every length up to ``max_size``, and a
        restriction naming all of ``3..max_size`` canonicalises back to
        ``None`` so equivalent specs share a hash.
        ``require_optimal=False`` admits the heuristic tier (greedy +
        local search).
    Budgets
        ``node_limit`` caps branch-and-bound nodes; ``time_budget`` is
        wall-clock seconds for the exact tiers.  Both raise on overrun
        rather than silently degrade.
    Machinery
        ``backend`` pins a registered backend by name (``None`` lets the
        router choose).  ``use_hints=False`` forbids warm-start upper
        bounds from other tiers — certification mode, where the solver
        must prove optimality knowing nothing.  (Cross-tier hints thread
        into the uniform ``K_n`` searches only; the instance solver
        seeds its own incumbent and takes no external bound.)
        ``pool``, ``max_size``,
        ``branching``, ``use_memo`` select the candidate-block pool and
        solver regime; ``workers``/``shard_threshold`` the scale-out
        policy.
    """

    n: int
    demand: tuple[tuple[int, int, int], ...] | None = None
    lam: int = 1
    max_size: int = 4
    pool: str = "auto"
    objective: str = "min_blocks"
    require_optimal: bool = True
    use_hints: bool = True
    improve: bool = True
    node_limit: int | None = None
    time_budget: float | None = None
    workers: int | None = None
    shard_threshold: int | None = None
    backend: str | None = None
    branching: str = "lex"
    use_memo: bool = True
    allowed_sizes: tuple[int, ...] | None = None

    # -- construction ----------------------------------------------------

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or isinstance(self.n, bool) or self.n < 3:
            raise SpecError(f"ring order n must be an int ≥ 3, got {self.n!r}")
        if not isinstance(self.lam, int) or isinstance(self.lam, bool) or self.lam < 1:
            raise SpecError(f"multiplicity λ must be an int ≥ 1, got {self.lam!r}")
        if self.max_size < 3:
            raise SpecError(f"max block size must be ≥ 3, got {self.max_size}")
        registered = available_objectives()
        if self.objective not in registered:
            raise SpecError(
                f"unknown objective {self.objective!r} — registered objectives: "
                f"{', '.join(registered)} (extend the set with "
                "repro.core.objective.register_objective)"
            )
        if self.pool not in _POOLS:
            raise SpecError(f"unknown pool {self.pool!r} (expected one of {_POOLS})")
        if self.branching not in BRANCHING_ORDERS:
            raise SpecError(
                f"unknown branching {self.branching!r} "
                f"(expected one of {BRANCHING_ORDERS})"
            )
        if self.node_limit is not None and self.node_limit < 1:
            raise SpecError(f"node_limit must be ≥ 1, got {self.node_limit}")
        if self.time_budget is not None and not self.time_budget > 0:
            raise SpecError(f"time_budget must be > 0, got {self.time_budget}")
        if self.workers is not None and self.workers < 1:
            raise SpecError(f"workers must be ≥ 1, got {self.workers}")
        if self.shard_threshold is not None and self.shard_threshold < 3:
            raise SpecError(f"shard_threshold must be ≥ 3, got {self.shard_threshold}")
        if self.allowed_sizes is not None:
            object.__setattr__(
                self, "allowed_sizes", self._normalise_allowed_sizes(self.allowed_sizes)
            )
        if self.demand is not None:
            if self.lam != 1:
                raise SpecError(
                    "explicit demand and λ > 1 are mutually exclusive — "
                    "fold the multiplicity into the demand entries"
                )
            object.__setattr__(self, "demand", self._normalise_demand(self.demand))
            self._canonicalise_uniform()

    def _normalise_allowed_sizes(self, raw) -> tuple[int, ...] | None:
        """Sorted, deduplicated, range-checked size restriction; a
        restriction naming every length in ``3..max_size`` is no
        restriction at all and canonicalises to ``None`` (one hash per
        equivalent job)."""
        try:
            entries = tuple(raw)
        except TypeError as exc:
            raise SpecError(f"allowed_sizes must be a sequence, got {raw!r}") from exc
        if not entries:
            raise SpecError("allowed_sizes must name at least one cycle length")
        for s in entries:
            if not isinstance(s, int) or isinstance(s, bool):
                raise SpecError(f"allowed cycle length {s!r} is not an int")
            if not 3 <= s <= self.max_size:
                raise SpecError(
                    f"allowed cycle length {s} is outside 3..max_size={self.max_size}"
                )
        sizes = tuple(sorted(set(entries)))
        if sizes == tuple(range(3, self.max_size + 1)):
            return None
        return sizes

    def _normalise_demand(
        self, raw: tuple[tuple[int, int, int], ...]
    ) -> tuple[tuple[int, int, int], ...]:
        merged: dict[tuple[int, int], int] = {}
        for entry in raw:
            try:
                a, b, m = entry
            except (TypeError, ValueError) as exc:
                raise SpecError(f"demand entry {entry!r} is not (a, b, m)") from exc
            if not all(isinstance(x, int) and not isinstance(x, bool) for x in (a, b, m)):
                raise SpecError(f"demand entry {entry!r} must be integers")
            if not (0 <= a < self.n and 0 <= b < self.n) or a == b:
                raise SpecError(f"demand chord ({a}, {b}) is not a chord of C_{self.n}")
            if m < 1:
                raise SpecError(f"demand multiplicity must be ≥ 1, got {m} for ({a}, {b})")
            e = circular.chord(a, b)
            merged[e] = merged.get(e, 0) + m
        if not merged:
            raise SpecError("explicit demand must request at least one chord")
        return tuple((a, b, m) for (a, b), m in sorted(merged.items()))

    def _canonicalise_uniform(self) -> None:
        """Fold a demand that is exactly uniform All-to-All back into the
        ``(n, λ)`` spelling so equivalent specs are equal (and cache to
        the same key)."""
        assert self.demand is not None
        if len(self.demand) != circular.n_chords(self.n):
            return
        mults = {m for (_, _, m) in self.demand}
        if len(mults) != 1:
            return
        object.__setattr__(self, "lam", mults.pop())
        object.__setattr__(self, "demand", None)

    @classmethod
    def for_ring(cls, n: int, *, lam: int = 1, **kwargs: Any) -> "CoverSpec":
        """The uniform ``λK_n`` job (the paper's All-to-All at λ=1)."""
        return cls(n=n, lam=lam, **kwargs)

    @classmethod
    def from_instance(cls, instance: Instance, **kwargs: Any) -> "CoverSpec":
        """A job for an arbitrary :class:`~repro.traffic.instances.Instance`
        (uniform instances canonicalise to the ``(n, λ)`` spelling)."""
        demand = tuple((a, b, m) for (a, b), m in sorted(instance.demand.items()))
        return cls(n=instance.n, demand=demand, **kwargs)

    # -- queries ---------------------------------------------------------

    @property
    def is_all_to_all(self) -> bool:
        """True for uniform ``λK_n`` demand (closed forms / the K_n
        solver apply); explicit non-uniform demand goes through the
        instance solver."""
        return self.demand is None

    def instance(self) -> Instance:
        """Materialise the traffic instance this spec describes."""
        if self.demand is None:
            if self.lam == 1:
                return all_to_all(self.n)
            return lambda_all_to_all(self.n, self.lam)
        return Instance(
            self.n, {(a, b): m for (a, b, m) in self.demand}, name="coverspec"
        )

    # -- serialisation & hashing ----------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The spec as a canonical JSON-ready dict (sorted demand, every
        schema-0 field explicit — the content-address preimage).

        Minor-1 fields (``allowed_sizes``) appear *only when set*, and
        the ``version`` stamp is the lowest minor that captures the
        content: an unrestricted spec keeps its historical minor-0
        bytes, hash, and cache entry.
        """
        minor = _SPEC_SCHEMA_MINOR if self.allowed_sizes is not None else 0
        payload: dict[str, Any] = {
            "format": SPEC_FORMAT,
            "version": f"{SPEC_SCHEMA_MAJOR}.{minor}",
        }
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "allowed_sizes":
                if value is None:
                    continue
                value = list(value)
            if f.name == "demand" and value is not None:
                value = [list(entry) for entry in value]
            payload[f.name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "CoverSpec":
        """Rebuild a spec from :meth:`to_payload` output; unknown majors
        and unknown fields are rejected (the wire format is closed)."""
        from ..io import require_schema
        from ..util.errors import InvalidCoveringError

        try:
            require_schema(payload, SPEC_FORMAT, SPEC_SCHEMA_MAJOR)
        except InvalidCoveringError as exc:
            raise SpecError(str(exc)) from exc
        known = {f.name for f in fields(cls)}
        data = {k: v for k, v in payload.items() if k not in ("format", "version")}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown CoverSpec field(s): {', '.join(unknown)}")
        if data.get("demand") is not None:
            try:
                data["demand"] = tuple(tuple(entry) for entry in data["demand"])
            except TypeError as exc:
                raise SpecError(f"malformed demand: {data['demand']!r}") from exc
        if data.get("allowed_sizes") is not None:
            try:
                data["allowed_sizes"] = tuple(data["allowed_sizes"])
            except TypeError as exc:
                raise SpecError(
                    f"malformed allowed_sizes: {data['allowed_sizes']!r}"
                ) from exc
        try:
            return cls(**data)
        except TypeError as exc:
            raise SpecError(f"malformed CoverSpec payload: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CoverSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    @cached_property
    def spec_hash(self) -> str:
        """SHA-256 of the canonical compact JSON — the cache key and the
        provenance tag stamped into every result envelope."""
        canonical = json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
