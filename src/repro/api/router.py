"""Spec → backend routing.

The router is the policy layer the free-function era forced every
caller to reimplement: which solver regime fits which job.  The rules,
in order:

1. a pinned ``spec.backend`` wins (validated against the registry and
   the backend's own :meth:`supports` check);
2. ``require_optimal=False`` routes to the heuristic tier — the caller
   asked for *a* covering, not a certificate;
3. a formula certificate (Theorem 1/2, λ-repetition for odd n) makes
   the job free: ``closed_form``;
4. otherwise an exact tier must prove optimality: ``exact_sharded``
   when the spec's shard policy says the ring is big enough to scale
   out (uniform ``K_n`` only — that is where the shard seam lives),
   else serial ``exact``;
5. past the branch-and-bound size ceilings the ``sat`` tier takes over
   (``min_blocks`` only): the same ``proven_optimal`` guarantee from a
   cardinality-SAT UNSAT core instead of exhaustion;
6. a job no certifying tier can take fails with a
   :class:`RoutingError` naming the way out (``require_optimal=False``).

Warm-start hints thread between tiers inside the backends (see
:func:`repro.api.backends.warm_start_bound`): the router's choice of an
exact tier still consults closed-form/heuristic for an opening
incumbent unless the spec forbids hints.
"""

from __future__ import annotations

from ..util.errors import RoutingError as _BaseRoutingError
from .backends import Backend, available_backends, get_backend
from .spec import CoverSpec

__all__ = ["route_backend", "route", "RoutingError"]


class RoutingError(_BaseRoutingError):
    """No registered backend can honour the spec's guarantees.

    Subclasses :class:`repro.util.errors.RoutingError` so the
    library-wide ``except RoutingError`` spelling catches backend
    routing failures too.
    """


def route_backend(spec: CoverSpec) -> str:
    """The name of the backend the router would run for ``spec``.

    Pure and deterministic — the golden routing tests pin this mapping.
    """
    if spec.backend is not None:
        backend = get_backend(spec.backend)
        if not backend.supports(spec):
            raise RoutingError(
                f"pinned backend {spec.backend!r} does not support this spec "
                f"(n={spec.n}, λ={spec.lam}, uniform={spec.is_all_to_all})"
            )
        return spec.backend

    if not spec.require_optimal:
        return "heuristic"

    if get_backend("closed_form").supports(spec):
        return "closed_form"

    if (
        spec.shard_threshold is not None
        and spec.n >= spec.shard_threshold
        and get_backend("exact_sharded").supports(spec)
    ):
        return "exact_sharded"

    if get_backend("exact").supports(spec):
        return "exact"

    # Beyond the B&B ceilings the SAT certification tier takes over:
    # same proven_optimal guarantee by a different argument (UNSAT-core
    # lower bounds over the block-table CNF).
    if get_backend("sat").supports(spec):
        return "sat"

    raise RoutingError(
        f"no backend can certify this spec (n={spec.n}, λ={spec.lam}, "
        f"uniform={spec.is_all_to_all}; registered: "
        f"{', '.join(available_backends())}) — the exact and sat tiers "
        "are size-limited; pass require_optimal=False for the heuristic tier"
    )


def route(spec: CoverSpec) -> Backend:
    """The backend instance the router chose for ``spec``."""
    return get_backend(route_backend(spec))
