"""repro.api — the declarative front door to the covering machinery.

One call path for every workload::

    from repro.api import CoverSpec, solve

    result = solve(CoverSpec.for_ring(11))          # routed automatically
    result.status                                    # "closed_form"
    result.num_blocks                                # ρ(11) = 15

    # Certification mode: force the branch-and-bound prover, no hints.
    result = solve(CoverSpec.for_ring(10, backend="exact", use_hints=False))
    result.status, result.stats.nodes                # ("proven_optimal", …)

    # Heuristic tier for sizes past the exact ceiling.
    result = solve(CoverSpec.for_ring(30, require_optimal=False))

    # Repeated sweeps skip solves via the content-addressed cache.
    result = solve(spec, cache="~/.cache/repro")

Layers (each its own module):

* :mod:`~repro.api.spec` — :class:`CoverSpec`, the frozen, hashable,
  JSON-round-trippable job description (and wire format);
* :mod:`~repro.api.router` — spec → backend policy;
* :mod:`~repro.api.backends` — the :class:`Backend` protocol, the
  registry, and the four stock tiers (``closed_form``, ``exact``,
  ``exact_sharded``, ``heuristic``) with warm-start hint threading;
* :mod:`~repro.api.result` — the uniform :class:`Result` envelope
  (status, stats, bound certificates, provenance, deterministic JSON);
* :mod:`~repro.api.cache` — the content-addressed on-disk
  :class:`ResultCache` keyed by canonical spec hash;
* :mod:`~repro.api.checkpoints` — the :class:`CheckpointStore` of
  resumable search checkpoints living next to the cache;
* :mod:`~repro.api.service` — :func:`solve` / :func:`solve_batch`.

The legacy free functions (``repro.core.solver.solve_min_covering``
and friends) remain as a deprecation façade over the same engine.
"""

from __future__ import annotations

from ..core.objective import (
    Objective,
    available_objectives,
    get_objective,
    register_objective,
)
from .backends import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from .cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from .checkpoints import CheckpointStore, MemoryCheckpointStore
from .result import RESULT_FORMAT, Result, STATUSES
from .router import RoutingError, route, route_backend
from .service import solve, solve_batch
from .spec import SPEC_FORMAT, CoverSpec, SpecError

__all__ = [
    "Backend",
    "CACHE_DIR_ENV",
    "CheckpointStore",
    "CoverSpec",
    "MemoryCheckpointStore",
    "Objective",
    "RESULT_FORMAT",
    "Result",
    "ResultCache",
    "RoutingError",
    "SPEC_FORMAT",
    "STATUSES",
    "SpecError",
    "available_backends",
    "available_objectives",
    "default_cache_dir",
    "get_backend",
    "get_objective",
    "register_backend",
    "register_objective",
    "route",
    "route_backend",
    "solve",
    "solve_batch",
]
