"""The uniform :class:`Result` envelope every backend returns.

One shape for every tier: the covering itself, a three-valued status
(``proven_optimal`` — exhaustive branch-and-bound; ``closed_form`` —
a Theorem 1/2 construction whose optimality the formula certificates
prove; ``feasible`` — heuristic, valid but unproven), the solver
statistics, the lower-bound certificates backing any optimality claim,
and provenance (backend, spec, canonical spec hash, library version).

Serialisation is deterministic — sorted keys, no timestamps — so a
result round-trips to *byte-identical* JSON, which is what lets the
content-addressed cache serve reruns verbatim and lets CI diff two
sweep outputs with ``cmp``.  The covering payload inside the envelope
is the standard :mod:`repro.io` document, version checks included.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any

from ..core.covering import Covering
from ..core.engine import SolverStats
from ..util.errors import InvalidCoveringError
from .spec import CoverSpec, SpecError

__all__ = [
    "Result",
    "DEGRADE_PROVENANCE_KEY",
    "RESULT_FORMAT",
    "RESULT_SCHEMA_MAJOR",
    "RESUME_PROVENANCE_KEY",
    "STATUSES",
]

RESULT_FORMAT = "repro-result"

# Runtime-only provenance key carrying resume lineage; stripped from
# every serialized envelope so checkpoint/resume history can never
# change result bytes.
RESUME_PROVENANCE_KEY = "resume"
# Runtime-only provenance key recording a graceful degradation: an
# exact job that exhausted its retries/deadline and was re-routed
# through the heuristic backend by the dispatcher.  Stripped from every
# serialized envelope like resume lineage — cached *certified*
# envelopes stay byte-identical, and a degraded envelope serialises
# exactly like a native heuristic solve of the fallback spec.
DEGRADE_PROVENANCE_KEY = "degraded"
RESULT_SCHEMA_MAJOR = 1
# Minor 1 added the optional ``objective_value`` field.  Envelopes for
# legacy-shaped jobs (objective ``min_blocks``, no size restriction)
# keep the minor-0 spelling — no new key, byte-identical JSON — so
# cached results and the BENCH goldens survive the bump; envelopes for
# the new objective axis stamp minor 1 and carry their value.  Readers
# accept both (minor revisions add optional fields only).
# Minor 2 added the optional ``sat_certificate`` field: only envelopes
# produced by the ``sat`` backend carry it (and the minor-2 stamp), so
# every other backend's envelope stays byte-identical.
_RESULT_SCHEMA_MINOR = 2

STATUSES = ("proven_optimal", "closed_form", "feasible")


def _extended_spec(spec: CoverSpec) -> bool:
    """True when the spec exercises the objective axis (anything beyond
    unrestricted ``min_blocks``) — the envelope then carries
    ``objective_value`` and the minor-1 schema stamp."""
    return spec.objective != "min_blocks" or spec.allowed_sizes is not None


@dataclass(frozen=True)
class Result:
    """Outcome of one :func:`repro.api.solve` call.

    ``from_cache`` is runtime-only bookkeeping (did this envelope come
    off disk?) and deliberately excluded from equality and JSON — a
    cached result must serialise byte-identically to the original.
    """

    spec: CoverSpec
    covering: Covering
    status: str
    backend: str
    stats: SolverStats
    lower_bound: int | None = None
    certificates: tuple[str, ...] = ()
    # The covering's value under the spec's objective.  Normalised in
    # __post_init__: recomputed for objective-axis specs (so cache
    # round-trips and worker envelopes always agree), forced to None
    # for legacy-shaped min_blocks jobs (whose envelopes must stay
    # byte-identical to the pre-objective schema).
    objective_value: int | None = None
    # The SAT backend's replayable optimality certificate: the UNSAT
    # assumption core at ``optimum − 1`` plus the encoding provenance
    # (CNF SHA-256, engine, per-k statistics) an auditor needs to
    # rebuild the CNF and re-refute the core.  ``None`` for every other
    # backend — the key is then absent from the serialized envelope.
    sat_certificate: dict[str, Any] | None = None
    from_cache: bool = field(default=False, compare=False)
    # Stamped at first serialisation and round-tripped verbatim after
    # that, so a cache hit keeps the *producing* library's version (and
    # stays byte-identical across upgrades).  Metadata, not identity —
    # excluded from equality like from_cache.
    provenance: dict[str, Any] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise SpecError(
                f"unknown result status {self.status!r} (expected one of {STATUSES})"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise SpecError(f"result backend must be a non-empty string, got {self.backend!r}")
        if self.covering.n != self.spec.n:
            raise SpecError(
                f"covering order {self.covering.n} ≠ spec order {self.spec.n}"
            )
        if _extended_spec(self.spec):
            from ..core.objective import get_objective

            value = get_objective(self.spec.objective).covering_value(self.covering)
            if self.objective_value is not None and self.objective_value != value:
                raise SpecError(
                    f"declared objective_value {self.objective_value} ≠ recomputed "
                    f"{self.spec.objective} value {value}"
                )
            object.__setattr__(self, "objective_value", value)
        else:
            object.__setattr__(self, "objective_value", None)

    # -- convenience -----------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.covering.num_blocks

    @property
    def proven_optimal(self) -> bool:
        """True when optimality is certified (by exhaustion or formula)."""
        return self.status in ("proven_optimal", "closed_form")

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash

    def summary(self) -> str:
        origin = " [cache]" if self.from_cache else ""
        value = (
            f" {self.spec.objective}={self.objective_value}"
            if self.objective_value is not None
            else ""
        )
        return (
            f"n={self.spec.n} λ={self.spec.lam} backend={self.backend} "
            f"status={self.status} blocks={self.num_blocks}{value} "
            f"nodes={self.stats.nodes}{origin}"
        )

    # -- serialisation ---------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        from ..io import covering_to_payload, schema_version_field

        if self.sat_certificate is not None:
            minor = _RESULT_SCHEMA_MINOR
        elif _extended_spec(self.spec):
            minor = 1
        else:
            minor = 0
        payload = {
            "format": RESULT_FORMAT,
            "version": schema_version_field(RESULT_SCHEMA_MAJOR, minor),
            "spec": self.spec.to_payload(),
            "spec_hash": self.spec.spec_hash,
            "status": self.status,
            "backend": self.backend,
            "covering": covering_to_payload(self.covering),
            "stats": {
                "nodes": self.stats.nodes,
                "best_value": self.stats.best_value,
                "proven_optimal": self.stats.proven_optimal,
                "shards": self.stats.shards,
            },
            "lower_bound": self.lower_bound,
            "certificates": list(self.certificates),
            "provenance": self._serialized_provenance(),
        }
        if _extended_spec(self.spec):
            payload["objective_value"] = self.objective_value
        if self.sat_certificate is not None:
            payload["sat_certificate"] = self.sat_certificate
        return payload

    def _provenance(self) -> dict[str, Any]:
        from .. import __version__

        return {"library": "repro", "library_version": __version__}

    def _serialized_provenance(self) -> dict[str, Any]:
        """The provenance dict that enters the envelope: the stamped
        (or round-tripped) metadata *minus* the runtime-only resume
        lineage — envelopes must stay byte-identical regardless of how
        many preempt/resume cycles produced them."""
        prov = (
            dict(self.provenance)
            if self.provenance is not None
            else self._provenance()
        )
        prov.pop(RESUME_PROVENANCE_KEY, None)
        prov.pop(DEGRADE_PROVENANCE_KEY, None)
        return prov

    def annotate_resume(self, lineage: dict[str, Any]) -> "Result":
        """A copy carrying runtime-only resume lineage under
        ``provenance["resume"]`` (how many cycles, the checkpoint's
        node floor).  Callers can inspect it in-process; serialization
        strips it so the envelope is byte-identical to an uninterrupted
        run's."""
        base = (
            dict(self.provenance)
            if self.provenance is not None
            else self._provenance()
        )
        base[RESUME_PROVENANCE_KEY] = dict(lineage)
        return replace(self, provenance=base)

    def annotate_degraded(self, info: dict[str, Any]) -> "Result":
        """A copy carrying runtime-only degradation provenance under
        ``provenance["degraded"]`` (the original spec hash and backend,
        the failure that triggered the fallback).  Callers inspect it
        in-process; serialization strips it, like resume lineage."""
        base = (
            dict(self.provenance)
            if self.provenance is not None
            else self._provenance()
        )
        base[DEGRADE_PROVENANCE_KEY] = dict(info)
        return replace(self, provenance=base)

    @classmethod
    def from_payload(cls, payload: Any, *, verify: bool = False) -> "Result":
        """Rebuild a result from :meth:`to_payload` output.

        Raises :class:`SpecError` / :class:`InvalidCoveringError` on any
        structural problem — the cache treats every failure here as a
        corrupt entry.  ``verify=True`` additionally re-runs the DRC and
        coverage verifier on the embedded covering.
        """
        from ..io import covering_from_payload, require_schema

        require_schema(payload, RESULT_FORMAT, RESULT_SCHEMA_MAJOR)
        spec = CoverSpec.from_payload(payload.get("spec"))
        declared = payload.get("spec_hash")
        if declared != spec.spec_hash:
            raise SpecError(
                f"result envelope spec_hash {declared!r} does not match "
                f"its spec (expected {spec.spec_hash})"
            )
        covering = covering_from_payload(payload.get("covering"))
        if verify and not covering.covers(spec.instance()):
            raise InvalidCoveringError(
                "cached covering does not cover its spec's demand"
            )
        raw_stats = payload.get("stats")
        if not isinstance(raw_stats, dict):
            raise SpecError(f"malformed stats payload: {raw_stats!r}")
        stats = SolverStats(
            nodes=int(raw_stats.get("nodes", 0)),
            best_value=raw_stats.get("best_value"),
            proven_optimal=bool(raw_stats.get("proven_optimal", False)),
            shards=int(raw_stats.get("shards", 0)),
        )
        certificates = payload.get("certificates") or ()
        if not isinstance(certificates, (list, tuple)) or not all(
            isinstance(c, str) for c in certificates
        ):
            raise SpecError(f"malformed certificates payload: {certificates!r}")
        provenance = payload.get("provenance")
        if provenance is not None and not isinstance(provenance, dict):
            raise SpecError(f"malformed provenance payload: {provenance!r}")
        sat_certificate = payload.get("sat_certificate")
        if sat_certificate is not None and not isinstance(sat_certificate, dict):
            raise SpecError(f"malformed sat_certificate payload: {sat_certificate!r}")
        return cls(
            spec=spec,
            covering=covering,
            status=payload.get("status"),
            backend=payload.get("backend"),
            stats=stats,
            lower_bound=payload.get("lower_bound"),
            certificates=tuple(certificates),
            objective_value=payload.get("objective_value"),
            sat_certificate=sat_certificate,
            provenance=provenance,
        )

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, stable field set) — two
        results with the same content are byte-identical."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, *, verify: bool = False) -> "Result":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"not valid JSON: {exc}") from exc
        return cls.from_payload(payload, verify=verify)
