"""In-flight request coalescing and per-job progress fan-out.

The :class:`Coalescer` is the serve-side half of the repo's
one-solve-per-spec story: the cache dedupes across *time* (yesterday's
envelope answers today's request) and the dispatcher dedupes within a
*batch*; this dedupes across *concurrent clients* — the first
submission of a spec hash owns the solve, and every identical
submission that lands while it is in flight piggybacks on the same job
handle.  Ownership is decided under one lock, so two requests racing
on a fresh hash cannot both win.

The :class:`ProgressBroker` fans engine progress out to SSE
subscribers: each subscriber gets a private queue; publishing never
blocks the solver (full queues drop the event — progress is a stream
of snapshots, not a transaction log, and the next poll supersedes the
lost one).
"""

from __future__ import annotations

import queue
import threading

__all__ = ["Coalescer", "ProgressBroker"]


class Coalescer:
    """Tracks which spec hashes are in flight and counts piggybacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}  # spec hash -> subscriber count
        self.coalesced = 0  # submissions absorbed by an in-flight solve

    def claim(self, spec_hash: str) -> bool:
        """True when this claim is the first for the hash (the caller
        owns starting the solve); False when the hash is already in
        flight.  Piggyback *counting* is the caller's call (`note`):
        recovery re-claims defensively without being a coalesce."""
        with self._lock:
            if spec_hash in self._inflight:
                self._inflight[spec_hash] += 1
                return False
            self._inflight[spec_hash] = 1
            return True

    def note(self, count: int = 1) -> None:
        """Count ``count`` submissions absorbed by an in-flight job."""
        with self._lock:
            self.coalesced += count

    def release(self, spec_hash: str) -> None:
        """The solve for ``spec_hash`` reached a terminal state (or was
        requeued for a later server life); the hash is claimable again."""
        with self._lock:
            self._inflight.pop(spec_hash, None)

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)


class ProgressBroker:
    """Per-job pub/sub for progress events (SSE feeds subscribe here)."""

    # Progress is lossy by design; a slow consumer only ever misses
    # intermediate snapshots, never the terminal event (publish_terminal
    # retries the terminal doc after draining a full queue).
    QUEUE_DEPTH = 64

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: dict[str, list[queue.Queue]] = {}

    def subscribe(self, spec_hash: str) -> "queue.Queue[dict | None]":
        q: queue.Queue = queue.Queue(maxsize=self.QUEUE_DEPTH)
        with self._lock:
            self._subscribers.setdefault(spec_hash, []).append(q)
        return q

    def unsubscribe(self, spec_hash: str, q: queue.Queue) -> None:
        with self._lock:
            subs = self._subscribers.get(spec_hash)
            if subs is not None:
                try:
                    subs.remove(q)
                except ValueError:
                    pass
                if not subs:
                    del self._subscribers[spec_hash]

    def publish(self, spec_hash: str, event: dict) -> None:
        with self._lock:
            subs = list(self._subscribers.get(spec_hash, ()))
        for q in subs:
            try:
                q.put_nowait(event)
            except queue.Full:
                pass  # lossy: the next snapshot supersedes this one

    def publish_terminal(self, spec_hash: str, event: dict) -> None:
        """Deliver ``event`` then a ``None`` sentinel (end of stream) to
        every subscriber, making room in full queues first — terminal
        events must not be lost."""
        with self._lock:
            subs = self._subscribers.pop(spec_hash, [])
        for q in subs:
            for item in (event, None):
                while True:
                    try:
                        q.put_nowait(item)
                        break
                    except queue.Full:
                        try:
                            q.get_nowait()
                        except queue.Empty:
                            pass
