"""The persistent job ledger behind ``repro.serve``.

One SQLite database (WAL mode) records every job the service has ever
accepted, keyed by the canonical spec hash — which *is* the job id:
request coalescing means there is never more than one job per spec, so
the handle clients poll is the same content address the cache and the
checkpoint store already speak.

The row is a small state machine::

    pending ──► running ──► done
                   │   ├──► degraded
                   │   └──► failed ──► pending   (explicit resubmit)
                   └──► pending                  (preempt / crash recovery)

``recover()`` flips every ``running`` row back to ``pending`` at
startup: a server killed mid-proof left its engine state in the
:class:`~repro.api.checkpoints.CheckpointStore` (the backend flushes
every ``checkpoint_every`` nodes), so the re-queued job resumes from
the checkpoint instead of re-solving from scratch.  Terminal ``done``/
``degraded`` rows carry the exact envelope bytes that were served —
replaying them is byte-identical by construction.

Writes happen from HTTP handler threads and solver workers alike: the
single connection is shared under a lock (``check_same_thread=False``),
and every mutation commits before the lock drops, so a crash between
requests never loses an accepted job.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..util.errors import ReproError

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobLedger",
    "JobRow",
    "LedgerError",
    "SCHEMA_VERSION",
]

JOB_STATES = ("pending", "running", "done", "failed", "degraded")
TERMINAL_STATES = ("done", "failed", "degraded")
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    spec_hash   TEXT PRIMARY KEY,
    state       TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    result_json TEXT,
    error       TEXT,
    created_at  REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    attempts    INTEGER NOT NULL DEFAULT 0
)
"""

# Legal state-machine edges; everything else raises LedgerError.
_TRANSITIONS = {
    ("pending", "running"),
    ("running", "done"),
    ("running", "degraded"),
    ("running", "failed"),
    ("running", "pending"),  # preemption / crash recovery
    ("failed", "pending"),  # explicit resubmit
}


class LedgerError(ReproError):
    """An illegal ledger operation (bad transition, unknown job)."""


@dataclass(frozen=True)
class JobRow:
    """One ledger row, as read — a snapshot, not a live handle."""

    spec_hash: str
    state: str
    spec_json: str
    result_json: str | None
    error: str | None
    created_at: float
    started_at: float | None
    finished_at: float | None
    attempts: int

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobLedger:
    """The WAL-journaled job table at ``path`` (created on first use)."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, SCHEMA_VERSION):
                raise LedgerError(
                    f"ledger {self.path} has schema version {version}; "
                    f"this build speaks version {SCHEMA_VERSION}"
                )
            self._conn.execute(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            self._conn.commit()

    # -- reads -----------------------------------------------------------

    def get(self, spec_hash: str) -> JobRow | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT spec_hash, state, spec_json, result_json, error, "
                "created_at, started_at, finished_at, attempts "
                "FROM jobs WHERE spec_hash = ?",
                (spec_hash,),
            ).fetchone()
        return JobRow(*row) if row is not None else None

    def unfinished(self) -> list[JobRow]:
        """Every non-terminal row, oldest first — the restart queue."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT spec_hash, state, spec_json, result_json, error, "
                "created_at, started_at, finished_at, attempts "
                "FROM jobs WHERE state IN ('pending', 'running') "
                "ORDER BY created_at",
            ).fetchall()
        return [JobRow(*row) for row in rows]

    def counts(self) -> dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update(dict(rows))
        return counts

    # -- transitions -----------------------------------------------------

    def submit(self, spec_hash: str, spec_json: str) -> JobRow:
        """Record a new ``pending`` job; a second submit of the same
        hash is a no-op returning the existing row (the coalescing and
        replay decisions belong to the service, which sees the state)."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO jobs "
                "(spec_hash, state, spec_json, created_at, attempts) "
                "VALUES (?, 'pending', ?, ?, 0)",
                (spec_hash, spec_json, now),
            )
            self._conn.commit()
        row = self.get(spec_hash)
        assert row is not None
        return row

    def _transition(self, spec_hash: str, new_state: str, **updates) -> JobRow:
        with self._lock:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE spec_hash = ?", (spec_hash,)
            ).fetchone()
            if row is None:
                raise LedgerError(f"unknown job {spec_hash[:12]}")
            old_state = row[0]
            if (old_state, new_state) not in _TRANSITIONS:
                raise LedgerError(
                    f"illegal transition {old_state} -> {new_state} "
                    f"for job {spec_hash[:12]}"
                )
            sets = ["state = ?"]
            params: list = [new_state]
            for column, value in updates.items():
                sets.append(f"{column} = ?")
                params.append(value)
            params.append(spec_hash)
            self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE spec_hash = ?",
                params,
            )
            if new_state == "running":
                self._conn.execute(
                    "UPDATE jobs SET attempts = attempts + 1 "
                    "WHERE spec_hash = ?",
                    (spec_hash,),
                )
            self._conn.commit()
        row = self.get(spec_hash)
        assert row is not None
        return row

    def mark_running(self, spec_hash: str) -> JobRow:
        return self._transition(spec_hash, "running", started_at=time.time())

    def mark_done(self, spec_hash: str, result_json: str, *, degraded: bool = False) -> JobRow:
        """Terminal success: store the exact envelope bytes served to
        every future request for this hash."""
        return self._transition(
            spec_hash,
            "degraded" if degraded else "done",
            result_json=result_json,
            error=None,
            finished_at=time.time(),
        )

    def mark_failed(self, spec_hash: str, error: str) -> JobRow:
        return self._transition(
            spec_hash, "failed", error=error, finished_at=time.time()
        )

    def requeue(self, spec_hash: str) -> JobRow:
        """Preempted (or resubmitted-after-failure) job back to
        ``pending`` — the checkpoint store holds its engine state."""
        return self._transition(spec_hash, "pending", error=None)

    def recover(self) -> int:
        """Startup sweep: every ``running`` row belonged to a dead
        server; flip them to ``pending`` so the queue re-runs them
        (resuming from checkpoints).  Returns how many were recovered."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = 'pending' WHERE state = 'running'"
            )
            self._conn.commit()
            return cur.rowcount

    def close(self) -> None:
        with self._lock:
            self._conn.close()
