"""repro.serve — the HTTP front door to the covering solver.

A long-lived, stdlib-only serving tier over the same machinery the CLI
drives: ``POST /v1/solve`` answers from the content-addressed
:class:`~repro.api.cache.ResultCache` when it can, coalesces concurrent
identical submissions onto one in-flight solve, and otherwise queues a
job whose lifecycle lives in a SQLite-WAL
:class:`~repro.serve.ledger.JobLedger` — so a restarted server resumes
unfinished proofs from their
:class:`~repro.api.checkpoints.CheckpointStore` state instead of
re-solving.  Every served envelope is byte-identical to what
:func:`repro.api.solve` produces for the same spec.

Layers:

* :mod:`~repro.serve.ledger` — the persistent job state machine;
* :mod:`~repro.serve.coalesce` — in-flight dedupe + SSE progress fan-out;
* :mod:`~repro.serve.admission` — ``4**n·λ`` cost-weighted admission;
* :mod:`~repro.serve.service` — the HTTP-free core (queue, workers,
  checkpoint resume, counters);
* :mod:`~repro.serve.server` / :mod:`~repro.serve.handlers` — the
  threaded HTTP shell (``python -m repro serve``).
"""

from __future__ import annotations

from .admission import AdmissionController, SERVE_RETRY_POLICY
from .coalesce import Coalescer, ProgressBroker
from .ledger import (
    JOB_STATES,
    TERMINAL_STATES,
    JobLedger,
    JobRow,
    LedgerError,
)
from .server import SolverServer, run_server
from .service import SolverService

__all__ = [
    "AdmissionController",
    "Coalescer",
    "JOB_STATES",
    "JobLedger",
    "JobRow",
    "LedgerError",
    "ProgressBroker",
    "SERVE_RETRY_POLICY",
    "SolverServer",
    "SolverService",
    "TERMINAL_STATES",
    "run_server",
]
