"""HTTP request handling for the solver service.

One :class:`ServeHandler` per request (``ThreadingHTTPServer`` gives
each its own thread); every route is a thin translation onto the
:class:`~repro.serve.service.SolverService` owned by the server.

Routes::

    POST /v1/solve                CoverSpec payload in; 200 + envelope
                                  (cache/ledger hit), 202 + job doc,
                                  429 + Retry-After, or 400
    GET  /v1/jobs/<hash>          job doc (state machine snapshot)
    GET  /v1/jobs/<hash>/result   the envelope: 200 raw bytes when
                                  terminal, 409 while in flight, 500
                                  for failed jobs, 404 unknown
    GET  /v1/jobs/<hash>/events   SSE progress stream
    GET  /v1/health               liveness
    GET  /v1/stats                queue depth, cache counters, coalesces

Envelope responses are written as the *exact* ``Result.to_json`` bytes
the offline path produces — no re-serialization, so ``curl | cmp``
against ``python -m repro solve --json`` holds.

The handler speaks HTTP/1.0 deliberately: connection close delimits
every body, which keeps the SSE stream free of chunked-transfer framing
while remaining readable by browsers, ``curl`` and ``urllib`` alike.
"""

from __future__ import annotations

import json
import math
import queue
import sys
from http.server import BaseHTTPRequestHandler

from ..util.errors import ReproError

__all__ = ["ServeHandler"]

# Keepalive cadence for idle SSE streams; also the poll at which the
# stream re-checks the ledger so a missed terminal event cannot wedge
# a subscriber forever.
_SSE_KEEPALIVE_S = 0.5

# A spec hash is 64 hex chars; anything else 404s before touching state.
_HASH_LEN = 64


def _json_bytes(doc) -> bytes:
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()


class ServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.0"
    server_version = "repro-serve/1.0"

    @property
    def service(self):
        return self.server.service

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        print(f"[serve] {self.address_string()} {format % args}", file=sys.stderr)

    # -- plumbing --------------------------------------------------------

    def _send(
        self,
        code: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_doc(self, code: int, doc, **kwargs) -> None:
        self._send(code, _json_bytes(doc), **kwargs)

    def _send_error_doc(self, code: int, message: str, **kwargs) -> None:
        self._send_doc(code, {"error": message}, **kwargs)

    # -- routing ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if self.path.rstrip("/") != "/v1/solve":
            self._send_error_doc(404, f"unknown endpoint {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length).decode())
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error_doc(400, f"request body is not JSON: {exc}")
            return
        try:
            disposition, value = self.service.submit(payload)
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self._send_error_doc(400, f"bad CoverSpec payload: {exc}")
            return
        if disposition == "result":
            # The exact envelope bytes the offline solve produces.
            self._send(200, value.encode())
        elif disposition == "busy":
            self._send_error_doc(
                429,
                "service is at its in-flight weight budget; retry later",
                headers={"Retry-After": str(math.ceil(value))},
            )
        else:
            self._send_doc(202, value)

    def do_GET(self) -> None:  # noqa: N802
        path = self.path.rstrip("/")
        if path == "/v1/health":
            self._send_doc(
                200,
                {
                    "status": "ok",
                    "uptime_s": self.service.stats()["uptime_s"],
                },
            )
        elif path == "/v1/stats":
            self._send_doc(200, self.service.stats())
        elif path.startswith("/v1/jobs/"):
            self._get_job(path.removeprefix("/v1/jobs/"))
        else:
            self._send_error_doc(404, f"unknown endpoint {self.path}")

    def _get_job(self, rest: str) -> None:
        spec_hash, _, tail = rest.partition("/")
        if len(spec_hash) != _HASH_LEN or tail not in ("", "result", "events"):
            self._send_error_doc(404, f"unknown endpoint {self.path}")
            return
        row = self.service.job(spec_hash)
        if row is None:
            self._send_error_doc(404, f"unknown job {spec_hash[:12]}")
            return
        if tail == "":
            self._send_doc(200, self.service.job_doc(spec_hash))
        elif tail == "result":
            if row.state in ("done", "degraded"):
                self._send(200, row.result_json.encode())
            elif row.state == "failed":
                self._send_error_doc(500, row.error or "job failed")
            else:
                self._send_error_doc(
                    409, f"job {spec_hash[:12]} is {row.state}; no result yet"
                )
        else:
            self._stream_events(spec_hash, row)

    # -- SSE -------------------------------------------------------------

    def _sse_event(self, doc: dict) -> bytes:
        name = doc.get("event", "message")
        return (
            f"event: {name}\ndata: {json.dumps(doc, sort_keys=True)}\n\n"
        ).encode()

    def _stream_events(self, spec_hash: str, row) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()

        # Replay the current state first, so late subscribers see where
        # the job stands before live events start.
        self.wfile.write(
            self._sse_event(
                {"event": "state", "state": row.state, "replay": True}
            )
        )
        if row.terminal:
            return

        q = self.service.broker.subscribe(spec_hash)
        try:
            while True:
                try:
                    event = q.get(timeout=_SSE_KEEPALIVE_S)
                except queue.Empty:
                    # Terminal event may have raced the subscription;
                    # the ledger is the source of truth.
                    current = self.service.job(spec_hash)
                    if current is None or current.terminal:
                        self.wfile.write(
                            self._sse_event(
                                {
                                    "event": "state",
                                    "state": current.state if current else "gone",
                                }
                            )
                        )
                        return
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                if event is None:
                    return  # end-of-stream sentinel
                self.wfile.write(self._sse_event(event))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up beyond the queue
        finally:
            self.service.broker.unsubscribe(spec_hash, q)
