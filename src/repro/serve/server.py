"""The threaded HTTP server wrapping a :class:`SolverService`.

``ThreadingHTTPServer`` gives every request its own thread (SSE
streams hold theirs open for the life of the subscription); the solver
workers live inside the service, so request threads only ever enqueue,
read the ledger, or wait on the progress broker — never solve.

:func:`run_server` is the CLI's serving loop: it installs
SIGTERM/SIGINT handlers that request a graceful drain (active proofs
checkpoint and return to ``pending``), serves until the service stops,
and returns the process exit code — ``0`` for an idle drain, ``3``
(the CLI's established "preempted, resume to continue" code) when a
proof was checkpoint-requeued, e.g. under a ``--preempt-after``
self-drain budget.
"""

from __future__ import annotations

import signal
import sys
import threading
from http.server import ThreadingHTTPServer

from .handlers import ServeHandler
from .service import SolverService

__all__ = ["SolverServer", "run_server"]


class SolverServer(ThreadingHTTPServer):
    """One service, many request threads.  Port 0 picks a free port
    (``server_address[1]`` has the real one after construction)."""

    daemon_threads = True  # requests never block process exit

    def __init__(self, address: tuple[str, int], service: SolverService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service


def run_server(
    service: SolverService,
    host: str = "127.0.0.1",
    port: int = 8323,
    *,
    install_signals: bool = True,
) -> int:
    """Serve until drained; returns the process exit code."""
    httpd = SolverServer((host, port), service)
    recovered = service.start()
    real_port = httpd.server_address[1]
    print(
        f"[serve] listening on http://{host}:{real_port} "
        f"(workers={service.workers}, ledger={service.ledger_dir})",
        file=sys.stderr,
    )
    if recovered:
        print(
            f"[serve] recovered {recovered} unfinished job(s) from the ledger",
            file=sys.stderr,
        )

    if install_signals:

        def _drain(signum, frame) -> None:
            print(
                f"[serve] signal {signum}: draining (active proofs "
                "checkpoint and requeue)",
                file=sys.stderr,
            )
            service.request_drain()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    acceptor = threading.Thread(target=httpd.serve_forever, daemon=True)
    acceptor.start()
    try:
        # The service stops on drain request (signal or a preempted
        # proof's self-drain); wake periodically so signal handlers run
        # on the main thread.
        while not service.stopped.wait(timeout=0.2):
            if service._stop.is_set() and not any(
                t.is_alive() for t in service._threads
            ):
                break
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.shutdown()
    if service.preempted:
        print(
            "[serve] drained with a preempted proof checkpointed; "
            "restart to resume",
            file=sys.stderr,
        )
        return 3
    return 0
