"""Cost-weighted admission control for the solver service.

A covering solve is exponential in the ring order, so "how many jobs
are in flight" is the wrong fullness measure — one n=12 certification
outweighs a thousand n=6 ones.  Admission therefore budgets the same
``4**n * λ`` :func:`~repro.dispatch.cost_weight` the dispatcher
schedules by: a submission is admitted while the in-flight weight stays
under ``max_inflight_weight``, and rejected with a ``Retry-After``
otherwise.

Two deliberate edges:

* an *idle* service always admits — a single job heavier than the whole
  budget must run (alone), not deadlock the queue;
* the retry hint comes from the same deterministic
  :class:`~repro.dispatch.base.RetryPolicy` backoff schedule workers
  use, scaled by queue depth — the busier the service, the longer the
  suggested wait, capped at the policy's ``max_delay``.
"""

from __future__ import annotations

import threading

from ..api.spec import CoverSpec
from ..dispatch.base import RetryPolicy
from ..dispatch.dispatcher import cost_weight

__all__ = ["AdmissionController", "SERVE_RETRY_POLICY"]

# Client-facing backoff: coarser than the worker fleet's (humans and
# HTTP clients retry on half-second scales, not 50 ms ones).
SERVE_RETRY_POLICY = RetryPolicy(
    max_retries=8, base_delay=0.5, factor=2.0, max_delay=30.0
)


class AdmissionController:
    """Tracks in-flight solve weight and decides admit/reject."""

    def __init__(
        self,
        max_inflight_weight: float | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.max_inflight_weight = max_inflight_weight
        self.policy = policy or SERVE_RETRY_POLICY
        self._lock = threading.Lock()
        self._weight = 0.0
        self._depth = 0
        self.rejected = 0

    def try_admit(self, spec: CoverSpec) -> tuple[bool, float]:
        """``(admitted, retry_after_seconds)``; ``retry_after`` is 0.0
        on admission.  Admission reserves the spec's cost weight until
        :meth:`release`."""
        weight = cost_weight(spec)
        with self._lock:
            over = (
                self.max_inflight_weight is not None
                and self._weight + weight > self.max_inflight_weight
            )
            if over and self._depth > 0:
                self.rejected += 1
                attempt = min(self._depth, self.policy.max_retries)
                retry_after = max(
                    self.policy.delay(attempt), self.policy.base_delay
                )
                return False, retry_after
            self._weight += weight
            self._depth += 1
            return True, 0.0

    def force_admit(self, spec: CoverSpec) -> None:
        """Reserve weight unconditionally — for restart recovery, where
        the job was admitted by a previous server life and refusing it
        now would orphan an accepted ledger row."""
        with self._lock:
            self._weight += cost_weight(spec)
            self._depth += 1

    def release(self, spec: CoverSpec) -> None:
        with self._lock:
            self._weight = max(0.0, self._weight - cost_weight(spec))
            self._depth = max(0, self._depth - 1)

    def snapshot(self) -> dict[str, float | int | None]:
        with self._lock:
            return {
                "inflight_weight": self._weight,
                "inflight_jobs": self._depth,
                "max_inflight_weight": self.max_inflight_weight,
                "rejected": self.rejected,
            }
