"""The HTTP-free heart of ``repro.serve``: :class:`SolverService`.

Everything the HTTP layer does — submit, poll, stream, report — is a
thin translation onto this object, so the whole serving story (request
coalescing, admission, the persistent ledger, checkpoint resume,
progress fan-out) is testable without opening a socket.

The flow of one submission::

    payload ──► CoverSpec.from_payload ──► spec hash
        │
        ├── ResultCache hit ───────────────► the exact cached envelope
        ├── terminal ledger row ───────────► the exact recorded envelope
        ├── pending/running ledger row ────► coalesce onto the job handle
        ├── admission refuses ─────────────► busy + Retry-After
        └── otherwise ─────────────────────► new pending row, queued

Solves run on worker threads through the very same
:func:`repro.api.solve` path the CLI uses — same cache handle, same
:class:`~repro.api.checkpoints.CheckpointStore`, same validation — so
served envelopes are byte-identical to offline ones by construction.
A preempted proof (drain request, ``preempt_after`` budget, or the test
``poll_hook``) flushes its checkpoint, goes back to ``pending`` in the
ledger, and the *next* service pointed at the same directories resumes
it mid-proof via :meth:`recover`.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from pathlib import Path

from ..api.cache import ResultCache
from ..api.checkpoints import CheckpointStore
from ..api.result import (
    DEGRADE_PROVENANCE_KEY,
    RESUME_PROVENANCE_KEY,
    Result,
)
from ..api.service import _validate, solve
from ..api.spec import CoverSpec
from ..util.errors import InvalidCoveringError, SolverPreempted
from .admission import AdmissionController
from .coalesce import Coalescer, ProgressBroker
from .ledger import JobLedger, JobRow

__all__ = ["SolverService"]


class SolverService:
    """A long-lived solver with a job queue, shared by many clients.

    ``ledger_dir`` anchors the persistent state: ``jobs.sqlite3`` (the
    :class:`~repro.serve.ledger.JobLedger`) and ``checkpoints/`` (the
    :class:`~repro.api.checkpoints.CheckpointStore`).  Point a new
    service at an old directory and :meth:`start` resumes whatever the
    previous life left unfinished.

    ``transport``/``degrade`` route execution: the default (``None``)
    solves in-process through :func:`repro.api.solve` with live
    progress and checkpoint resume; naming a dispatcher transport (or
    arming ``degrade``) rides :func:`repro.dispatch.dispatch_batch`
    instead — job-milestone progress only, but subprocess isolation and
    the heuristic fallback.

    ``preempt_after`` (``("nodes", x)`` or ``("seconds", x)``) arms a
    self-drain budget *per proof slice*, continuing from the resumed
    checkpoint's node floor exactly like the CLI's ``--preempt-after``;
    ``poll_hook(spec_hash, stats)`` is a synchronous test seam polled
    with live engine stats — returning truthy preempts, deterministic
    to the node.
    """

    def __init__(
        self,
        ledger_dir: Path | str,
        *,
        cache: ResultCache | Path | str | None = None,
        workers: int = 1,
        transport: str | None = None,
        degrade: str | None = None,
        max_inflight_weight: float | None = None,
        checkpoint_every: int | None = 256,
        preempt_after: tuple[str, float] | None = None,
        poll_hook=None,
    ) -> None:
        self.ledger_dir = Path(ledger_dir)
        self.ledger = JobLedger(self.ledger_dir / "jobs.sqlite3")
        self.checkpoints = CheckpointStore(self.ledger_dir / "checkpoints")
        self.cache = ResultCache.open(cache)
        self.workers = max(1, workers)
        self.transport = transport if transport != "inproc" else None
        self.degrade = degrade
        self.checkpoint_every = checkpoint_every
        self.preempt_after = preempt_after
        self.poll_hook = poll_hook

        self.coalescer = Coalescer()
        self.broker = ProgressBroker()
        self.admission = AdmissionController(max_inflight_weight)

        self._queue: "queue.Queue[str]" = queue.Queue()
        self._submit_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._drain = threading.Event()
        self.stopped = threading.Event()  # all workers exited

        self.started_at = time.time()
        self.solves = 0  # engine runs (cache hits and coalesces excluded)
        self.resumed = 0  # solves that continued a prior checkpoint
        self.preempted = False  # a proof was checkpoint-requeued this life

    # -- lifecycle -------------------------------------------------------

    def start(self) -> int:
        """Recover unfinished ledger rows into the queue, then spawn the
        worker threads.  Returns how many jobs were recovered."""
        recovered = self.recover()
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return recovered

    def recover(self) -> int:
        """Re-queue every non-terminal ledger row (flipping stale
        ``running`` rows — a dead server's — back to ``pending``).
        Idempotent: rows already claimed in this life are skipped."""
        self.ledger.recover()
        requeued = 0
        for row in self.ledger.unfinished():
            if not self.coalescer.claim(row.spec_hash):
                continue  # already queued in this life
            spec = CoverSpec.from_payload(json.loads(row.spec_json))
            self.admission.force_admit(spec)
            self._queue.put(row.spec_hash)
            requeued += 1
        return requeued

    def request_drain(self) -> None:
        """Graceful stop: active proofs preempt at their next engine
        poll (flushing checkpoints and returning to ``pending``), idle
        workers exit.  Non-blocking; wait on :attr:`stopped`."""
        self._drain.set()
        self._stop.set()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain, join the workers, close the ledger."""
        self.request_drain()
        for t in self._threads:
            t.join(timeout=timeout)
        self.stopped.set()
        self.ledger.close()

    # -- submission ------------------------------------------------------

    def submit(self, payload) -> tuple[str, object]:
        """One client submission.  Returns a tagged disposition:

        * ``("result", envelope_json)`` — answered immediately, the
          exact byte-identical envelope (cache or ledger replay);
        * ``("job", job_doc)`` — accepted (or coalesced onto an
          in-flight job); poll/stream the handle;
        * ``("busy", retry_after_seconds)`` — admission refused.

        Spec validation errors propagate (:class:`SpecError` etc.) for
        the transport layer to turn into a 400.
        """
        spec = (
            payload
            if isinstance(payload, CoverSpec)
            else CoverSpec.from_payload(payload)
        )
        spec_hash = spec.spec_hash

        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                try:
                    _validate(hit)
                except InvalidCoveringError:
                    self.cache.evict(spec)
                else:
                    return ("result", hit.to_json())

        with self._submit_lock:
            row = self.ledger.get(spec_hash)
            if row is not None and row.state in ("done", "degraded"):
                return ("result", row.result_json)
            if row is not None and row.state in ("pending", "running"):
                # Coalesce: the in-flight solve answers this client too.
                self.coalescer.note()
                if self.cache is not None:
                    self.cache.note_coalesced()
                return ("job", self._job_doc(row))

            admitted, retry_after = self.admission.try_admit(spec)
            if not admitted:
                return ("busy", retry_after)
            if row is not None:  # failed → explicit resubmit
                row = self.ledger.requeue(spec_hash)
            else:
                row = self.ledger.submit(spec_hash, spec.to_json())
            self.coalescer.claim(spec_hash)
            self._queue.put(spec_hash)
            return ("job", self._job_doc(row))

    # -- introspection ---------------------------------------------------

    def job(self, spec_hash: str) -> JobRow | None:
        return self.ledger.get(spec_hash)

    def job_doc(self, spec_hash: str) -> dict | None:
        row = self.ledger.get(spec_hash)
        return self._job_doc(row) if row is not None else None

    def _job_doc(self, row: JobRow) -> dict:
        doc = {
            "format": "repro-serve-job",
            "job": row.spec_hash,
            "state": row.state,
            "attempts": row.attempts,
            "created_at": row.created_at,
            "started_at": row.started_at,
            "finished_at": row.finished_at,
            "links": {
                "self": f"/v1/jobs/{row.spec_hash}",
                "events": f"/v1/jobs/{row.spec_hash}/events",
                "result": f"/v1/jobs/{row.spec_hash}/result",
            },
        }
        if row.error:
            doc["error"] = row.error
        return doc

    def stats(self) -> dict:
        doc = {
            "format": "repro-serve-stats",
            "uptime_s": time.time() - self.started_at,
            "queue_depth": self._queue.qsize(),
            "inflight": self.coalescer.inflight(),
            "coalesced": self.coalescer.coalesced,
            "solves": self.solves,
            "resumed": self.resumed,
            "admission": self.admission.snapshot(),
            "jobs": self.ledger.counts(),
        }
        doc["cache"] = self.cache.stats() if self.cache is not None else None
        return doc

    # -- the solve loop --------------------------------------------------

    def _worker(self) -> None:
        try:
            while not self._stop.is_set():
                try:
                    spec_hash = self._queue.get(timeout=0.1)
                except queue.Empty:
                    continue
                self._run_job(spec_hash)
        finally:
            if all(
                not t.is_alive() for t in self._threads if t is not threading.current_thread()
            ):
                self.stopped.set()

    def _run_job(self, spec_hash: str) -> None:
        row = self.ledger.get(spec_hash)
        if row is None or row.state != "pending":
            return  # stale queue entry (already served or resubmitted)
        spec = CoverSpec.from_payload(json.loads(row.spec_json))
        self.ledger.mark_running(spec_hash)
        self.broker.publish(spec_hash, {"event": "state", "state": "running"})
        try:
            result = self._solve_one(spec_hash, spec)
        except SolverPreempted:
            # Checkpoint already flushed by the backend; back to pending
            # for the next life (or a later drain-free restart).
            self.ledger.requeue(spec_hash)
            ckpt = self.checkpoints.load(spec_hash)
            self.broker.publish_terminal(
                spec_hash,
                {
                    "event": "state",
                    "state": "pending",
                    "preempted": True,
                    "checkpoint_nodes": ckpt.nodes if ckpt else None,
                },
            )
            with self._counter_lock:
                self.preempted = True
            # A served preemption is always a drain: budget exhausted
            # (--preempt-after) or an explicit stop — either way this
            # life is done with the proof.
            self.request_drain()
        except Exception as exc:  # noqa: BLE001 — any failure -> failed row
            self.ledger.mark_failed(spec_hash, f"{type(exc).__name__}: {exc}")
            self.broker.publish_terminal(
                spec_hash,
                {"event": "state", "state": "failed", "error": str(exc)},
            )
        else:
            provenance = result.provenance or {}
            degraded = DEGRADE_PROVENANCE_KEY in provenance
            with self._counter_lock:
                if not result.from_cache:
                    self.solves += 1
                if RESUME_PROVENANCE_KEY in provenance:
                    self.resumed += 1
            self.ledger.mark_done(spec_hash, result.to_json(), degraded=degraded)
            self.broker.publish_terminal(
                spec_hash,
                {"event": "state", "state": "degraded" if degraded else "done"},
            )
        finally:
            self.coalescer.release(spec_hash)
            self.admission.release(spec)

    def _solve_one(self, spec_hash: str, spec: CoverSpec) -> Result:
        prior = self.checkpoints.load(spec_hash)
        floor = prior.nodes if prior is not None else 0
        ceiling = deadline = None
        if self.preempt_after is not None:
            unit, amount = self.preempt_after
            if unit == "nodes":
                # Continue from the resumed checkpoint: each slice
                # advances the proof by the full budget (CLI semantics).
                ceiling = floor + int(amount)
            else:
                deadline = time.monotonic() + amount

        def preempt(stats) -> bool:
            if self._drain.is_set():
                return True
            if ceiling is not None and stats.nodes >= ceiling:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return True
            if self.poll_hook is not None and self.poll_hook(spec_hash, stats):
                return True
            return False

        def on_progress(stats) -> None:
            self.broker.publish(
                spec_hash,
                {
                    "event": "progress",
                    "nodes": stats.nodes,
                    "best_value": stats.best_value,
                },
            )

        if self.transport is None and self.degrade is None:
            return solve(
                spec,
                cache=self.cache,
                checkpoints=self.checkpoints,
                checkpoint_every=self.checkpoint_every,
                preempt=preempt,
                on_progress=on_progress,
            )

        # Dispatcher path: subprocess isolation and/or graceful
        # degradation.  Progress is job-milestone granular (workers
        # own their engines); preemption applies between jobs only.
        from ..dispatch import dispatch_batch

        report = dispatch_batch(
            [spec],
            transport=self.transport or "inproc",
            workers=1,
            cache=self.cache,
            degrade=self.degrade,
            on_progress=lambda event, h: self.broker.publish(
                h, {"event": "progress", "milestone": event}
            ),
        )
        return report.results[0]
