"""The paper's future-work directions: λK_n and non-ring topologies."""

from .lambda_fold import (
    lambda_covering,
    lambda_gap,
    lambda_lower_bound,
    repetition_covering,
)
from .tree_of_rings_drc import (
    drc_on_tree_of_rings,
    gate_projection,
    is_tree_of_rings,
    rings_of,
)
from .topologies import (
    drc_route_on_graph,
    greedy_graph_covering,
    grid_network,
    is_drc_routable_on_graph,
    ring_network_graph,
    torus_network,
    tree_of_rings,
)

__all__ = [
    "drc_on_tree_of_rings",
    "gate_projection",
    "is_tree_of_rings",
    "rings_of",
    "drc_route_on_graph",
    "greedy_graph_covering",
    "grid_network",
    "is_drc_routable_on_graph",
    "lambda_covering",
    "lambda_gap",
    "lambda_lower_bound",
    "repetition_covering",
    "ring_network_graph",
    "torus_network",
    "tree_of_rings",
]
