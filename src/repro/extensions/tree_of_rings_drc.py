"""Exact DRC characterisation on trees of rings.

The paper's ring lemma (a cycle of requests is DRC-routable on ``C_n``
iff its vertices appear in circular order) extends to the paper's first
future-work topology.  In a *tree of rings* every biconnected component
is a cycle and components meet at cut nodes, so:

* the fiber sets of different rings are disjoint — routing choices in
  different rings are independent;
* a request's route is forced except for one binary choice (which arc)
  inside each ring it traverses;
* projecting a logical cycle onto a ring ``R`` (mapping every vertex to
  its *gate* — the node of ``R`` through which paths from that vertex
  enter ``R``) turns the cycle's routing inside ``R`` into a closed walk
  on ``R``'s nodes.

**Lemma (tree-of-rings DRC).**  A logical cycle is DRC-routable on a
tree of rings iff for every ring ``R`` its gate projection, after
collapsing cyclically-consecutive duplicates, is either trivial (≤ 1
distinct gate) or visits distinct gates in ``R``'s circular order.
*Why:* within ``R`` the projected closed walk must use each fiber at
most once; the ring winding argument then forces winding ±1 with every
link used exactly once (circular order), or no links at all.  A
repeated gate in the collapsed projection forces winding ≥ 2, hence is
infeasible.

The test-suite validates this O(k·|rings|) predicate against the
exponential path-assignment router of :mod:`repro.extensions.topologies`.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx

from ..core.blocks import CycleBlock
from ..rings.topology import PhysicalNetwork
from ..util import circular
from ..util.errors import TopologyError

__all__ = ["is_tree_of_rings", "rings_of", "gate_projection", "drc_on_tree_of_rings"]


def rings_of(network: PhysicalNetwork) -> list[list]:
    """The constituent rings (biconnected components that are cycles),
    each as a node list in cyclic order."""
    g = network.graph
    rings = []
    for comp_edges in nx.biconnected_component_edges(g):
        comp_edges = list(comp_edges)
        sub = nx.Graph(comp_edges)
        if sub.number_of_edges() == 1:
            continue  # a bridge, not a ring
        if any(d != 2 for _, d in sub.degree()):
            raise TopologyError("biconnected component is not a simple cycle")
        rings.append(nx.cycle_basis(sub)[0])
    return rings


def is_tree_of_rings(network: PhysicalNetwork) -> bool:
    """True when every biconnected component is a cycle (no bridges)."""
    g = network.graph
    if not nx.is_connected(g):
        return False
    if list(nx.bridges(g)):
        return False
    try:
        rings_of(network)
    except TopologyError:
        return False
    return True


def _gate_map(network: PhysicalNetwork, ring_nodes: tuple) -> dict:
    """Map every graph node to its gate in the given ring: remove the
    ring's fibers; each remaining component touches exactly one ring
    node, through which all its traffic enters the ring."""
    g = network.graph.copy()
    ring_set = set(ring_nodes)
    k = len(ring_nodes)
    for i in range(k):
        g.remove_edge(ring_nodes[i], ring_nodes[(i + 1) % k])
    gates: dict = {}
    for comp in nx.connected_components(g):
        anchors = comp & ring_set
        if len(anchors) != 1:
            raise TopologyError(
                "network is not a tree of rings (ring attaches a component "
                f"at {len(anchors)} nodes)"
            )
        gate = next(iter(anchors))
        for node in comp:
            gates[node] = gate
    return gates


def gate_projection(
    network: PhysicalNetwork, ring_nodes: tuple, block: CycleBlock
) -> list:
    """The block's gate sequence on one ring, with cyclically-consecutive
    duplicates collapsed.  Empty/singleton projections use no fiber of
    the ring."""
    gates = _gate_map(network, ring_nodes)
    seq = [gates[v] for v in block.vertices]
    collapsed: list = []
    for gate in seq:
        if not collapsed or collapsed[-1] != gate:
            collapsed.append(gate)
    if len(collapsed) > 1 and collapsed[0] == collapsed[-1]:
        collapsed.pop()
    return collapsed


def drc_on_tree_of_rings(network: PhysicalNetwork, block: CycleBlock) -> bool:
    """O(k·|rings|) DRC feasibility on a tree of rings (see module
    docstring for the lemma this implements)."""
    if not is_tree_of_rings(network):
        raise TopologyError(f"{network.name!r} is not a tree of rings")
    for v in block.vertices:
        if v not in network.graph:
            raise TopologyError(f"block vertex {v} is not in the network")

    for ring_nodes in rings_of(network):
        ring_tuple = tuple(ring_nodes)
        projection = gate_projection(network, ring_tuple, block)
        if len(projection) <= 1:
            continue
        if len(set(projection)) != len(projection):
            return False  # repeated gate ⇒ winding ≥ 2 inside this ring
        # Translate ring positions to 0..k-1 and test circular order.
        position = {node: i for i, node in enumerate(ring_tuple)}
        k = len(ring_tuple)
        seq = [position[g] for g in projection]
        if len(seq) == 2:
            continue  # a there-and-back pair uses the two arcs disjointly
        if not circular.is_circular_order(k, seq):
            return False
    return True
