"""DRC-coverings of ``λK_n`` — the paper's first extension direction.

"As an extension of this problem, we are now investigating cases with
other communication instances such as λK_n."  The note gives no results
for λ > 1; this module provides what a careful follow-up would start
from:

* tight lower bounds ``ρ_λ(n)`` generalising the note's arguments
  (counting, diameters, and the degree-parity argument, which only
  bites when ``λ(n−1)`` is odd);
* the repetition construction ``λ × optimal_covering(n)`` — provably
  optimal for odd ``n`` (the counting bound is a multiple of ``n``
  there) and within ``λ−⌈λ/…⌉`` slack for even ``n``;
* an improved even-``n`` construction for even ``λ``: pairs of copies
  share their excess, saving ``λ/2·(p − …)`` — implemented as
  ``lambda_covering`` choosing the best known strategy;
* an exact small-``n`` certifier via the branch-and-bound solver.

Experiment E8 tabulates lower bound vs construction across (n, λ).
"""

from __future__ import annotations

from functools import lru_cache

from ..core.bounds import BoundArgument, LowerBoundCertificate
from ..core.construction import optimal_covering
from ..core.covering import Covering
from ..core.formulas import rho
from ..traffic.instances import lambda_all_to_all
from ..util import circular
from ..util.validation import as_int

__all__ = [
    "lambda_lower_bound",
    "lambda_covering",
    "repetition_covering",
    "lambda_gap",
    "certified_lambda_optimum",
]


def lambda_lower_bound(n: int, lam: int) -> LowerBoundCertificate:
    """Proven lower bound on the minimum number of cycles in a
    DRC-covering of ``λK_n`` over ``C_n``."""
    n = as_int(n, "n")
    lam = as_int(lam, "lambda")
    if n < 3 or lam < 1:
        raise ValueError(f"need n ≥ 3 and λ ≥ 1, got n={n}, λ={lam}")
    args: list[BoundArgument] = []

    total = lam * circular.total_chord_distance(n)
    counting = -(-total // n)
    args.append(
        BoundArgument(
            "counting",
            counting,
            f"Σ weighted distances = {total}, each cycle accounts ≤ {n}",
        )
    )

    if n % 2 == 0:
        p = n // 2
        args.append(
            BoundArgument(
                "diameter",
                lam * p,
                f"{lam * p} diameter request-slots, ≤ 1 per cycle",
            )
        )
        # The parity argument needs odd logical degree λ(n−1): with n
        # even this is odd iff λ is odd.
        if lam % 2 == 1 and (lam * p * p) % 2 == 0:
            args.append(
                BoundArgument(
                    "parity",
                    lam * p * p // 2 + 1,
                    f"λ(n−1) = {lam * (n - 1)} odd forbids an exact cycle "
                    "decomposition, so the counting bound cannot be met "
                    "with equality",
                )
            )

    value = max(a.value for a in args)
    return LowerBoundCertificate(n=n, value=value, arguments=tuple(args))


def repetition_covering(n: int, lam: int) -> Covering:
    """``λ`` copies of the Theorem 1/2 optimal covering: ``λ·ρ(n)``
    cycles.  Optimal for odd ``n``; for even ``n`` it leaves slack
    explored by :func:`lambda_covering`."""
    base = optimal_covering(n)
    return Covering(n, base.blocks * lam)


def certified_lambda_optimum(n: int, lam: int) -> Covering:
    """Exact minimum DRC-covering of ``λK_n`` by branch and bound —
    tiny instances only (``n ≤ 8``, small ``λ``); cached.

    This certifier produced the reproduction's sharpest λ result:
    ``ρ_2(6) = 9 < 2·ρ(6) = 10`` — for even ``n`` a doubled instance
    can beat repetition and meet the counting bound exactly.
    """
    return _certified_cache(n, lam)


@lru_cache(maxsize=64)
def _certified_cache(n: int, lam: int) -> Covering:
    # Route through the declarative API with the exact backend pinned:
    # this is a certifier, so neither the closed forms nor the heuristic
    # tier may answer for it.
    from ..api import CoverSpec, solve

    return solve(CoverSpec.for_ring(n, lam=lam, backend="exact")).covering


def _doubled_even_covering(n: int) -> Covering:
    """Best known covering of ``2K_n`` (even ``n``).

    For tiny ``n`` the exact solver finds the optimum (e.g. 9 cycles for
    ``2K_6``, beating the 10 of plain repetition; ``2K_8`` already
    exceeds the search budget).  Beyond the solver's range we fall back
    to repetition with a droppable-block check: a block all of whose
    requests remain ≥ 2-covered without it can be removed outright.
    """
    if n <= 6:
        return certified_lambda_optimum(n, 2)
    doubled = Covering(n, optimal_covering(n).blocks * 2)
    cov = doubled.coverage
    for idx, blk in enumerate(doubled.blocks):
        if all(cov[e] - 1 >= 2 for e in blk.edges()):
            return doubled.without_block(idx)
    return doubled


def lambda_covering(n: int, lam: int) -> Covering:
    """Best implemented DRC-covering of ``λK_n``.

    Odd ``n``: repetition (provably optimal).  Even ``n``: pairs of
    copies are replaced by the improved doubled covering when it saves a
    cycle; the remainder uses repetition.  The covering always verifies
    against ``λK_n``; optimality is certified only where the lower
    bound matches (reported by experiment E8).
    """
    n = as_int(n, "n")
    lam = as_int(lam, "lambda")
    if lam < 1:
        raise ValueError(f"λ ≥ 1 required, got {lam}")
    if n % 2 == 1 or lam == 1:
        return repetition_covering(n, lam)

    pair = _doubled_even_covering(n)
    blocks: tuple = ()
    for _ in range(lam // 2):
        blocks = blocks + pair.blocks
    if lam % 2 == 1:
        blocks = blocks + optimal_covering(n).blocks
    return Covering(n, blocks)


def lambda_gap(n: int, lam: int) -> int:
    """Construction size minus proven lower bound (0 = certified
    optimal)."""
    return lambda_covering(n, lam).num_blocks - lambda_lower_bound(n, lam).value
