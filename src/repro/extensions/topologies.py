"""DRC on non-ring topologies — the paper's second extension direction.

"We also consider other network topologies, for example, trees of
rings, grids or tori."  This module supplies the machinery such a study
needs:

* generators for the named topologies (tree of rings, grid, torus) as
  :class:`~repro.rings.topology.PhysicalNetwork` objects;
* an exact DRC feasibility test for a cycle of requests on an arbitrary
  graph (backtracking over edge-disjoint path systems; exponential in
  the cycle length, which is ≤ 4 here — trees short-circuit to the
  unique-path check);
* a greedy DRC-covering heuristic for All-to-All over any
  2-edge-connected topology, so experiment E9 can compare cycle counts
  across topologies of equal order.

On a ring these reduce exactly to the closed-form machinery of
:mod:`repro.core` (checked by tests), anchoring the generalisation.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from itertools import islice

import networkx as nx

from ..core.blocks import CycleBlock
from ..rings.topology import PhysicalNetwork
from ..util.errors import ConstructionError, TopologyError

__all__ = [
    "tree_of_rings",
    "grid_network",
    "torus_network",
    "ring_network_graph",
    "drc_route_on_graph",
    "is_drc_routable_on_graph",
    "greedy_graph_covering",
]


# ---------------------------------------------------------------------------
# Topology generators
# ---------------------------------------------------------------------------


def ring_network_graph(n: int) -> PhysicalNetwork:
    """The paper's ring, as a general :class:`PhysicalNetwork`."""
    if n < 3:
        raise TopologyError(f"ring needs n ≥ 3, got {n}")
    return PhysicalNetwork(nx.cycle_graph(n), name=f"ring-{n}")


def tree_of_rings(ring_sizes: Sequence[int]) -> PhysicalNetwork:
    """A chain-of-rings network: ring ``i+1`` shares exactly one node
    with ring ``i`` (the classic SDH/WDM metro "tree of rings" in its
    path-shaped form).  Nodes are integers, assigned consecutively."""
    if not ring_sizes:
        raise TopologyError("tree of rings needs at least one ring")
    g = nx.Graph()
    next_node = 0
    attach = 0
    for idx, size in enumerate(ring_sizes):
        if size < 3:
            raise TopologyError(f"ring #{idx} must have ≥ 3 nodes, got {size}")
        if idx == 0:
            members = list(range(size))
            next_node = size
        else:
            members = [attach] + list(range(next_node, next_node + size - 1))
            next_node += size - 1
        for i, u in enumerate(members):
            g.add_edge(u, members[(i + 1) % size])
        attach = members[size // 2]
    return PhysicalNetwork(g, name=f"tree-of-rings{tuple(ring_sizes)}")


def grid_network(rows: int, cols: int) -> PhysicalNetwork:
    """A rows×cols mesh; nodes are relabelled to integers row-major."""
    if rows < 2 or cols < 2:
        raise TopologyError(f"grid needs ≥ 2×2, got {rows}×{cols}")
    g = nx.grid_2d_graph(rows, cols)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    return PhysicalNetwork(g, name=f"grid-{rows}x{cols}")


def torus_network(rows: int, cols: int) -> PhysicalNetwork:
    """A rows×cols torus (periodic grid)."""
    if rows < 3 or cols < 3:
        raise TopologyError(f"torus needs ≥ 3×3, got {rows}×{cols}")
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    return PhysicalNetwork(g, name=f"torus-{rows}x{cols}")


# ---------------------------------------------------------------------------
# DRC on general graphs
# ---------------------------------------------------------------------------


def _edge_key(u: Hashable, v: Hashable) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


def drc_route_on_graph(
    network: PhysicalNetwork,
    block: CycleBlock,
    *,
    max_paths_per_request: int = 40,
) -> dict[tuple[int, int], list] | None:
    """Edge-disjoint routing of a block's requests on an arbitrary
    graph, or ``None`` when none exists.

    Trees short-circuit (paths are unique); otherwise backtracking over
    the ``max_paths_per_request`` shortest simple paths per request.
    The cap is a completeness/efficiency dial: for the small cycles the
    paper uses (≤ C4) and metro-scale topologies, 40 paths per request
    is exhaustive in practice.
    """
    g = network.graph
    requests = block.edges()
    for a, b in requests:
        if a not in g or b not in g:
            raise TopologyError(f"request ({a},{b}) has endpoints outside the network")

    if nx.is_tree(g):
        used: set[tuple] = set()
        routing: dict[tuple[int, int], list] = {}
        for a, b in requests:
            path = nx.shortest_path(g, a, b)
            edges = {_edge_key(u, v) for u, v in zip(path, path[1:])}
            if edges & used:
                return None
            used |= edges
            routing[(a, b)] = path
        return routing

    path_choices: list[list[list]] = []
    for a, b in requests:
        gen = nx.shortest_simple_paths(g, a, b)
        choices = list(islice(gen, max_paths_per_request))
        if not choices:
            return None
        path_choices.append(choices)

    # Route scarce requests first: fewer alternatives ⇒ earlier pruning.
    order = sorted(range(len(requests)), key=lambda i: len(path_choices[i]))
    routing_paths: dict[tuple[int, int], list] = {}

    def backtrack(pos: int, used: frozenset) -> bool:
        if pos == len(order):
            return True
        idx = order[pos]
        for path in path_choices[idx]:
            edges = frozenset(_edge_key(u, v) for u, v in zip(path, path[1:]))
            if edges & used:
                continue
            routing_paths[requests[idx]] = path
            if backtrack(pos + 1, used | edges):
                return True
            del routing_paths[requests[idx]]
        return False

    if backtrack(0, frozenset()):
        return routing_paths
    return None


def is_drc_routable_on_graph(network: PhysicalNetwork, block: CycleBlock) -> bool:
    """DRC feasibility of a cycle of requests on an arbitrary topology."""
    return drc_route_on_graph(network, block) is not None


def greedy_graph_covering(
    network: PhysicalNetwork,
    *,
    max_size: int = 4,
) -> list[CycleBlock]:
    """Greedy DRC-covering of All-to-All over an arbitrary
    2-edge-connected topology.

    Grows each block from the lexicographically first uncovered request
    by adding the companion that covers the most new requests while the
    block stays DRC-routable.  Exact on rings only by coincidence; this
    is the experimental baseline the paper's future work calls for, not
    a theorem.
    """
    if not network.is_two_edge_connected():
        raise ConstructionError(
            f"{network.name!r} is not 2-edge-connected: no survivable covering exists"
        )
    nodes = sorted(network.graph.nodes())
    uncovered: set[tuple] = {
        (a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]
    }
    chosen: list[CycleBlock] = []
    while uncovered:
        a, b = min(uncovered)
        best_block: CycleBlock | None = None
        best_gain = -1
        for c in nodes:
            if c in (a, b):
                continue
            tri = CycleBlock((a, b, c))
            gain = sum(1 for e in tri.edges() if tuple(sorted(e)) in uncovered)
            if gain > best_gain and is_drc_routable_on_graph(network, tri):
                best_gain, best_block = gain, tri
        if max_size >= 4 and best_gain < 3:
            for c in nodes:
                for d in nodes:
                    if len({a, b, c, d}) < 4:
                        continue
                    quad = CycleBlock((a, b, c, d))
                    gain = sum(1 for e in quad.edges() if tuple(sorted(e)) in uncovered)
                    if gain > best_gain and is_drc_routable_on_graph(network, quad):
                        best_gain, best_block = gain, quad
        if best_block is None:
            raise ConstructionError(
                f"no routable block covers request ({a},{b}) on {network.name!r}"
            )
        chosen.append(best_block)
        uncovered.difference_update(
            tuple(sorted(e)) for e in best_block.edges()
        )
    return chosen
