"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause
while still letting genuine programming errors (``TypeError`` etc.)
propagate untouched.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidBlockError",
    "InvalidCoveringError",
    "RoutingError",
    "ConstructionError",
    "SolverError",
    "SolverPreempted",
    "DegradationError",
    "TopologyError",
    "CapacityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidBlockError(ReproError, ValueError):
    """A cycle block is structurally invalid (too short, repeated vertices,
    vertices outside the ring, ...)."""


class InvalidCoveringError(ReproError, ValueError):
    """A covering fails validation (uncovered requests, non-routable block,
    inconsistent instance, ...)."""


class RoutingError(ReproError):
    """A routing could not be produced (e.g. DRC infeasible for a block)."""


class ConstructionError(ReproError):
    """An optimal construction could not be completed.

    Raised when an internal search step fails; this indicates a bug (the
    constructions are expected to succeed for every supported ``n``), so
    the message carries enough context for diagnosis.
    """


class SolverError(ReproError):
    """The exact solver was given an infeasible or oversized instance.

    Budget-exhaustion raises (node limit, deadline) attach the
    in-flight search state so callers can salvage progress:

    ``checkpoint``
        A serializable ``SearchCheckpoint`` (or ``None`` when the
        search was not checkpointable), resumable via the engine's
        ``checkpoint=`` parameter.
    ``best_blocks`` / ``best_value``
        The incumbent at the moment the budget ran out (``None`` when
        no covering had been found yet).
    ``stats``
        The ``SolverStats`` snapshot (node count so far).
    """

    def __init__(
        self,
        *args,
        checkpoint=None,
        best_blocks=None,
        best_value=None,
        stats=None,
    ) -> None:
        super().__init__(*args)
        self.checkpoint = checkpoint
        self.best_blocks = best_blocks
        self.best_value = best_value
        self.stats = stats


class SolverPreempted(SolverError):
    """The search was preempted (deadline or external preempt request)
    with a resumable checkpoint attached; not a failure — re-run with
    ``checkpoint=exc.checkpoint`` to continue exactly where it left
    off."""


class DegradationError(ReproError, RuntimeError):
    """A graceful-degradation fallback itself failed: the dispatcher
    re-routed an exhausted exact job through the heuristic backend and
    even that could not produce a valid covering."""


class TopologyError(ReproError, ValueError):
    """A physical topology does not meet a structural requirement."""


class CapacityError(ReproError):
    """A link's capacity was exceeded during simulation."""
