"""Input-validation helpers shared across the library.

These are deliberately tiny and allocation-free on the happy path: they
run inside constructors of objects that hot loops create in bulk
(:class:`~repro.core.blocks.CycleBlock`, routing arcs, ...), so they
avoid building error strings unless a check actually fails.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .errors import ReproError

__all__ = [
    "require",
    "check_ring_order",
    "check_vertex",
    "check_positive",
    "check_odd",
    "check_even",
    "as_int",
]


def require(condition: bool, exc_type: type[ReproError], message: str, *args: object) -> None:
    """Raise ``exc_type(message % args)`` when ``condition`` is false.

    ``args`` are interpolated lazily so callers can pass raw values
    without paying string-formatting cost on success.
    """
    if not condition:
        raise exc_type(message % args if args else message)


def check_vertex(v: int, n: int) -> int:
    """Validate that ``v`` is an integer vertex id of a ring of order ``n``."""
    v = as_int(v, "vertex")
    if not 0 <= v < n:
        raise ValueError(f"vertex {v} outside ring of order {n}")
    return v


def check_positive(value: int, name: str = "value") -> int:
    value = as_int(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_odd(n: int, name: str = "n") -> int:
    n = as_int(n, name)
    if n % 2 == 0:
        raise ValueError(f"{name} must be odd, got {n}")
    return n


def check_even(n: int, name: str = "n") -> int:
    n = as_int(n, name)
    if n % 2 == 1:
        raise ValueError(f"{name} must be even, got {n}")
    return n


def as_int(value: object, name: str = "value") -> int:
    """Coerce numpy integer scalars and bools-excluded ints to ``int``.

    Rejects floats (even integral ones) to surface silent truncation bugs
    early — graph vertex arithmetic in this library is exact.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, int):
        return value
    # numpy integer scalars expose __index__; floats do not.
    try:
        return int(value.__index__())  # type: ignore[attr-defined]
    except AttributeError:
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}") from None


def check_ring_order(vertices: Sequence[int], n: int) -> None:
    """Validate every vertex id in ``vertices`` against ring order ``n``."""
    for v in vertices:
        check_vertex(v, n)


def all_distinct(items: Iterable[object]) -> bool:
    """True when ``items`` contains no duplicates (hash-based)."""
    seen = set()
    for item in items:
        if item in seen:
            return False
        seen.add(item)
    return True
