"""Process-based parallel map for embarrassingly parallel sweeps.

The benchmark harness sweeps constructions and failure simulations over
many independent ring sizes.  Following the HPC guides' advice, the hot
kernels themselves are vectorised/algorithmic (optimise the algorithm
first); this module only adds *coarse-grained* parallelism across
independent problem instances, where process start-up cost amortises.

``parallel_map`` degrades gracefully to a serial loop when ``workers=1``
(or when the payload is tiny) so tests and benchmarks stay deterministic
and profile-friendly.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """A conservative worker count: physical parallelism minus one, at
    least 1 — leaves a core for the orchestrating process."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    min_chunk: int = 4,
) -> list[R]:
    """Map ``fn`` over ``items`` preserving order.

    Runs serially when ``workers`` resolves to 1 or the item count is
    below ``min_chunk`` (process-pool overhead would dominate).  ``fn``
    must be picklable (module-level function) to use multiple workers.
    """
    seq: Sequence[T] = list(items)
    nworkers = default_workers() if workers is None else max(1, workers)
    if nworkers == 1 or len(seq) < min_chunk:
        return [fn(item) for item in seq]
    chunksize = max(1, len(seq) // (4 * nworkers))
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        return list(pool.map(fn, seq, chunksize=chunksize))
