"""Process-based parallel map for embarrassingly parallel sweeps.

The benchmark harness sweeps constructions and failure simulations over
many independent ring sizes, and the solver engine shards a single
large-n certification across workers (see
:meth:`repro.core.engine.SolverEngine.min_covering_sharded`).  Following
the HPC guides' advice, the hot kernels themselves are
vectorised/algorithmic (optimise the algorithm first); this module only
adds *coarse-grained* parallelism across independent problem instances,
where process start-up cost amortises.

``parallel_map`` degrades gracefully to a serial loop when ``workers=1``
(or when the payload is tiny) so tests and benchmarks stay deterministic
and profile-friendly.  When per-item ``weights`` are supplied, items are
packed into per-worker bins by longest-processing-time first — the
right chunking when item costs vary by orders of magnitude (a ρ(n)
sweep's cost grows exponentially in n, so equal-*count* chunks leave
all but one worker idle).

The ``REPRO_MAX_WORKERS`` environment variable caps every worker count
resolved by this module; CI sets it to keep benchmark smoke jobs from
oversubscribing shared runners.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "weighted_chunks", "lpt_order"]

MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def _apply_env_cap(workers: int) -> int:
    """Clamp a worker count to the ``REPRO_MAX_WORKERS`` override (an
    unparsable override never breaks a sweep)."""
    cap = os.environ.get(MAX_WORKERS_ENV)
    if cap is not None:
        try:
            workers = min(workers, max(1, int(cap)))
        except ValueError:
            pass
    return workers


def default_workers() -> int:
    """A conservative worker count: physical parallelism minus one, at
    least 1 — leaves a core for the orchestrating process.  Capped by
    the ``REPRO_MAX_WORKERS`` environment variable when set."""
    return _apply_env_cap(max(1, (os.cpu_count() or 2) - 1))


def resolve_workers(workers: int | None) -> int:
    """Clamp an explicit worker request to ≥ 1 and to the
    ``REPRO_MAX_WORKERS`` cap; ``None`` means :func:`default_workers`."""
    if workers is None:
        return default_workers()
    return _apply_env_cap(max(1, workers))


def lpt_order(weights: Sequence[float]) -> list[int]:
    """Indices sorted heaviest-first (longest-processing-time order),
    ties breaking toward the earlier item.

    This is both the intake order of :func:`weighted_chunks` and the
    drain order of the dispatch work queue
    (:mod:`repro.dispatch`) — one definition so an in-process shard plan
    and a distributed schedule agree on which jobs are "big".
    """
    return sorted(range(len(weights)), key=lambda i: (-weights[i], i))


def weighted_chunks(
    items: Sequence[T], weights: Sequence[float], bins: int
) -> list[list[T]]:
    """Partition ``items`` into ≤ ``bins`` lists balanced by total
    weight (longest-processing-time-first greedy).

    Deterministic: ties in both the weight sort and the bin choice break
    toward earlier items / lower bin index, so the same inputs always
    shard the same way — a requirement for reproducible merged solver
    statistics.  Empty bins are dropped.
    """
    if len(items) != len(weights):
        raise ValueError(f"{len(items)} items but {len(weights)} weights")
    bins = max(1, bins)
    order = lpt_order(weights)
    loads = [0.0] * bins
    assignment: list[list[int]] = [[] for _ in range(bins)]
    for i in order:
        b = min(range(bins), key=lambda j: (loads[j], j))
        loads[b] += weights[i]
        assignment[b].append(i)
    # Preserve original item order within each bin.
    return [[items[i] for i in sorted(bin_)] for bin_ in assignment if bin_]


def _run_bin(payload: tuple[Callable, list]) -> list:
    fn, chunk = payload
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    min_chunk: int = 4,
    weights: Sequence[float] | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` preserving order.

    Runs serially when ``workers`` resolves to 1 or the item count is
    below ``min_chunk`` (process-pool overhead would dominate).  ``fn``
    must be picklable (module-level function) to use multiple workers.

    With ``weights`` (one non-negative cost estimate per item), items
    are packed into one bin per worker by
    :func:`weighted_chunks` and each bin runs as a single task, so a
    handful of expensive items cannot serialise the whole sweep behind
    uniform round-robin chunks.
    """
    seq: Sequence[T] = list(items)
    if weights is not None and len(weights) != len(seq):
        raise ValueError(f"{len(seq)} items but {len(weights)} weights")
    nworkers = resolve_workers(workers)
    if nworkers == 1 or len(seq) < min_chunk:
        return [fn(item) for item in seq]
    if weights is not None:
        index_bins = weighted_chunks(list(range(len(seq))), weights, nworkers)
        payloads = [(fn, [seq[i] for i in bin_]) for bin_ in index_bins]
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            chunked = list(pool.map(_run_bin, payloads))
        out: list[R] = [None] * len(seq)  # type: ignore[list-item]
        for bin_, results in zip(index_bins, chunked):
            for i, r in zip(bin_, results):
                out[i] = r
        return out
    chunksize = max(1, len(seq) // (4 * nworkers))
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        return list(pool.map(fn, seq, chunksize=chunksize))
