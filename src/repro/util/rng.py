"""Deterministic random-number helpers.

Simulations and randomised baselines accept either an integer seed or a
ready :class:`numpy.random.Generator`; this module normalises both to a
``Generator`` so every stochastic component is reproducible by default.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "DEFAULT_SEED"]

DEFAULT_SEED = 20010310  # SPAA 2001 — the paper's venue year/monthish tag.


def as_generator(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` to a :class:`numpy.random.Generator`.

    ``None`` maps to the library-wide default seed (fully deterministic),
    an ``int`` seeds a fresh PCG64, and a ``Generator`` passes through.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))
