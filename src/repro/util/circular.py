"""Circular (ring) geometry kernel.

Everything in the paper happens on a discrete circle: the physical
network is the ring ``C_n`` with vertices ``0..n-1`` in circular order,
logical requests are chords of that circle, and a cycle of requests is
DRC-routable iff its vertices appear in circular order (see
:mod:`repro.core.drc`).  This module is the single home for the circle
arithmetic used everywhere else: gaps, distances, circular order,
chord crossing/nesting predicates, and numpy-vectorised bulk variants
used by the verifier and the benchmarks on large instances.

Conventions
-----------
* Vertices are ``int`` in ``[0, n)``; arithmetic is mod ``n``.
* The *gap* ``gap(n, a, b)`` is the clockwise arc length from ``a`` to
  ``b`` (in ``[0, n)``); the *distance* is the chord length
  ``min(gap, n - gap)`` (in ``[1, n // 2]`` for distinct endpoints).
* A *chord* is a normalised pair ``(min(a, b), max(a, b))``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "gap",
    "ring_distance",
    "chord",
    "all_chords",
    "n_chords",
    "chord_distance",
    "total_chord_distance",
    "gaps_of_cycle",
    "is_circular_order",
    "winding_number",
    "sort_circular",
    "convex_cycle",
    "chords_cross",
    "chords_nested",
    "chords_disjoint_arcs",
    "chords_compatible",
    "arc_between",
    "vertices_in_arc",
    "chord_distances_bulk",
    "cycle_gap_matrix",
    "canonical_rotation",
]


def gap(n: int, a: int, b: int) -> int:
    """Clockwise arc length from ``a`` to ``b`` on ``C_n`` (0 when equal)."""
    return (b - a) % n


def ring_distance(n: int, a: int, b: int) -> int:
    """Chord length between ``a`` and ``b``: hops along the shorter arc."""
    g = (b - a) % n
    return g if g <= n - g else n - g


def chord(a: int, b: int) -> tuple[int, int]:
    """Normalised undirected chord (request) between two vertices."""
    if a == b:
        raise ValueError(f"chord endpoints must differ, got {a}")
    return (a, b) if a < b else (b, a)


def all_chords(n: int) -> Iterator[tuple[int, int]]:
    """Iterate the edges of ``K_n`` as normalised chords, lexicographically."""
    for a in range(n):
        for b in range(a + 1, n):
            yield (a, b)


def n_chords(n: int) -> int:
    """Number of edges of ``K_n``."""
    return n * (n - 1) // 2


def chord_distance(n: int, e: tuple[int, int]) -> int:
    """Ring distance of a chord."""
    return ring_distance(n, e[0], e[1])


def total_chord_distance(n: int) -> int:
    """``Σ_e dist(e)`` over all edges of ``K_n`` — the numerator of the
    counting lower bound.

    Closed forms: ``n·p(p+1)/2`` for ``n = 2p+1`` and ``n·p²/2`` for
    ``n = 2p`` (distance-``p`` class has only ``n/2`` chords).
    """
    if n < 2:
        return 0
    p = n // 2
    if n % 2 == 1:
        return n * p * (p + 1) // 2
    return n * p * p // 2


def gaps_of_cycle(n: int, cycle: Sequence[int]) -> list[int]:
    """Clockwise gaps between consecutive cycle vertices (cyclically).

    The cycle is traversed in the given order; the result has the same
    length as ``cycle`` and sums to a multiple of ``n`` (``n`` exactly
    when the cycle is in circular order).
    """
    k = len(cycle)
    return [(cycle[(i + 1) % k] - cycle[i]) % n for i in range(k)]


def winding_number(n: int, cycle: Sequence[int]) -> int:
    """How many times the closed walk ``cycle`` winds around the ring
    when each consecutive pair is joined by its clockwise arc."""
    total = sum((cycle[(i + 1) % len(cycle)] - cycle[i]) % n for i in range(len(cycle)))
    return total // n


def is_circular_order(n: int, cycle: Sequence[int]) -> bool:
    """True iff ``cycle`` lists distinct vertices in ring circular order
    (clockwise or counterclockwise).

    This is exactly the DRC-feasibility condition for a logical cycle on
    the physical ring ``C_n`` (Lemma, :mod:`repro.core.drc`).
    """
    k = len(cycle)
    if k < 3 or len(set(cycle)) != k:
        return False
    forward = sum((cycle[(i + 1) % k] - cycle[i]) % n for i in range(k))
    # Distinct consecutive vertices give gaps in [1, n-1]; the total is a
    # positive multiple of n.  Clockwise circular order ⟺ winding 1;
    # counterclockwise ⟺ the reversed walk winds once, i.e. the forward
    # total equals (k-1)·n because opposite gaps sum to n pairwise.
    return forward == n or forward == (k - 1) * n


def sort_circular(n: int, vertices: Iterable[int], start: int | None = None) -> list[int]:
    """Vertices sorted in circular order, beginning at ``start`` (or the
    smallest vertex when omitted)."""
    vs = sorted(set(vertices))
    if not vs:
        return []
    if start is None:
        return vs
    if start not in vs:
        raise ValueError(f"start vertex {start} not among vertices")
    i = vs.index(start)
    return vs[i:] + vs[:i]


def convex_cycle(vertices: Iterable[int]) -> tuple[int, ...]:
    """The unique DRC-routable (convex) cycle on a vertex set: the cycle
    visiting the vertices in circular order.  Needs ``|S| ≥ 3``."""
    vs = tuple(sorted(set(vertices)))
    if len(vs) < 3:
        raise ValueError(f"a cycle needs at least 3 distinct vertices, got {vs}")
    return vs


def chords_cross(n: int, e: tuple[int, int], f: tuple[int, int]) -> bool:
    """Strict interleaving test: do chords ``e`` and ``f`` cross in the
    interior of the disk?  Shared endpoints do not count as crossing."""
    a, b = e
    c, d = f
    if len({a, b, c, d}) < 4:
        return False
    # e splits the circle into (a, b) and (b, a); f crosses iff exactly
    # one endpoint lies strictly inside (a, b) clockwise.
    in1 = 0 < (c - a) % n < (b - a) % n
    in2 = 0 < (d - a) % n < (b - a) % n
    return in1 != in2


def chords_nested(n: int, e: tuple[int, int], f: tuple[int, int]) -> bool:
    """True when one chord's endpoints both lie strictly inside one arc of
    the other (endpoint-disjoint, non-crossing, non-"parallel")."""
    a, b = e
    c, d = f
    if len({a, b, c, d}) < 4:
        return False
    span = (b - a) % n
    in1 = 0 < (c - a) % n < span
    in2 = 0 < (d - a) % n < span
    return in1 == in2


def chords_disjoint_arcs(n: int, e: tuple[int, int], f: tuple[int, int]) -> bool:
    """True when the chords neither cross nor share endpoints (they are
    compatible inside one convex cycle)."""
    a, b = e
    c, d = f
    if len({a, b, c, d}) < 4:
        return False
    return not chords_cross(n, e, f)


def chords_compatible(n: int, e: tuple[int, int], f: tuple[int, int]) -> bool:
    """Can ``e`` and ``f`` both be edges of a single convex cycle?

    Requires endpoint-disjointness and non-crossing: the convex
    quadrilateral on their four endpoints then contains both as edges.
    """
    return chords_disjoint_arcs(n, e, f)


def arc_between(n: int, a: int, b: int) -> list[int]:
    """Vertices strictly inside the clockwise arc from ``a`` to ``b``."""
    return [(a + i) % n for i in range(1, (b - a) % n)]


def vertices_in_arc(n: int, a: int, b: int, vertices: Iterable[int]) -> list[int]:
    """Subset of ``vertices`` lying strictly inside the clockwise arc
    ``a → b``, in arc order."""
    span = (b - a) % n
    inside = [(v, (v - a) % n) for v in vertices if 0 < (v - a) % n < span]
    inside.sort(key=lambda t: t[1])
    return [v for v, _ in inside]


# ---------------------------------------------------------------------------
# Vectorised bulk variants (hot paths: verifier, bounds, benchmarks)
# ---------------------------------------------------------------------------


def chord_distances_bulk(n: int, chords: np.ndarray) -> np.ndarray:
    """Ring distances for an ``(m, 2)`` integer array of chords.

    Vectorised; used by the verifier and the counting bound on large
    instances where a Python loop over ``Θ(n²)`` chords would dominate.
    """
    arr = np.asarray(chords, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (m, 2) chord array, got shape {arr.shape}")
    g = np.mod(arr[:, 1] - arr[:, 0], n)
    return np.minimum(g, n - g)


def cycle_gap_matrix(n: int, cycles: Sequence[Sequence[int]]) -> list[np.ndarray]:
    """Clockwise gap arrays for a batch of cycles (ragged lengths)."""
    out: list[np.ndarray] = []
    for cyc in cycles:
        arr = np.asarray(cyc, dtype=np.int64)
        out.append(np.mod(np.roll(arr, -1) - arr, n))
    return out


def canonical_rotation(cycle: Sequence[int]) -> tuple[int, ...]:
    """Canonical representative of a cycle under rotation and reflection.

    Used for hashing/deduplicating blocks: two blocks describe the same
    subnetwork iff their canonical rotations coincide.
    """
    k = len(cycle)
    if k == 0:
        return ()
    best: tuple[int, ...] | None = None
    seqs = [tuple(cycle), tuple(reversed(cycle))]
    for seq in seqs:
        for r in range(k):
            cand = seq[r:] + seq[:r]
            if best is None or cand < best:
                best = cand
    assert best is not None
    return best
