"""Shared utilities: circle geometry, validation, tables, parallel map."""

from . import circular, errors, parallel, rng, tables, validation
from .errors import (
    CapacityError,
    ConstructionError,
    InvalidBlockError,
    InvalidCoveringError,
    ReproError,
    RoutingError,
    SolverError,
    TopologyError,
)

__all__ = [
    "circular",
    "errors",
    "parallel",
    "rng",
    "tables",
    "validation",
    "ReproError",
    "InvalidBlockError",
    "InvalidCoveringError",
    "RoutingError",
    "ConstructionError",
    "SolverError",
    "TopologyError",
    "CapacityError",
]
