"""Plain-text table rendering for the experiment harness.

The paper's results are tables of closed-form values; the benchmark
harness regenerates them and prints them in a fixed-width format so the
EXPERIMENTS.md paper-vs-measured comparison can be pasted directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["Table", "format_table"]


@dataclass
class Table:
    """A small column-oriented table with a title and aligned rendering."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``columns`` with a title rule, right-aligning
    numeric-looking cells and left-aligning text."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(s: str) -> bool:
        return bool(s) and all(ch.isdigit() or ch in "+-.eE%" for ch in s)

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if is_numeric(cell) else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    header = render_row(list(columns))
    rule = "-" * len(header)
    lines = [title, "=" * len(title), header, rule]
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
