"""Aggregate survivability metrics (experiment E6).

Summarises a full single-link failure sweep: recovery rate, how many
requests each failure disturbs, path stretch of the loop-back routes,
and the capacity overhead of the protection scheme (dedicated spare =
100% of working, the price the paper's design knowingly pays for fast
local switching compared to shared restoration).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from ..wdm.design import RingDesign
from .protection import LinkFailureOutcome, ProtectionSimulator

__all__ = ["SurvivabilityReport", "evaluate_survivability"]


@dataclass(frozen=True)
class SurvivabilityReport:
    """Aggregated outcome of failing every fiber once."""

    n: int
    num_subnetworks: int
    failures_simulated: int
    failures_recovered: int
    total_reroutes: int
    mean_affected_per_failure: float
    max_affected_per_failure: int
    mean_stretch: float
    max_stretch: float
    capacity_overhead: float

    @property
    def fully_survivable(self) -> bool:
        return self.failures_recovered == self.failures_simulated

    def summary(self) -> str:
        return (
            f"n={self.n}: {self.failures_recovered}/{self.failures_simulated} "
            f"failures recovered, avg {self.mean_affected_per_failure:.1f} "
            f"reroutes/failure, stretch ≤ {self.max_stretch:.1f}×, "
            f"overhead {self.capacity_overhead:.0%}"
        )


def evaluate_survivability(design: RingDesign) -> SurvivabilityReport:
    """Run the full single-link failure sweep and aggregate the outcome."""
    sim = ProtectionSimulator(design)
    outcomes: list[LinkFailureOutcome] = sim.sweep_link_failures()

    affected = [o.affected_requests for o in outcomes]
    stretches = [ev.stretch for o in outcomes for ev in o.reroutes]
    return SurvivabilityReport(
        n=design.n,
        num_subnetworks=design.covering.num_blocks,
        failures_simulated=len(outcomes),
        failures_recovered=sum(1 for o in outcomes if o.fully_recovered),
        total_reroutes=sum(affected),
        mean_affected_per_failure=mean(affected) if affected else 0.0,
        max_affected_per_failure=max(affected, default=0),
        mean_stretch=mean(stretches) if stretches else 1.0,
        max_stretch=max(stretches, default=1.0),
        # One dedicated protection wavelength per working wavelength.
        capacity_overhead=1.0,
    )
