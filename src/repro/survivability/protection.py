"""Automatic protection switching inside independent subnetworks.

The paper's design point: "on the cycle we use half of the capacity for
the demands, and in case of failure we reroute the traffic through the
failed link via the remaining part of the cycle using the other half of
the capacity."

Concretely, each subnetwork owns a working wavelength (carrying the
cycle's requests on arcs that tile the ring) and a protection
wavelength.  When link ``f`` is cut, each subnetwork has *exactly one*
working arc crossing ``f`` (the arcs partition the ring's links); that
request loops the other way around the ring on the protection
wavelength.  Because only one request per subnetwork reroutes, the
protection wavelength never carries two paths — recovery is guaranteed
and local to the subnetwork, with no signalling between subnetworks.
This module simulates the switch and *checks* those guarantees rather
than assuming them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rings.capacity import LinkLoadLedger
from ..rings.routing import Arc
from ..util.errors import ReproError
from ..wdm.design import RingDesign
from .failures import LinkFailure, NodeFailure

__all__ = ["RerouteEvent", "LinkFailureOutcome", "ProtectionSimulator", "NodeFailureOutcome"]


@dataclass(frozen=True)
class RerouteEvent:
    """One request switched to its protection path."""

    subnetwork: int
    request: tuple[int, int]
    working_arc: Arc
    protection_arc: Arc

    @property
    def stretch(self) -> float:
        """Protection path length relative to the working path."""
        return self.protection_arc.length / self.working_arc.length


@dataclass(frozen=True)
class LinkFailureOutcome:
    """Result of simulating one fiber cut."""

    failure: LinkFailure
    reroutes: tuple[RerouteEvent, ...]
    fully_recovered: bool
    protection_conflicts: int

    @property
    def affected_requests(self) -> int:
        return len(self.reroutes)

    @property
    def max_stretch(self) -> float:
        return max((ev.stretch for ev in self.reroutes), default=1.0)


@dataclass(frozen=True)
class NodeFailureOutcome:
    """Result of an optical-switch outage: transit traffic recovers via
    protection unless its loop-back also crosses the dead node."""

    failure: NodeFailure
    terminated_requests: int          # lost by definition (endpoint died)
    recovered_requests: int
    unrecovered_requests: int

    @property
    def transit_survival_rate(self) -> float:
        transit = self.recovered_requests + self.unrecovered_requests
        return 1.0 if transit == 0 else self.recovered_requests / transit


@dataclass
class ProtectionSimulator:
    """Failure simulator for a complete :class:`~repro.wdm.design.RingDesign`."""

    design: RingDesign
    _events: list[LinkFailureOutcome] = field(default_factory=list, init=False)

    @property
    def n(self) -> int:
        return self.design.n

    # -- link failures ----------------------------------------------------

    def simulate_link_failure(self, failure: LinkFailure) -> LinkFailureOutcome:
        """Cut one fiber and run automatic protection switching in every
        subnetwork, validating the per-wavelength capacity invariants."""
        if failure.n != self.n:
            raise ReproError(f"failure on C_{failure.n} applied to C_{self.n} design")
        dead = failure.link
        reroutes: list[RerouteEvent] = []
        conflicts = 0

        for k, routing in enumerate(self.design.plan.routings):
            ledger = LinkLoadLedger(self.n)  # protection wavelength of subnetwork k
            for request in routing.requests:
                working = routing.arc_for(request)
                if not working.uses_link(dead):
                    continue
                protection = working.reversed_arc()
                if protection.uses_link(dead):
                    # Impossible for a genuine cycle routing (the two arcs
                    # partition the ring); counted rather than asserted.
                    conflicts += 1
                    continue
                try:
                    ledger.charge(protection)
                except ReproError:
                    conflicts += 1
                    continue
                reroutes.append(
                    RerouteEvent(
                        subnetwork=k,
                        request=request,
                        working_arc=working,
                        protection_arc=protection,
                    )
                )

        recovered = conflicts == 0 and self._every_affected_request_rerouted(dead, reroutes)
        outcome = LinkFailureOutcome(
            failure=failure,
            reroutes=tuple(reroutes),
            fully_recovered=recovered,
            protection_conflicts=conflicts,
        )
        self._events.append(outcome)
        return outcome

    def _every_affected_request_rerouted(
        self, dead: int, reroutes: list[RerouteEvent]
    ) -> bool:
        """Cross-check: every *instance* request whose working route died
        has at least one reroute event (or a redundant live route)."""
        rerouted = {ev.request for ev in reroutes}
        for request, (_, arc) in self.design.request_routes.items():
            if arc.uses_link(dead) and request not in rerouted:
                return False
        return True

    def sweep_link_failures(self) -> list[LinkFailureOutcome]:
        """Fail every fiber in turn (repairing in between) — experiment E6."""
        return [self.simulate_link_failure(LinkFailure(self.n, i)) for i in range(self.n)]

    # -- node failures -----------------------------------------------------

    def simulate_node_failure(self, failure: NodeFailure) -> NodeFailureOutcome:
        """An optical-switch outage at one node.

        Requests terminating at the node are lost by definition; transit
        requests recover iff their protection loop avoids the node.
        """
        if failure.n != self.n:
            raise ReproError(f"failure on C_{failure.n} applied to C_{self.n} design")
        v = failure.node
        terminated = recovered = unrecovered = 0
        for request, (_, working) in self.design.request_routes.items():
            if v in request:
                terminated += 1
                continue
            if v not in working.nodes()[1:-1]:
                continue  # unaffected transit-free request
            protection = working.reversed_arc()
            if v in protection.nodes()[1:-1]:
                unrecovered += 1
            else:
                recovered += 1
        return NodeFailureOutcome(
            failure=failure,
            terminated_requests=terminated,
            recovered_requests=recovered,
            unrecovered_requests=unrecovered,
        )

    # -- aggregate view -----------------------------------------------------

    @property
    def history(self) -> tuple[LinkFailureOutcome, ...]:
        return tuple(self._events)
