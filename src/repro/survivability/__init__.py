"""Failure simulation and automatic protection switching."""

from .dual import DualFailureOutcome, DualFailureReport, analyze_dual_failures
from .failures import LinkFailure, NodeFailure, all_link_failures, all_node_failures
from .restoration import (
    RestorationDimensioning,
    dimension_restoration,
    protection_vs_restoration,
)
from .metrics import SurvivabilityReport, evaluate_survivability
from .protection import (
    LinkFailureOutcome,
    NodeFailureOutcome,
    ProtectionSimulator,
    RerouteEvent,
)

__all__ = [
    "RestorationDimensioning",
    "dimension_restoration",
    "protection_vs_restoration",
    "DualFailureOutcome",
    "DualFailureReport",
    "analyze_dual_failures",
    "LinkFailure",
    "LinkFailureOutcome",
    "NodeFailure",
    "NodeFailureOutcome",
    "ProtectionSimulator",
    "RerouteEvent",
    "SurvivabilityReport",
    "all_link_failures",
    "all_node_failures",
    "evaluate_survivability",
]
