"""Shared-capacity restoration — the paper's contrast class.

Paper §1: "Two survivability schemes can be implemented: protection or
restoration.  Protection can be done by using a pre-assigned capacity
between nodes ...  On the other hand, restoration can be realized by
using any capacity available between nodes ...  Dividing the network
into independent sub-networks provides an intermediate solution."

This module quantifies the trade-off the paper only narrates, on the
ring.  Under *restoration*, working traffic is routed shortest-path and
spare capacity is pooled: when link ``f`` fails, every request crossing
``f`` reroutes the long way, loading all other links.  The minimum
pooled spare that survives every single failure is::

    spare(ℓ) = max_{f ≠ ℓ} |{requests crossing f that reroute over ℓ}|

The measured outcome on the ring is itself a finding worth stating:
pooled restoration saves (almost) no spare there — a ring has no path
diversity, every reroute goes the long way around, so the pooled spare
per link equals the working load (100% overhead, same as dedicated
protection).  Capacity-equal but slower and globally-coordinated,
restoration loses to protection on rings — the quantitative backing for
the paper's choice of protected subnetworks, with the covering keeping
each failure's blast radius at one demand per subnetwork.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rings.routing import route_request_shortest
from ..traffic.instances import Instance, all_to_all
from ..util.validation import as_int

__all__ = ["RestorationDimensioning", "dimension_restoration", "protection_vs_restoration"]


@dataclass(frozen=True)
class RestorationDimensioning:
    """Capacity plan for shortest-path routing + pooled restoration."""

    n: int
    working_load: tuple[int, ...]        # per-link working units
    spare_required: tuple[int, ...]      # per-link pooled spare units
    worst_failure_reroutes: int          # demands disturbed by the worst cut

    @property
    def total_working(self) -> int:
        return sum(self.working_load)

    @property
    def total_spare(self) -> int:
        return sum(self.spare_required)

    @property
    def total_capacity(self) -> int:
        return self.total_working + self.total_spare

    @property
    def spare_ratio(self) -> float:
        """Pooled spare relative to working capacity (< 1.0: cheaper
        than the dedicated scheme's 100%)."""
        return self.total_spare / self.total_working if self.total_working else 0.0

    def summary(self) -> str:
        return (
            f"restoration(n={self.n}): working {self.total_working}, "
            f"spare {self.total_spare} ({self.spare_ratio:.0%} overhead), "
            f"worst failure disturbs {self.worst_failure_reroutes} demands"
        )


def dimension_restoration(n: int, instance: Instance | None = None) -> RestorationDimensioning:
    """Dimension a ring for shortest-path working routes plus pooled
    single-failure restoration."""
    n = as_int(n, "n")
    inst = instance if instance is not None else all_to_all(n)
    if inst.n != n:
        raise ValueError(f"instance order {inst.n} ≠ n = {n}")

    # Working load per link under shortest-path routing.
    working = [0] * n
    arcs = {}
    for (a, b), m in inst.demand.items():
        arc = route_request_shortest(n, a, b)
        arcs[(a, b)] = (arc, m)
        for link in arc.links():
            working[link] += m

    # Failure of f: each request crossing f reroutes onto the
    # complementary arc, adding load to exactly the links it avoids.
    spare = [0] * n
    worst = 0
    for f in range(n):
        extra = [0] * n
        disturbed = 0
        for (a, b), (arc, m) in arcs.items():
            if not arc.uses_link(f):
                continue
            disturbed += m
            for link in arc.reversed_arc().links():
                extra[link] += m
        worst = max(worst, disturbed)
        for link in range(n):
            if link != f:
                spare[link] = max(spare[link], extra[link])

    return RestorationDimensioning(
        n=n,
        working_load=tuple(working),
        spare_required=tuple(spare),
        worst_failure_reroutes=worst,
    )


def protection_vs_restoration(n: int) -> dict[str, float | int]:
    """The paper's §1 comparison, quantified for All-to-All on ``C_n``.

    Returns capacity and blast-radius figures for (a) the covering-based
    protection design and (b) pooled restoration.  The covering design
    pays more capacity (100% dedicated spare) but each failure disturbs
    only one demand per subnetwork with purely local switching;
    restoration pools spare below 100% but every failure triggers a
    network-wide reroute of all crossing demands at once.
    """
    from ..core.construction import optimal_covering
    from ..wdm.design import design_ring_network

    design = design_ring_network(n)
    covering = optimal_covering(n)
    # Covering design: each subnetwork fills its working wavelength on
    # every link and reserves an equal protection wavelength.
    protection_working = n * covering.num_blocks
    protection_spare = n * covering.num_blocks

    restoration = dimension_restoration(n)
    return {
        "n": n,
        "protection_working": protection_working,
        "protection_spare": protection_spare,
        "protection_overhead": 1.0,
        "protection_reroutes_per_failure": covering.num_blocks,
        "restoration_working": restoration.total_working,
        "restoration_spare": restoration.total_spare,
        "restoration_overhead": restoration.spare_ratio,
        "restoration_reroutes_worst": restoration.worst_failure_reroutes,
        "design_wavelengths": design.plan.num_wavelengths,
    }
