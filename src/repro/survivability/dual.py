"""Dual-failure analysis: where the paper's scheme stops.

The paper's protection is designed for *single* failures; this module
quantifies what happens beyond the design point.  Under two simultaneous
fiber cuts on links ``f1 ≠ f2``:

* a request whose working arc avoids both links is unaffected;
* a request whose working arc crosses exactly one dead link loops back;
  the loop-back survives iff it avoids the *other* dead link — but the
  two arcs of a request partition the ring, so the loop-back always
  crosses the other link iff that link lies on the complementary arc:
  recovery succeeds iff both dead links lie on the working arc side;
* a request whose working arc crosses both dead links reroutes once and
  survives (the loop-back avoids both).

Additionally, two reroutes within one subnetwork can contend for the
same protection wavelength.  The analysis reports, per failure pair,
how many requests survive / are lost, and aggregates the ring-level
dual-failure survivability — the quantitative version of "dividing the
network into independent sub-networks provides an intermediate
solution".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..rings.capacity import LinkLoadLedger
from ..util.errors import ReproError
from ..wdm.design import RingDesign

__all__ = ["DualFailureOutcome", "DualFailureReport", "analyze_dual_failures"]


@dataclass(frozen=True)
class DualFailureOutcome:
    """Result of one simultaneous pair of fiber cuts."""

    links: tuple[int, int]
    unaffected: int
    recovered: int
    lost_disconnected: int     # both candidate paths hit a dead link
    lost_contention: int       # protection wavelength already occupied

    @property
    def total(self) -> int:
        return self.unaffected + self.recovered + self.lost_disconnected + self.lost_contention

    @property
    def survival_rate(self) -> float:
        return (self.unaffected + self.recovered) / self.total if self.total else 1.0


@dataclass(frozen=True)
class DualFailureReport:
    """Aggregate over all ``C(n,2)`` failure pairs."""

    n: int
    outcomes: tuple[DualFailureOutcome, ...]

    @property
    def worst_survival(self) -> float:
        return min(o.survival_rate for o in self.outcomes)

    @property
    def mean_survival(self) -> float:
        return sum(o.survival_rate for o in self.outcomes) / len(self.outcomes)

    @property
    def fully_survivable_pairs(self) -> int:
        return sum(1 for o in self.outcomes if o.survival_rate == 1.0)

    def summary(self) -> str:
        return (
            f"dual failures on C_{self.n}: mean survival "
            f"{self.mean_survival:.1%}, worst {self.worst_survival:.1%}, "
            f"{self.fully_survivable_pairs}/{len(self.outcomes)} pairs fully survive"
        )


def analyze_dual_failures(design: RingDesign) -> DualFailureReport:
    """Simulate every simultaneous pair of fiber cuts."""
    n = design.n
    if n < 4:
        raise ReproError("dual-failure analysis needs n ≥ 4")
    outcomes = []
    for f1, f2 in combinations(range(n), 2):
        outcomes.append(_simulate_pair(design, f1, f2))
    return DualFailureReport(n=n, outcomes=tuple(outcomes))


def _simulate_pair(design: RingDesign, f1: int, f2: int) -> DualFailureOutcome:
    unaffected = recovered = lost_disc = lost_cont = 0
    # One protection ledger per subnetwork, as in the single-failure case.
    ledgers = {k: LinkLoadLedger(design.n) for k in range(design.covering.num_blocks)}

    for request, (k, working) in design.request_routes.items():
        hits_working = working.uses_link(f1) + working.uses_link(f2)
        if hits_working == 0:
            unaffected += 1
            continue
        loopback = working.reversed_arc()
        if loopback.uses_link(f1) or loopback.uses_link(f2):
            # The complementary arc holds the other dead link: with one
            # cut on each side, the request is physically disconnected.
            lost_disc += 1
            continue
        try:
            ledgers[k].charge(loopback)
        except ReproError:
            lost_cont += 1
            continue
        recovered += 1

    return DualFailureOutcome(
        links=(f1, f2),
        unaffected=unaffected,
        recovered=recovered,
        lost_disconnected=lost_disc,
        lost_contention=lost_cont,
    )
