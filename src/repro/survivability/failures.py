"""Failure events for the survivability simulator.

The paper's survivability target is protection against "equipment or
link failure".  We model both: single fiber cuts (the protection scheme
guarantees full recovery) and optical-switch outages (reported, since a
node failure also kills the traffic terminating there).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.validation import check_vertex

__all__ = ["LinkFailure", "NodeFailure", "all_link_failures", "all_node_failures"]


@dataclass(frozen=True)
class LinkFailure:
    """A single fiber cut on ring link ``link`` (= {link, link+1 mod n})."""

    n: int
    link: int

    def __post_init__(self) -> None:
        check_vertex(self.link, self.n)

    @property
    def endpoints(self) -> tuple[int, int]:
        return (self.link, (self.link + 1) % self.n)

    def __repr__(self) -> str:  # pragma: no cover
        a, b = self.endpoints
        return f"LinkFailure({a}-{b})"


@dataclass(frozen=True)
class NodeFailure:
    """An optical-switch outage at ``node``: both adjacent links go dark
    and all traffic terminating at the node is lost by definition."""

    n: int
    node: int

    def __post_init__(self) -> None:
        check_vertex(self.node, self.n)

    @property
    def dead_links(self) -> tuple[int, int]:
        """The two ring links incident to the failed node."""
        return ((self.node - 1) % self.n, self.node)

    def __repr__(self) -> str:  # pragma: no cover
        return f"NodeFailure({self.node})"


def all_link_failures(n: int) -> list[LinkFailure]:
    """The single-link failure sweep used by experiment E6."""
    return [LinkFailure(n, i) for i in range(n)]


def all_node_failures(n: int) -> list[NodeFailure]:
    return [NodeFailure(n, v) for v in range(n)]
