"""ADM counting and the network cost model.

The paper: "The cost is a very complex function depending on the size
of the ADM (Add and Drop Multiplexer) in each node, the number of
wavelengths (associated to the subnetworks) in transit in each optical
node and a cost of regeneration and amplification of the signal.  When
the physical graph is a ring that corresponds to minimize the number of
subgraphs I_k in the covering."

We make that function concrete.  For a covering ``{I_k}`` of a ring of
order ``n``:

* each node of ``I_k`` terminates its wavelength there → one **ADM**
  per (block, member-node): total ``Σ_k |I_k|``;
* each non-member node is crossed in transit → ``Σ_k (n − |I_k|)``
  **transit ports**;
* each subnetwork consumes one working+one protection **wavelength**;
* amplification/regeneration scales with total lit fiber: ``2n`` per
  subnetwork (both wavelengths tile the ring).

With per-unit prices this yields a linear cost whose block-count
coefficient dominates for any realistic price vector — the reproduction
of the paper's claim that ring cost minimisation reduces to minimising
the number of cycles.  The Eilam–Moran–Zaks-style objective (paper
refs [3], [4]) of minimising the *sum of ring sizes* is exactly the
ADM term alone; it is the registered ``min_total_size``
:mod:`repro.core.objective` entry (exact bound:
:func:`repro.core.bounds.total_size_lower_bound`) and the benchmarks
compare both objectives under this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.covering import Covering

__all__ = ["CostModel", "CostBreakdown", "DEFAULT_COST_MODEL", "evaluate_cost"]


@dataclass(frozen=True)
class CostModel:
    """Per-unit equipment prices (arbitrary currency units).

    Defaults follow the qualitative ordering of late-90s WDM metro
    gear: ADMs dominate, optical transit is cheap, wavelengths carry a
    licensing/line-system cost, amplification scales with lit fiber.
    """

    adm_port: float = 10.0
    transit_port: float = 1.0
    wavelength: float = 25.0
    amplification_per_link: float = 0.5

    def __post_init__(self) -> None:
        for field_name in ("adm_port", "transit_port", "wavelength", "amplification_per_link"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"cost coefficient {field_name} must be ≥ 0")


DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class CostBreakdown:
    """Itemised cost of one covering under a :class:`CostModel`."""

    n: int
    num_subnetworks: int
    adm_ports: int
    transit_ports: int
    wavelengths: int
    lit_links: int
    adm_cost: float
    transit_cost: float
    wavelength_cost: float
    amplification_cost: float

    @property
    def total(self) -> float:
        return self.adm_cost + self.transit_cost + self.wavelength_cost + self.amplification_cost

    def as_row(self) -> tuple:
        return (
            self.num_subnetworks,
            self.adm_ports,
            self.transit_ports,
            self.wavelengths,
            round(self.total, 2),
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"cost(n={self.n}): total={self.total:.1f} "
            f"[ADM {self.adm_cost:.1f}, transit {self.transit_cost:.1f}, "
            f"λ {self.wavelength_cost:.1f}, amp {self.amplification_cost:.1f}]"
        )


def evaluate_cost(covering: Covering, model: CostModel = DEFAULT_COST_MODEL) -> CostBreakdown:
    """Cost of operating ``covering`` as independent protected
    subnetworks on the ring, itemised per the paper's cost discussion."""
    n = covering.n
    blocks = covering.num_blocks
    adm_ports = covering.total_slots
    transit_ports = n * blocks - adm_ports
    wavelengths = 2 * blocks          # working + dedicated protection
    lit_links = 2 * n * blocks        # both wavelengths tile the ring

    return CostBreakdown(
        n=n,
        num_subnetworks=blocks,
        adm_ports=adm_ports,
        transit_ports=transit_ports,
        wavelengths=wavelengths,
        lit_links=lit_links,
        adm_cost=model.adm_port * adm_ports,
        transit_cost=model.transit_port * transit_ports,
        wavelength_cost=model.wavelength * wavelengths,
        amplification_cost=model.amplification_per_link * lit_links,
    )
