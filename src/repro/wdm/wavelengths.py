"""Wavelength assignment for DRC coverings.

The paper associates one wavelength with each subnetwork — "in fact
two: one for the normal traffic and one for the spare one".  On a ring,
every DRC cycle's routing saturates all links of its working
wavelength, so subnetworks can never share a wavelength and the
assignment is trivially one (working, protection) pair per block.  The
module still models the assignment explicitly: the cost model and the
survivability simulator operate per-wavelength, and non-ring extensions
reuse the same interface with genuine sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..core.covering import Covering
from ..core.drc import route_block
from ..rings.routing import RingRouting
from ..util.errors import RoutingError

__all__ = ["WavelengthPlan", "assign_wavelengths"]


@dataclass(frozen=True)
class WavelengthPlan:
    """A wavelength assignment for a DRC covering on ``C_n``.

    Wavelength ``2k`` carries subnetwork ``k``'s working traffic;
    wavelength ``2k+1`` is its dedicated protection copy (the paper's
    working/spare pair).
    """

    covering: Covering

    @property
    def n(self) -> int:
        return self.covering.n

    @property
    def num_subnetworks(self) -> int:
        return self.covering.num_blocks

    @property
    def num_wavelengths(self) -> int:
        """Total wavelengths consumed: 2 per subnetwork (working+spare)."""
        return 2 * self.covering.num_blocks

    @property
    def num_working_wavelengths(self) -> int:
        return self.covering.num_blocks

    def working_wavelength(self, block_index: int) -> int:
        self._check_index(block_index)
        return 2 * block_index

    def protection_wavelength(self, block_index: int) -> int:
        self._check_index(block_index)
        return 2 * block_index + 1

    @cached_property
    def routings(self) -> tuple[RingRouting, ...]:
        """Per-subnetwork edge-disjoint routings (the DRC witnesses)."""
        return tuple(route_block(self.n, blk) for blk in self.covering.blocks)

    def routing(self, block_index: int) -> RingRouting:
        self._check_index(block_index)
        return self.routings[block_index]

    @cached_property
    def fiber_utilisation(self) -> float:
        """Fraction of working-wavelength link-slots actually used.

        On a ring this is exactly 1.0 for every DRC covering (each
        subnetwork's routes tile the ring) — the quantitative content of
        the paper's "use half of the capacity for the demands" remark.
        """
        used = sum(len(r.used_links) for r in self.routings)
        return used / (self.n * self.num_working_wavelengths)

    def wavelengths_through_node(self, v: int) -> int:
        """Wavelength pairs whose cycle passes *through or ends at* node
        ``v`` — every wavelength traverses every node on a ring, since
        DRC routings tile all links."""
        if not 0 <= v < self.n:
            raise ValueError(f"node {v} outside ring of order {self.n}")
        return self.num_subnetworks

    def _check_index(self, block_index: int) -> None:
        if not 0 <= block_index < self.covering.num_blocks:
            raise IndexError(
                f"subnetwork index {block_index} out of range "
                f"(covering has {self.covering.num_blocks})"
            )


def assign_wavelengths(covering: Covering) -> WavelengthPlan:
    """Assign (working, protection) wavelength pairs to each subnetwork.

    Raises :class:`~repro.util.errors.RoutingError` when the covering is
    not DRC-feasible — a wavelength plan requires an actual routing.
    """
    if not covering.is_drc_feasible():
        bad = covering.non_convex_blocks[0]
        raise RoutingError(
            f"covering is not DRC-feasible: block {bad.vertices!r} has no "
            "edge-disjoint routing"
        )
    return WavelengthPlan(covering)
