"""End-to-end WDM ring design: the paper's workflow as one call.

``design_ring_network(n)`` performs the full survivable-network design
the paper describes: model the physical ring, take the All-to-All
instance, build the optimal DRC-covering (Theorems 1/2), assign
wavelength pairs, route every request, and cost the result.  It returns
a :class:`RingDesign` bundling every artifact, which the examples and
the survivability simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..core.construction import fast_covering, optimal_covering
from ..core.covering import Covering
from ..core.verify import assert_valid_covering
from ..rings.routing import Arc
from ..rings.topology import RingNetwork
from ..traffic.instances import Instance, all_to_all
from ..util import circular
from .adm import CostBreakdown, CostModel, DEFAULT_COST_MODEL, evaluate_cost
from .wavelengths import WavelengthPlan, assign_wavelengths

__all__ = ["RingDesign", "design_ring_network"]


@dataclass(frozen=True)
class RingDesign:
    """A complete survivable WDM ring design."""

    network: RingNetwork
    instance: Instance
    covering: Covering
    plan: WavelengthPlan
    cost: CostBreakdown

    @property
    def n(self) -> int:
        return self.network.n

    @cached_property
    def request_routes(self) -> dict[tuple[int, int], tuple[int, Arc]]:
        """Request → (subnetwork index, working arc).

        When the covering has excess (even ``n``), a request may belong
        to several subnetworks; the working route uses the first and the
        duplicates provide extra spare capacity.
        """
        routes: dict[tuple[int, int], tuple[int, Arc]] = {}
        for k, routing in enumerate(self.plan.routings):
            for req in routing.requests:
                if req not in routes:
                    routes[req] = (k, routing.arc_for(req))
        return routes

    def route_of(self, a: int, b: int) -> tuple[int, Arc]:
        """The (subnetwork, arc) serving request ``{a, b}``."""
        key = circular.chord(a, b)
        try:
            return self.request_routes[key]
        except KeyError:
            raise KeyError(f"request {key} is not part of the instance") from None

    def summary(self) -> str:
        hist = ", ".join(f"{c}×C{s}" for s, c in self.covering.size_histogram.items())
        return (
            f"Ring n={self.n}: {self.covering.num_blocks} protected subnetworks "
            f"[{hist}], {self.plan.num_wavelengths} wavelengths, "
            f"total cost {self.cost.total:.1f}"
        )


def design_ring_network(
    n: int,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    optimal: bool = True,
    verify: bool = True,
) -> RingDesign:
    """Design a survivable WDM network for an ``n``-node ring carrying
    All-to-All traffic.

    ``optimal=False`` uses the always-polynomial construction (slightly
    more cycles for even ``n``); ``verify`` re-validates the covering
    through the independent checker before committing to it.
    """
    network = RingNetwork(n)
    instance = all_to_all(n)
    covering = optimal_covering(n) if optimal else fast_covering(n)
    if verify:
        assert_valid_covering(covering, instance)
    plan = assign_wavelengths(covering)
    cost = evaluate_cost(covering, cost_model)
    return RingDesign(
        network=network,
        instance=instance,
        covering=covering,
        plan=plan,
        cost=cost,
    )
