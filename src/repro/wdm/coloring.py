"""Wavelength assignment by conflict-graph coloring (non-ring case).

On the ring, every DRC subnetwork saturates all links, so subnetworks
can never share a wavelength and the plan is trivial (one pair each —
:mod:`repro.wdm.wavelengths`).  On the paper's future-work topologies
(trees of rings, grids, tori) routings do *not* saturate the network,
so subnetworks whose routes are link-disjoint can share a wavelength.

The assignment problem is graph coloring of the conflict graph (blocks
adjacent iff their routings share a fiber).  We build the conflict
graph from actual routings and color it with networkx's
strategies, reporting the wavelength count — the natural "how much does
a mesh topology save" metric for experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.blocks import CycleBlock
from ..extensions.topologies import drc_route_on_graph
from ..rings.topology import PhysicalNetwork
from ..util.errors import RoutingError

__all__ = ["GraphWavelengthPlan", "color_wavelengths"]


def _edge_key(u, v) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class GraphWavelengthPlan:
    """Wavelength assignment for blocks routed on a general topology."""

    network_name: str
    block_wavelengths: tuple[int, ...]    # wavelength index per block
    num_wavelengths: int
    conflict_density: float               # conflict-graph edge density

    def wavelength_of(self, block_index: int) -> int:
        return self.block_wavelengths[block_index]

    def summary(self) -> str:
        return (
            f"{self.network_name}: {len(self.block_wavelengths)} subnetworks on "
            f"{self.num_wavelengths} wavelengths "
            f"(conflict density {self.conflict_density:.0%})"
        )


def color_wavelengths(
    network: PhysicalNetwork,
    blocks: list[CycleBlock],
    *,
    strategy: str = "saturation_largest_first",
) -> GraphWavelengthPlan:
    """Route every block and color the conflict graph.

    Raises :class:`RoutingError` if any block is not DRC-routable on the
    network (wavelengths only make sense for routable subnetworks).
    """
    link_sets: list[frozenset] = []
    for blk in blocks:
        routing = drc_route_on_graph(network, blk)
        if routing is None:
            raise RoutingError(
                f"block {blk.vertices!r} is not DRC-routable on {network.name!r}"
            )
        links = frozenset(
            _edge_key(u, v)
            for path in routing.values()
            for u, v in zip(path, path[1:])
        )
        link_sets.append(links)

    conflict = nx.Graph()
    conflict.add_nodes_from(range(len(blocks)))
    for i in range(len(blocks)):
        for j in range(i + 1, len(blocks)):
            if link_sets[i] & link_sets[j]:
                conflict.add_edge(i, j)

    coloring = nx.coloring.greedy_color(conflict, strategy=strategy)
    assignment = tuple(coloring[i] for i in range(len(blocks)))
    possible = len(blocks) * (len(blocks) - 1) / 2
    density = conflict.number_of_edges() / possible if possible else 0.0
    return GraphWavelengthPlan(
        network_name=network.name,
        block_wavelengths=assignment,
        num_wavelengths=(max(assignment) + 1) if assignment else 0,
        conflict_density=density,
    )
