"""Optical reach and regenerator placement.

The paper's cost function includes "a cost of regeneration and
amplification of the signal".  The amplification term is linear in lit
fiber (handled in :mod:`repro.wdm.adm`); regeneration is the nonlinear
part: a lightpath whose transparent length exceeds the optical *reach*
needs 3R regenerators at intermediate nodes.

For a DRC covering each request travels its working arc; under failure
it travels the loop-back arc (length ``n − working``).  A conservative
design places regenerators so that *both* paths respect the reach —
otherwise protection switching could restore connectivity but not
signal quality.  This module counts and places those regenerators,
extending the E4 cost model with a reach-dependent term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rings.routing import Arc
from ..util.validation import check_positive
from .design import RingDesign

__all__ = ["RegenerationPlan", "plan_regeneration", "regenerators_for_arc"]


def regenerators_for_arc(arc: Arc, reach: int) -> list[int]:
    """Regenerator nodes for one lightpath of transparent reach
    ``reach`` (in hops): every ``reach`` hops along the arc, excluding
    the terminating endpoint.  Returns the node ids, in path order."""
    check_positive(reach, "reach")
    sites: list[int] = []
    travelled = 0
    nodes = arc.nodes()
    for node in nodes[1:-1]:
        travelled += 1
        if travelled == reach:
            sites.append(node)
            travelled = 0
    return sites


@dataclass(frozen=True)
class RegenerationPlan:
    """Regenerator placement for a full ring design at a given reach."""

    n: int
    reach: int
    working_regens: dict[tuple[int, int], tuple[int, ...]]
    protection_regens: dict[tuple[int, int], tuple[int, ...]]
    regen_unit_cost: float

    @property
    def num_working_regens(self) -> int:
        return sum(len(sites) for sites in self.working_regens.values())

    @property
    def num_protection_regens(self) -> int:
        return sum(len(sites) for sites in self.protection_regens.values())

    @property
    def total_regens(self) -> int:
        return self.num_working_regens + self.num_protection_regens

    @property
    def total_cost(self) -> float:
        return self.regen_unit_cost * self.total_regens

    @property
    def transparent(self) -> bool:
        """True when the reach covers every path — no regenerators."""
        return self.total_regens == 0

    def busiest_sites(self, top: int = 3) -> list[tuple[int, int]]:
        """Nodes hosting the most regenerators, as (node, count)."""
        load: dict[int, int] = {}
        for sites in list(self.working_regens.values()) + list(
            self.protection_regens.values()
        ):
            for node in sites:
                load[node] = load.get(node, 0) + 1
        ranked = sorted(load.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def summary(self) -> str:
        return (
            f"regeneration(n={self.n}, reach={self.reach}): "
            f"{self.num_working_regens} working + "
            f"{self.num_protection_regens} protection regens, "
            f"cost {self.total_cost:.1f}"
        )


def plan_regeneration(
    design: RingDesign, *, reach: int, regen_unit_cost: float = 40.0
) -> RegenerationPlan:
    """Place regenerators for every request's working arc *and* its
    protection loop-back, so recovery preserves signal quality."""
    check_positive(reach, "reach")
    if regen_unit_cost < 0:
        raise ValueError(f"regen_unit_cost must be ≥ 0, got {regen_unit_cost}")
    working: dict[tuple[int, int], tuple[int, ...]] = {}
    protection: dict[tuple[int, int], tuple[int, ...]] = {}
    for request, (_, arc) in design.request_routes.items():
        working[request] = tuple(regenerators_for_arc(arc, reach))
        protection[request] = tuple(regenerators_for_arc(arc.reversed_arc(), reach))
    return RegenerationPlan(
        n=design.n,
        reach=reach,
        working_regens=working,
        protection_regens=protection,
        regen_unit_cost=regen_unit_cost,
    )
