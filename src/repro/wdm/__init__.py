"""WDM optical layer: wavelength plans, ADM accounting, cost model."""

from .adm import DEFAULT_COST_MODEL, CostBreakdown, CostModel, evaluate_cost
from .coloring import GraphWavelengthPlan, color_wavelengths
from .design import RingDesign, design_ring_network
from .regeneration import RegenerationPlan, plan_regeneration, regenerators_for_arc
from .wavelengths import WavelengthPlan, assign_wavelengths

__all__ = [
    "GraphWavelengthPlan",
    "color_wavelengths",
    "RegenerationPlan",
    "plan_regeneration",
    "regenerators_for_arc",
    "CostBreakdown",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "RingDesign",
    "WavelengthPlan",
    "assign_wavelengths",
    "design_ring_network",
    "evaluate_cost",
]
