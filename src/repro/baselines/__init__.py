"""Baselines: greedy DRC covering (block-count and ring-size-sum
flavours) and non-DRC covers.

The ring-size-sum *objective* itself graduated into the core:
``min_total_size`` is a registered :mod:`repro.core.objective` entry,
its exact All-to-All bound lives in
:func:`repro.core.bounds.total_size_lower_bound`, and a covering's
value is just ``covering.total_slots``.  Only the [3]/[4]-style greedy
baseline remains here (:func:`size_greedy_covering`).
"""

from .greedy import greedy_drc_covering, size_greedy_covering
from .nondrc import (
    cycle_cover_lower_bound,
    greedy_cycle_cover,
    greedy_triangle_cover,
    triangle_cover_gap,
    triangle_covering_number,
)

__all__ = [
    "cycle_cover_lower_bound",
    "greedy_cycle_cover",
    "greedy_drc_covering",
    "greedy_triangle_cover",
    "size_greedy_covering",
    "triangle_cover_gap",
    "triangle_covering_number",
]
