"""Baselines: greedy DRC covering, non-DRC covers, ring-size objective."""

from .greedy import greedy_drc_covering
from .nondrc import (
    cycle_cover_lower_bound,
    greedy_cycle_cover,
    greedy_triangle_cover,
    triangle_cover_gap,
    triangle_covering_number,
)
from .ring_sizes import min_total_ring_size, size_greedy_covering, total_ring_size

__all__ = [
    "cycle_cover_lower_bound",
    "greedy_cycle_cover",
    "greedy_drc_covering",
    "greedy_triangle_cover",
    "min_total_ring_size",
    "size_greedy_covering",
    "total_ring_size",
    "triangle_cover_gap",
    "triangle_covering_number",
]
