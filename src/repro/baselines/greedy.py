"""Greedy DRC-covering baseline.

A natural heuristic a practitioner would try before the paper's
constructions: repeatedly add the convex (DRC-routable) cycle that
covers the most still-uncovered requests, breaking ties toward lower
excess.  The benchmarks compare its cycle count against ρ(n) to show
what the closed-form constructions buy.

The selection loop itself is the shared greedy kernel of
:class:`repro.core.engine.SolverEngine` (the same pass that seeds the
branch-and-bound incumbents), run over the *tight* block pool; this
module keeps the historical signature and error contract.
"""

from __future__ import annotations

from ..core.covering import Covering
from ..core.engine import SolverEngine
from ..traffic.instances import Instance, all_to_all
from ..util.errors import ConstructionError

__all__ = ["greedy_drc_covering"]


def greedy_drc_covering(
    n: int,
    instance: Instance | None = None,
    *,
    max_size: int = 4,
) -> Covering:
    """Greedy max-coverage DRC covering of ``instance`` (default
    All-to-All) by tight cycles of length ≤ ``max_size``.

    Deterministic; runs in ``O(iterations × |blocks|)``.  Not optimal —
    that is the point of the baseline.
    """
    inst = instance if instance is not None else all_to_all(n)
    if inst.n != n:
        raise ConstructionError(f"instance order {inst.n} ≠ n = {n}")

    engine = SolverEngine(n, max_size=max_size)
    chosen, leftover = engine.greedy_cover_indices(dict(inst.demand), pool="tight")
    if leftover:
        raise ConstructionError(
            f"greedy covering stuck with {leftover} requests left "
            f"(n={n}, max_size={max_size})"
        )
    table = engine.tight_table
    return Covering(n, tuple(table.blocks[i] for i in chosen))
