"""Greedy DRC-covering baselines.

A natural heuristic a practitioner would try before the paper's
constructions: repeatedly add the convex (DRC-routable) cycle that
covers the most still-uncovered requests, breaking ties toward lower
excess.  The benchmarks compare its cycle count against ρ(n) to show
what the closed-form constructions buy.

The selection loop itself is the greedy kernel behind the
:mod:`repro.api` heuristic backend (the same pass that seeds the
branch-and-bound incumbents), pinned to the *tight* block pool with the
local-search improver off; this module keeps the historical signature
and error contract over an ``api.solve`` call.

:func:`size_greedy_covering` is the [3]/[4]-flavoured sibling for the
``min_total_size`` objective (ring-size sum / ADM count — now a
first-class :mod:`repro.core.objective` entry with its exact
certificate in :func:`repro.core.bounds.total_size_lower_bound`):
greedy by newly-covered-per-vertex ratio, so triangles are preferred
when equally useful.
"""

from __future__ import annotations

from ..core.blocks import CycleBlock
from ..core.covering import Covering
from ..core.engine import enumerate_tight_blocks
from ..traffic.instances import Instance
from ..util import circular
from ..util.errors import ConstructionError, SolverError

__all__ = ["greedy_drc_covering", "size_greedy_covering"]


def greedy_drc_covering(
    n: int,
    instance: Instance | None = None,
    *,
    max_size: int = 4,
) -> Covering:
    """Greedy max-coverage DRC covering of ``instance`` (default
    All-to-All) by tight cycles of length ≤ ``max_size``.

    Deterministic; runs in ``O(iterations × |blocks|)``.  Not optimal —
    that is the point of the baseline.
    """
    from ..api import CoverSpec, solve

    if instance is not None and instance.n != n:
        raise ConstructionError(f"instance order {instance.n} ≠ n = {n}")
    if instance is None:
        spec = CoverSpec.for_ring(
            n, max_size=max_size, backend="heuristic",
            require_optimal=False, pool="tight", improve=False,
        )
    else:
        spec = CoverSpec.from_instance(
            instance, max_size=max_size, backend="heuristic",
            require_optimal=False, pool="tight", improve=False,
        )
    try:
        return solve(spec).covering
    except SolverError as exc:
        raise ConstructionError(str(exc)) from exc


def size_greedy_covering(n: int) -> Covering:
    """A [3]/[4]-flavoured heuristic: greedily add the tight DRC cycle
    with the best newly-covered-per-vertex ratio (so triangles are
    preferred when equally useful), minimising ADM count rather than
    ring count — the baseline for the ``min_total_size`` objective."""
    if n < 3:
        raise ConstructionError(f"n ≥ 3 required, got {n}")
    uncovered: set[tuple[int, int]] = set(circular.all_chords(n))
    pool = [(blk, blk.edges()) for blk in enumerate_tight_blocks(n)]
    chosen: list[CycleBlock] = []
    while uncovered:
        best: tuple[float, int, CycleBlock] | None = None
        for blk, edges in pool:
            gain = sum(1 for e in edges if e in uncovered)
            if gain == 0:
                continue
            ratio = gain / blk.size
            key = (ratio, gain)
            if best is None or key > (best[0], best[1]):
                best = (ratio, gain, blk)
        if best is None:
            raise ConstructionError(f"size-greedy covering stuck at n={n}")
        blk = best[2]
        chosen.append(blk)
        uncovered.difference_update(blk.edges())
    return Covering(n, tuple(chosen))
