"""Greedy DRC-covering baseline.

A natural heuristic a practitioner would try before the paper's
constructions: repeatedly add the convex (DRC-routable) cycle that
covers the most still-uncovered requests, breaking ties toward lower
excess.  The benchmarks compare its cycle count against ρ(n) to show
what the closed-form constructions buy.

The selection loop itself is the greedy kernel behind the
:mod:`repro.api` heuristic backend (the same pass that seeds the
branch-and-bound incumbents), pinned to the *tight* block pool with the
local-search improver off; this module keeps the historical signature
and error contract over an ``api.solve`` call.
"""

from __future__ import annotations

from ..core.covering import Covering
from ..traffic.instances import Instance
from ..util.errors import ConstructionError, SolverError

__all__ = ["greedy_drc_covering"]


def greedy_drc_covering(
    n: int,
    instance: Instance | None = None,
    *,
    max_size: int = 4,
) -> Covering:
    """Greedy max-coverage DRC covering of ``instance`` (default
    All-to-All) by tight cycles of length ≤ ``max_size``.

    Deterministic; runs in ``O(iterations × |blocks|)``.  Not optimal —
    that is the point of the baseline.
    """
    from ..api import CoverSpec, solve

    if instance is not None and instance.n != n:
        raise ConstructionError(f"instance order {instance.n} ≠ n = {n}")
    if instance is None:
        spec = CoverSpec.for_ring(
            n, max_size=max_size, backend="heuristic",
            require_optimal=False, pool="tight", improve=False,
        )
    else:
        spec = CoverSpec.from_instance(
            instance, max_size=max_size, backend="heuristic",
            require_optimal=False, pool="tight", improve=False,
        )
    try:
        return solve(spec).covering
    except SolverError as exc:
        raise ConstructionError(str(exc)) from exc
