"""Greedy DRC-covering baseline.

A natural heuristic a practitioner would try before the paper's
constructions: repeatedly add the convex (DRC-routable) cycle that
covers the most still-uncovered requests, breaking ties toward lower
excess.  The benchmarks compare its cycle count against ρ(n) to show
what the closed-form constructions buy.
"""

from __future__ import annotations

from ..core.blocks import CycleBlock
from ..core.covering import Covering
from ..core.solver import enumerate_tight_blocks
from ..traffic.instances import Instance, all_to_all
from ..util.errors import ConstructionError

__all__ = ["greedy_drc_covering"]


def greedy_drc_covering(
    n: int,
    instance: Instance | None = None,
    *,
    max_size: int = 4,
) -> Covering:
    """Greedy max-coverage DRC covering of ``instance`` (default
    All-to-All) by tight cycles of length ≤ ``max_size``.

    Deterministic; runs in ``O(iterations × |blocks|)``.  Not optimal —
    that is the point of the baseline.
    """
    inst = instance if instance is not None else all_to_all(n)
    if inst.n != n:
        raise ConstructionError(f"instance order {inst.n} ≠ n = {n}")

    # Residual demand per chord (multiset semantics for λ > 1).
    residual: dict[tuple[int, int], int] = {
        e: m for e, m in inst.demand.items() if m > 0
    }
    pool: tuple[CycleBlock, ...] = enumerate_tight_blocks(n, max_size)
    pool_edges: list[tuple[CycleBlock, tuple[tuple[int, int], ...]]] = [
        (blk, blk.edges()) for blk in pool
    ]

    chosen: list[CycleBlock] = []
    guard = 4 * (sum(residual.values()) + 1)
    while residual:
        best: tuple[int, int, CycleBlock] | None = None  # (gain, -waste, block)
        for blk, edges in pool_edges:
            gain = sum(1 for e in edges if residual.get(e, 0) > 0)
            if gain == 0:
                continue
            waste = len(edges) - gain
            key = (gain, -waste)
            if best is None or key > (best[0], best[1]):
                best = (gain, -waste, blk)
        if best is None:
            raise ConstructionError(
                f"greedy covering stuck with {len(residual)} requests left "
                f"(n={n}, max_size={max_size})"
            )
        blk = best[2]
        chosen.append(blk)
        for e in blk.edges():
            if e in residual:
                residual[e] -= 1
                if residual[e] == 0:
                    del residual[e]
        guard -= 1
        if guard <= 0:  # pragma: no cover - defensive
            raise ConstructionError("greedy covering failed to terminate")

    return Covering(n, tuple(chosen))
