"""The ring-size-sum objective (paper refs [3], [4]).

Eilam–Moran–Zaks (DISC 2000) and Gerstel–Lin–Sasaki (INFOCOM 1998) use
the same ring-survivability conditions but minimise the *sum of the
number of vertices of the rings* — the total ADM count — instead of the
number of rings.  This module provides:

* the exact lower bound for that objective on All-to-All ring traffic:
  ``Σ|I_k| = covered slots ≥ |E(K_n)| + p·[n even]`` (every vertex of
  even-order rings has odd logical degree, forcing ≥ 1 extra slot per
  vertex, i.e. ≥ p extra edge coverings);
* a size-greedy heuristic (prefer triangles) representing the
  [3]/[4]-style approach;
* the observation — checked by experiment E4 — that the paper's
  Theorem 1/2 coverings *simultaneously* attain this ADM optimum, so on
  rings the two objectives do not conflict.
"""

from __future__ import annotations

from ..core.blocks import CycleBlock
from ..core.covering import Covering
from ..core.engine import enumerate_tight_blocks
from ..util import circular
from ..util.errors import ConstructionError

__all__ = ["min_total_ring_size", "size_greedy_covering", "total_ring_size"]


def min_total_ring_size(n: int) -> int:
    """Minimum achievable ``Σ_k |I_k|`` over DRC-coverings of ``K_n``.

    ``Σ|I_k|`` equals total covered slots = ``|E| + excess``.  Odd
    ``n``: exact decompositions exist, so the minimum is ``|E|``.  Even
    ``n``: each vertex has odd logical degree ``n−1`` but even degree in
    any union of cycles, so each vertex carries ≥ 1 surplus edge-end:
    excess ≥ n/2, attained by the Theorem 2 coverings (``n ≥ 6``).
    """
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    edges = circular.n_chords(n)
    if n % 2 == 1:
        return edges
    return edges + n // 2


def total_ring_size(covering: Covering) -> int:
    """The [3]/[4] objective value of a covering: ``Σ_k |I_k|``."""
    return covering.total_slots


def size_greedy_covering(n: int) -> Covering:
    """A [3]/[4]-flavoured heuristic: greedily add the tight DRC cycle
    with the best newly-covered-per-vertex ratio (so triangles are
    preferred when equally useful), minimising ADM count rather than
    ring count."""
    if n < 3:
        raise ConstructionError(f"n ≥ 3 required, got {n}")
    uncovered: set[tuple[int, int]] = set(circular.all_chords(n))
    pool = [(blk, blk.edges()) for blk in enumerate_tight_blocks(n)]
    chosen: list[CycleBlock] = []
    while uncovered:
        best: tuple[float, int, CycleBlock] | None = None
        for blk, edges in pool:
            gain = sum(1 for e in edges if e in uncovered)
            if gain == 0:
                continue
            ratio = gain / blk.size
            key = (ratio, gain)
            if best is None or key > (best[0], best[1]):
                best = (ratio, gain, blk)
        if best is None:
            raise ConstructionError(f"size-greedy covering stuck at n={n}")
        blk = best[2]
        chosen.append(blk)
        uncovered.difference_update(blk.edges())
    return Covering(n, tuple(chosen))
