"""Cycle coverings *without* the disjoint-routing constraint.

The paper situates its problem against classical covering designs: the
minimum number of triangles covering ``K_n`` is ``⌈n/3·⌈(n−1)/2⌉⌉``
(refs [6, 7]) and C4-coverings were determined in [2].  Dropping the
DRC allows non-convex cycles, so fewer cycles suffice; experiment E5
quantifies the "price of routability" ρ(n) − cover(n).

We provide the cited closed form plus greedy constructions achieving or
approaching it (greedy is the honest reproduction: the exact designs of
[6, 7] are full covering-design theory, out of the note's scope).
"""

from __future__ import annotations

from itertools import combinations

from ..core.blocks import CycleBlock
from ..core.covering import Covering
from ..core.formulas import cycle_cover_lower_bound, triangle_covering_number
from ..util import circular
from ..util.errors import ConstructionError

__all__ = [
    "greedy_triangle_cover",
    "greedy_cycle_cover",
    "triangle_cover_gap",
    "triangle_covering_number",
    "cycle_cover_lower_bound",
]


def greedy_triangle_cover(n: int) -> list[CycleBlock]:
    """Greedy covering of ``K_n``'s edges by arbitrary triangles (no DRC).

    Picks the triangle covering the most uncovered edges; for covering
    by triples greedy achieves the Schönheim bound or lands within a few
    blocks of it, which suffices for the E5 comparison.
    """
    if n < 3:
        raise ConstructionError(f"n ≥ 3 required, got {n}")
    uncovered: set[tuple[int, int]] = set(circular.all_chords(n))
    chosen: list[CycleBlock] = []
    while uncovered:
        # Seed with an uncovered edge so progress is guaranteed, then
        # choose the completing vertex covering the most new edges.
        a, b = min(uncovered)
        best_c = -1
        best_gain = -1
        for c in range(n):
            if c in (a, b):
                continue
            gain = 1 + ((min(a, c), max(a, c)) in uncovered) + (
                (min(b, c), max(b, c)) in uncovered
            )
            if gain > best_gain:
                best_gain = gain
                best_c = c
        tri = CycleBlock((a, b, best_c))
        chosen.append(tri)
        uncovered.difference_update(tri.edges())
    return chosen


def greedy_cycle_cover(n: int, max_size: int = 4) -> list[CycleBlock]:
    """Greedy covering of ``K_n`` by arbitrary cycles of length ≤
    ``max_size`` (no DRC): any vertex tuple is admissible, so each new
    block is grown to maximise newly covered edges."""
    if n < 3:
        raise ConstructionError(f"n ≥ 3 required, got {n}")
    if max_size < 3:
        raise ConstructionError(f"cycles need ≥ 3 vertices, got max_size={max_size}")
    uncovered: set[tuple[int, int]] = set(circular.all_chords(n))
    chosen: list[CycleBlock] = []
    while uncovered:
        a, b = min(uncovered)
        best_block: CycleBlock | None = None
        best_gain = -1
        others = [v for v in range(n) if v not in (a, b)]
        # Close {a,b} into a C3 or C4 choosing companions greedily; the
        # candidate set is quadratic, which keeps this exact-ish yet fast.
        for c in others:
            tri = CycleBlock((a, b, c))
            gain = sum(1 for e in tri.edges() if e in uncovered)
            if gain > best_gain:
                best_gain, best_block = gain, tri
        if max_size >= 4:
            for c, d in combinations(others, 2):
                quad = CycleBlock((a, b, c, d))
                gain = sum(1 for e in quad.edges() if e in uncovered)
                if gain > best_gain:
                    best_gain, best_block = gain, quad
        assert best_block is not None
        chosen.append(best_block)
        uncovered.difference_update(best_block.edges())
    return chosen


def triangle_cover_gap(n: int) -> int:
    """Greedy triangle-cover size minus the cited closed form — how far
    the reproduction's greedy is from the design-theoretic optimum."""
    return len(greedy_triangle_cover(n)) - triangle_covering_number(n)


def as_covering(n: int, blocks: list[CycleBlock]) -> Covering:
    """Wrap non-DRC blocks in a :class:`Covering` for shared accounting
    (the covering will generally *fail* ``is_drc_feasible`` — that's the
    point of the baseline)."""
    return Covering(n, tuple(blocks))
