"""Unified incremental solver engine for DRC cycle coverings.

Engine architecture
-------------------
Every exact solver in the repo — tight exact decomposition (the pole
completion step), minimum covering of ``K_n`` (the ρ(n) certifier), and
minimum covering of an arbitrary instance (the λK_n certifier) — used
to carry its own copy of the same scaffolding: a sorted chord list, a
chord → bit index map, per-chord candidate-block lists, and a counting
lower bound.  :class:`SolverEngine` owns that scaffolding once:

* **Edge space** (:func:`edge_space`): the sorted chords of ``K_n``,
  their bit indices, ring distances, and the full-coverage bitmask.
  Memoized per ring size.
* **Block tables** (:func:`convex_block_table`,
  :func:`tight_block_table`): candidate pools with precomputed edge
  bitmasks, bit lists, per-block coverage masses (total chord distance
  — the quantity the DRC geometry caps at ``n`` per block), per-chord
  candidate indices pre-sorted by coverage mass, and the *bound
  fragments* below.  Memoized per ``(n, max_size)`` so batched sweeps
  (:func:`solve_many`) build each table once per process.
* **Packing lower bound** — the seed pruned with the counting bound
  ``⌈Σ_uncovered dist(e) / n⌉`` alone.  The engine's bound is the max
  of two strictly-dominating relaxations, both O(1) per node thanks to
  incrementally maintained residual totals:

  - the *per-chord fractional bound* ``⌈Σ dist(e)·(L/mm(e)) / L⌉``,
    where ``mm(e)`` is the largest in-demand coverage mass of any
    candidate block containing chord ``e`` and ``L = lcm{mm(e)}``.
    Since every block that covers ``e`` retires at most ``mm(e)`` of
    weighted demand, each chosen block contributes at most ``L`` to the
    weighted total; with ``mm(e) ≤ n`` everywhere this dominates the
    counting bound, strictly so whenever the demand leaves a chord
    without full-mass candidates (restricted instances, residual
    subproblems).  The scaled integer weights (``chord_weights``,
    ``weight_denom``) are cached in the memoized block tables.
  - the *cardinality bound* ``⌈|uncovered| / max cover⌉`` — each block
    covers at most ``max_size`` chords, which bites exactly where the
    distance-weighted bound is weakest (many short chords left).

* **Branching** — branch-and-bound always branches on one uncovered
  chord and tries exactly its candidate blocks (complete, since every
  covering must cover that chord).  Candidates are expanded in
  descending *residual* coverage-mass order, so near-zero-waste blocks
  — the only ones optimal coverings can afford — are tried first and
  strong incumbents appear early.  Two chord-selection orders are
  built in (measured in the A4 ablation):

  - ``"lex"`` (default): the lexicographically first uncovered chord.
    All chords at vertex 0 are resolved first, so sibling subtrees
    share most of their covered mask — which is precisely what makes
    the transposition memo below hit; measured on ``n = 8`` and
    ``n = 10`` this beats scarcity ordering by 2–30×.
  - ``"scarcest"``: fewest candidate blocks first (most-constrained;
    ties toward longer chords).  The classic MRV heuristic — smallest
    fan-out per node, but sibling subtrees diverge early, starving the
    memo.  Kept for the ablation and for restricted instances whose
    candidate counts are genuinely lopsided.

* **Dominance pruning** — when the demand does not touch every chord
  (the λK_n certifier, residual instances), candidate blocks are
  filtered at table-build time: a block whose in-demand edge set is a
  subset of another candidate's is *dominated* — any covering using it
  maps, block-for-block, to one at most as large using the dominator —
  and is dropped (:func:`dominated_candidates`).  Unsound for exact
  decomposition (a strict superset changes the partition), so
  :meth:`SolverEngine.decompose` never applies it.
* **Transposition memo** — the subproblem below a node depends only on
  its uncovered-chord set, so the search memoizes ``uncovered → fewest
  blocks used`` and prunes any revisit that does not arrive strictly
  cheaper.  For dihedral-invariant demand (All-to-All), masks are
  first canonicalised under the ``2n`` ring symmetries
  (:func:`dihedral_bit_perms`), collapsing rotated/reflected residual
  states *anywhere* in the tree, not just at the root.  This is the
  fix for the seed's ``n = 8`` anomaly: even ``n`` leaves a gap of one
  between the counting bound and ρ(n), so certification must exhaust a
  space that is ~``2n``-fold redundant — 85,650 nodes at ``n = 8``
  while the gap-free ``n = 9`` needed 234.  With the memo (plus the
  mass-ordered expansion) the same proof takes ~3.5k nodes, and
  ``n = 10`` / ``n = 11`` close in well under a second.
* **Symmetry breaking** — for dihedral-invariant demand the first
  branch only needs one candidate block per dihedral orbit
  (:func:`dihedral_canonical`); every solution maps, by some ring
  symmetry, to a solution through a retained representative.
* **Incumbents** — before branching, a deterministic max-coverage
  greedy pass (shared with :mod:`repro.baselines.greedy`) is tightened
  by the :mod:`repro.core.improve` local-search improver and seeds
  ``best_count``, letting the bound prune from the first node.
* **Sharded scale-out** — :meth:`SolverEngine.min_covering_sharded`
  partitions the root orbit representatives into per-worker shards
  balanced by orbit weight (:func:`repro.util.parallel.weighted_chunks`)
  and fans them out over :func:`repro.util.parallel.parallel_map`.
  Every worker starts from the same shared greedy/improver incumbent
  (the "incumbent broadcast"), so each shard proves its subtree cannot
  beat the best known covering; the union of shards covers every root
  orbit, which is exactly the serial proof.  :class:`SolverStats` from
  the shards merge deterministically (:meth:`SolverStats.merge`) in
  shard order, independent of worker scheduling.
* **Incremental coverings** — results are
  :class:`~repro.core.covering.Covering` objects backed by a
  :class:`~repro.core.ledger.CoverageLedger`, so downstream mutation
  (greedy loops, the improver, mutation tests) stays O(block size) per
  edit.

:mod:`repro.core.solver` remains as a thin compatibility façade
re-exporting the public entry points with their historical signatures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from math import lcm
from typing import NamedTuple

from ..util import circular
from ..util.errors import SolverError, SolverPreempted
from ..util.parallel import parallel_map, resolve_workers, weighted_chunks
from .blocks import CycleBlock
from .checkpoint import KIND_INSTANCE, KIND_KN, CappedMemo, SearchCheckpoint, memo_cap
from .covering import Covering
from .kernel import resolve_kernel
from .ledger import CoverageLedger
from .objective import Objective, resolve_objective

__all__ = [
    "SolverEngine",
    "SolverStats",
    "dihedral_canonical",
    "dihedral_bit_perms",
    "dominated_candidates",
    "enumerate_convex_blocks",
    "enumerate_tight_blocks",
    "exact_decomposition",
    "restricted_block_table",
    "solve_many",
    "solve_min_covering",
    "solve_min_covering_instance",
    "solve_min_covering_sharded",
]

DEFAULT_NODE_LIMIT = 20_000_000

BRANCHING_ORDERS = ("lex", "scarcest")

# Wall-clock deadlines (``time.time()``-based so they survive pickling
# into sharded workers) are polled every DEADLINE_POLL_MASK+1 nodes —
# cheap enough to leave on, frequent enough for sub-second budgets.
DEADLINE_POLL_MASK = 0xFF


# The acceptance bar of the PR-2 perf work, shared by the regression
# tests, the solver benchmark, and CI: the seed solver explored 85,650
# nodes certifying ρ(8) (the even-n anomaly — see the module docstring)
# and the engine must stay ≥ 10× below it.
SEED_N8_NODES = 85_650
N8_NODE_CEILING = SEED_N8_NODES // 10


@dataclass
class SolverStats:
    """Search statistics, reported by the certifying benchmarks."""

    nodes: int = 0
    best_value: int | None = None
    proven_optimal: bool = False
    shards: int = 0

    @classmethod
    def merge(cls, parts: list["SolverStats"]) -> "SolverStats":
        """Deterministic merge of per-shard statistics (in shard order):
        nodes add up, the best value is the minimum, and optimality
        holds only when every shard ran to completion."""
        merged = cls(shards=len(parts))
        best: int | None = None
        proven = bool(parts)
        for st in parts:
            merged.nodes += st.nodes
            if st.best_value is not None and (best is None or st.best_value < best):
                best = st.best_value
            proven = proven and st.proven_optimal
        merged.best_value = best
        merged.proven_optimal = proven
        return merged


# ---------------------------------------------------------------------------
# Block enumeration
# ---------------------------------------------------------------------------


def _gap_compositions(total: int, parts: int, max_part: int) -> list[tuple[int, ...]]:
    """All ordered compositions of ``total`` into ``parts`` positive parts
    each ≤ ``max_part`` (gap sequences of tight blocks)."""
    out: list[tuple[int, ...]] = []

    def rec(remaining: int, left: int, prefix: tuple[int, ...]) -> None:
        if left == 1:
            if 1 <= remaining <= max_part:
                out.append(prefix + (remaining,))
            return
        lo = max(1, remaining - max_part * (left - 1))
        hi = min(max_part, remaining - (left - 1))
        for g in range(lo, hi + 1):
            rec(remaining - g, left - 1, prefix + (g,))

    rec(total, parts, ())
    return out


@lru_cache(maxsize=64)
def enumerate_tight_blocks(n: int, max_size: int = 4) -> tuple[CycleBlock, ...]:
    """All *tight* convex blocks of size 3..max_size on ``C_n`` (gaps
    ≤ ⌊n/2⌋ summing to n), deduplicated by canonical rotation."""
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    half = n // 2
    seen: set[tuple[int, ...]] = set()
    blocks: list[CycleBlock] = []
    for size in range(3, max_size + 1):
        for gaps in _gap_compositions(n, size, half):
            for start in range(n):
                vs = [start]
                for g in gaps[:-1]:
                    vs.append((vs[-1] + g) % n)
                blk = CycleBlock(tuple(vs))
                if blk.canonical not in seen:
                    seen.add(blk.canonical)
                    blocks.append(blk)
    return tuple(blocks)


@lru_cache(maxsize=32)
def enumerate_convex_blocks(n: int, max_size: int = 4) -> tuple[CycleBlock, ...]:
    """All convex blocks of size 3..max_size on ``C_n`` (any gaps): one
    block per vertex subset, joined in circular order."""
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    from itertools import combinations

    blocks: list[CycleBlock] = []
    for size in range(3, max_size + 1):
        for subset in combinations(range(n), size):
            blocks.append(CycleBlock(subset))
    return tuple(blocks)


# ---------------------------------------------------------------------------
# Shared bitmask universe
# ---------------------------------------------------------------------------


class EdgeSpace(NamedTuple):
    """The chord universe of ``K_n`` as a bitmask space."""

    n: int
    edges: tuple[tuple[int, int], ...]
    index: dict[tuple[int, int], int]
    dist: tuple[int, ...]
    full_mask: int


class BlockTable(NamedTuple):
    """A candidate-block pool with precomputed masks, bound fragments,
    and per-chord candidate indices (sorted by coverage mass for the
    convex pool — the branching expansion order)."""

    blocks: tuple[CycleBlock, ...]
    masks: tuple[int, ...]
    edge_lists: tuple[tuple[tuple[int, int], ...], ...]
    per_edge: tuple[tuple[int, ...], ...]  # chord bit → candidate block indices
    bit_lists: tuple[tuple[int, ...], ...]  # block → covered chord bits
    masses: tuple[int, ...]  # block → Σ chord distance (≤ n, = n iff tight)
    chord_weights: tuple[int, ...]  # fractional-bound fragments (full demand)
    weight_denom: int


@lru_cache(maxsize=64)
def edge_space(n: int) -> EdgeSpace:
    edges = tuple(sorted(circular.all_chords(n)))
    index = {e: i for i, e in enumerate(edges)}
    dist = tuple(circular.chord_distance(n, e) for e in edges)
    return EdgeSpace(n, edges, index, dist, (1 << len(edges)) - 1)


@lru_cache(maxsize=64)
def dihedral_bit_perms(n: int) -> tuple[tuple[int, ...], ...]:
    """Chord-bit permutations induced by the ``2n`` ring symmetries.

    ``perms[k][b]`` is the bit index of the image of chord-bit ``b``
    under the k-th symmetry; the identity is ``perms[0]``.  Used to
    canonicalise residual masks in the transposition memo.
    """
    space = edge_space(n)
    perms: list[tuple[int, ...]] = []
    for refl in (False, True):
        for r in range(n):
            perm = [0] * len(space.edges)
            for i, (a, b) in enumerate(space.edges):
                if refl:
                    a, b = (-a) % n, (-b) % n
                a2, b2 = (a + r) % n, (b + r) % n
                perm[i] = space.index[(a2, b2) if a2 < b2 else (b2, a2)]
            perms.append(tuple(perm))
    return tuple(perms)


def _mask_bits(mask: int) -> list[int]:
    bits: list[int] = []
    while mask:
        bits.append((mask & -mask).bit_length() - 1)
        mask &= mask - 1
    return bits


def _canonical_mask(mask: int, perms: tuple[tuple[int, ...], ...]) -> int:
    """Minimum image of ``mask`` under the dihedral bit permutations."""
    bits = _mask_bits(mask)
    best = mask
    for perm in perms[1:]:
        img = 0
        for b in bits:
            img |= 1 << perm[b]
        if img < best:
            best = img
    return best


def _bound_fragments(
    dist: tuple[int, ...], masks, bit_lists, demand_bits: list[int]
) -> tuple[list[int], int, list[int]]:
    """Fractional-bound fragments for the demanded chord bits.

    Returns ``(weights, denom, uncoverable)`` with ``weights[e] =
    dist(e) · denom / mm(e)`` for demanded bits (0 elsewhere), where
    ``mm(e)`` is the maximum in-demand coverage mass over candidate
    blocks containing ``e`` and ``denom = lcm{mm(e)}``; any demanded
    chord no candidate covers is reported in ``uncoverable``.
    """
    demand_mask = 0
    for b in demand_bits:
        demand_mask |= 1 << b
    nbits = len(dist)
    mm = [0] * nbits
    for mask, bits in zip(masks, bit_lists):
        if not mask & demand_mask:
            continue
        mass = sum(dist[b] for b in bits if (demand_mask >> b) & 1)
        for b in bits:
            if (demand_mask >> b) & 1 and mass > mm[b]:
                mm[b] = mass
    uncoverable = [b for b in demand_bits if mm[b] == 0]
    denom = 1
    for b in demand_bits:
        if mm[b]:
            denom = lcm(denom, mm[b])
    weights = [0] * nbits
    for b in demand_bits:
        if mm[b]:
            weights[b] = dist[b] * denom // mm[b]
    return weights, denom, uncoverable


def _build_table(n: int, pool: tuple[CycleBlock, ...], *, mass_sorted: bool) -> BlockTable:
    space = edge_space(n)
    dist = space.dist
    masks: list[int] = []
    edge_lists: list[tuple[tuple[int, int], ...]] = []
    bit_lists: list[tuple[int, ...]] = []
    masses: list[int] = []
    for blk in pool:
        es = blk.edges()
        mask = 0
        bits: list[int] = []
        for e in es:
            b = space.index[e]
            mask |= 1 << b
            bits.append(b)
        masks.append(mask)
        edge_lists.append(es)
        bit_lists.append(tuple(bits))
        masses.append(sum(dist[b] for b in bits))
    per_edge: list[list[int]] = [[] for _ in space.edges]
    for i, bits in enumerate(bit_lists):
        for b in bits:
            per_edge[b].append(i)
    if mass_sorted:
        # Widest coverage first (then heaviest): the branching expansion
        # sorts dynamically by residual mass, and this static order is
        # its tie-break — preferring more-chords-covered on residual
        # ties is measured ~47× cheaper at n = 10 than mass-first.
        for cands in per_edge:
            cands.sort(key=lambda i: (-pool[i].size, -masses[i], i))
    weights, denom, _ = _bound_fragments(
        dist, masks, bit_lists, list(range(len(space.edges)))
    )
    return BlockTable(
        tuple(pool),
        tuple(masks),
        tuple(edge_lists),
        tuple(tuple(c) for c in per_edge),
        tuple(bit_lists),
        tuple(masses),
        tuple(weights),
        denom,
    )


@lru_cache(maxsize=32)
def convex_block_table(n: int, max_size: int = 4) -> BlockTable:
    return _build_table(n, enumerate_convex_blocks(n, max_size), mass_sorted=True)


@lru_cache(maxsize=32)
def tight_block_table(n: int, max_size: int = 4) -> BlockTable:
    return _build_table(n, enumerate_tight_blocks(n, max_size), mass_sorted=False)


@lru_cache(maxsize=64)
def restricted_block_table(
    n: int, max_size: int, allowed_sizes: tuple[int, ...], pool: str = "convex"
) -> BlockTable:
    """A candidate table admitting only cycle lengths in
    ``allowed_sizes`` (Manthey-style restricted covers).

    The table is rebuilt — not just filtered — so the per-chord bound
    fragments (``chord_weights``/``weight_denom``) see the restricted
    pool: chords whose full-mass candidates were excluded get heavier
    fractional weights, which is exactly where the packing bound
    strengthens on restricted instances.  Memoized like the full
    tables; a chord no admitted block covers simply has an empty
    candidate list (callers decide whether that is fatal).
    """
    sizes = frozenset(allowed_sizes)
    if pool == "convex":
        base = enumerate_convex_blocks(n, max_size)
    elif pool == "tight":
        base = enumerate_tight_blocks(n, max_size)
    else:
        raise SolverError(f"unknown candidate pool {pool!r}")
    admitted = tuple(blk for blk in base if blk.size in sizes)
    return _build_table(n, admitted, mass_sorted=pool == "convex")


# ---------------------------------------------------------------------------
# Dihedral symmetry
# ---------------------------------------------------------------------------


def dihedral_canonical(n: int, vertices: tuple[int, ...]) -> tuple[int, ...]:
    """Canonical representative of a vertex set under the ``2n`` ring
    symmetries (rotations and reflections of ``C_n``).

    Convex blocks are determined by their vertex set, so two convex
    blocks lie in the same dihedral orbit iff their canonical vertex
    sets coincide.
    """
    best: tuple[int, ...] | None = None
    for vs in (vertices, tuple((-v) % n for v in vertices)):
        for r in range(n):
            img = tuple(sorted((v + r) % n for v in vs))
            if best is None or img < best:
                best = img
    assert best is not None
    return best


def _orbit_representatives(
    n: int, blocks: tuple[CycleBlock, ...], cand_indices
) -> tuple[list[int], list[int]]:
    """One candidate per dihedral orbit, in candidate order, plus the
    orbit weight (how many candidates each representative stands for —
    the shard-balancing weight)."""
    order: dict[tuple[int, ...], int] = {}
    reps: list[int] = []
    weights: list[int] = []
    for i in cand_indices:
        key = dihedral_canonical(n, blocks[i].vertices)
        pos = order.get(key)
        if pos is None:
            order[key] = len(reps)
            reps.append(i)
            weights.append(1)
        else:
            weights[pos] += 1
    return reps, weights


def _is_dihedral_invariant(instance) -> bool:
    """True when demand depends only on chord distance — the condition
    under which root symmetry breaking and canonical-mask memoization
    are sound for an instance."""
    n = instance.n
    per_dist: dict[int, int] = {}
    for e in circular.all_chords(n):
        d = circular.chord_distance(n, e)
        m = instance.required(e)
        if per_dist.setdefault(d, m) != m:
            return False
    return True


# ---------------------------------------------------------------------------
# Dominance pruning
# ---------------------------------------------------------------------------


def dominated_candidates(
    masks,
    restrict_mask: int | None = None,
    costs: "list[int] | tuple[int, ...] | None" = None,
) -> set[int]:
    """Indices of candidates dominated within the demanded chord set.

    Candidate ``i`` is dominated when some other candidate ``j`` covers
    a (weak) superset of ``i``'s demanded chords *at no greater cost*;
    of an exactly-equal pair only the later index is dropped, so at
    least one optimal covering always survives the filter (every
    covering maps block-for-block onto dominators without its objective
    value growing).  ``costs=None`` means unit costs — the historical
    ``min_blocks`` behaviour, where any superset dominates.  Weighted
    objectives **must** pass their block costs: a 4-cycle covering a
    superset of a triangle's demanded chords does not dominate it under
    the ring-size-sum objective (3 slots beat 4 — the cost-blind filter
    provably loses optima there).  Candidates with no demanded coverage
    at all are dominated trivially.  Only sound for *covering*
    problems — see :meth:`SolverEngine.decompose`.
    """
    if restrict_mask is None:
        restricted = list(masks)
    else:
        restricted = [m & restrict_mask for m in masks]
    dropped: set[int] = set()
    nblocks = len(restricted)
    for i in range(nblocks):
        ri = restricted[i]
        if ri == 0:
            dropped.add(i)
            continue
        for j in range(nblocks):
            if j == i or j in dropped:
                continue
            rj = restricted[j]
            if ri & ~rj != 0:
                continue
            if costs is None:
                strictly_better = ri != rj
            else:
                if costs[j] > costs[i]:
                    continue
                strictly_better = ri != rj or costs[j] < costs[i]
            if strictly_better or j < i:
                dropped.add(i)
                break
    return dropped


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class SolverEngine:
    """Shared bitmask kernel behind every exact solver and the greedy
    baseline (see the module docstring for the architecture)."""

    def __init__(self, n: int, *, max_size: int = 4, kernel: str | None = None):
        if n < 3:
            raise SolverError(f"n ≥ 3 required, got {n}")
        self.n = n
        self.max_size = max_size
        # "python" or "numpy" — resolved once per engine from the
        # argument or REPRO_KERNEL (see repro.core.kernel).  The choice
        # never enters results or checkpoints: both kernels produce
        # byte-identical envelopes and kernel-agnostic checkpoints.
        self.kernel = resolve_kernel(kernel)

    # -- shared state (memoized at module level, cheap to re-ask) -------

    @property
    def space(self) -> EdgeSpace:
        return edge_space(self.n)

    @property
    def convex_table(self) -> BlockTable:
        return convex_block_table(self.n, self.max_size)

    @property
    def tight_table(self) -> BlockTable:
        return tight_block_table(self.n, self.max_size)

    def _table(
        self, pool: str, allowed_sizes: tuple[int, ...] | None = None
    ) -> BlockTable:
        if allowed_sizes is not None:
            return restricted_block_table(
                self.n, self.max_size, tuple(allowed_sizes), pool
            )
        if pool == "convex":
            return self.convex_table
        if pool == "tight":
            return self.tight_table
        raise SolverError(f"unknown candidate pool {pool!r}")

    # -- greedy kernel ---------------------------------------------------

    def greedy_cover_indices(
        self,
        demand: dict[tuple[int, int], int],
        *,
        pool: str = "convex",
        allowed_sizes: tuple[int, ...] | None = None,
    ) -> tuple[list[int], int]:
        """Deterministic max-coverage greedy over the pool: repeatedly
        take the block covering the most residual requests, ties toward
        lower waste then enumeration order.  Returns the chosen block
        indices and the number of residual requests it failed to cover
        (0 whenever the pool can reach them, which it always can for
        ``pool="convex"`` without a size restriction)."""
        table = self._table(pool, allowed_sizes)
        residual = {e: m for e, m in demand.items() if m > 0}
        chosen: list[int] = []
        while residual:
            best_key: tuple[int, int] | None = None
            best_i = -1
            for i, edges in enumerate(table.edge_lists):
                gain = sum(1 for e in edges if residual.get(e, 0) > 0)
                if gain == 0:
                    continue
                key = (gain, gain - len(edges))  # maximise gain, minimise waste
                if best_key is None or key > best_key:
                    best_key = key
                    best_i = i
            if best_key is None:
                break
            chosen.append(best_i)
            for e in table.edge_lists[best_i]:
                m = residual.get(e, 0)
                if m > 0:
                    if m == 1:
                        del residual[e]
                    else:
                        residual[e] = m - 1
        return chosen, sum(residual.values())

    def greedy_cover(
        self,
        instance=None,
        *,
        pool: str = "convex",
        allowed_sizes: tuple[int, ...] | None = None,
    ) -> Covering:
        """Greedy covering as a ledger-backed :class:`Covering`; raises
        :class:`SolverError` when the (possibly size-restricted) pool
        cannot reach some request."""
        from ..traffic.instances import all_to_all

        inst = instance if instance is not None else all_to_all(self.n)
        if inst.n != self.n:
            raise SolverError(f"instance order {inst.n} ≠ n = {self.n}")
        chosen, leftover = self.greedy_cover_indices(
            dict(inst.demand), pool=pool, allowed_sizes=allowed_sizes
        )
        if leftover:
            raise SolverError(
                f"greedy covering stuck with {leftover} requests left "
                f"(n={self.n}, pool={pool!r}, max_size={self.max_size}, "
                f"allowed_sizes={allowed_sizes})"
            )
        table = self._table(pool, allowed_sizes)
        return Covering(self.n, tuple(table.blocks[i] for i in chosen))

    def _incumbent_blocks(
        self,
        objective: Objective,
        allowed_sizes: tuple[int, ...] | None = None,
    ) -> list[CycleBlock] | None:
        """Greedy All-to-All covering tightened by the local-search
        improver — the incumbent every ``K_n`` search starts from.
        Honours the objective's move scoring and the size restriction
        (a restricted search must never be seeded with an inadmissible
        incumbent)."""
        from .improve import improved_greedy_covering

        try:
            improved = improved_greedy_covering(
                self.n,
                max_size=self.max_size,
                max_rounds=2,
                objective=objective,
                allowed_sizes=allowed_sizes,
            )
        except SolverError:
            return None
        return list(improved.blocks)

    # -- minimum covering of K_n ----------------------------------------

    def min_covering(
        self,
        *,
        upper_bound: int | None = None,
        node_limit: int = DEFAULT_NODE_LIMIT,
        stats: SolverStats | None = None,
        branching: str = "lex",
        use_memo: bool = True,
        deadline: float | None = None,
        objective: Objective | str | None = None,
        allowed_sizes: tuple[int, ...] | None = None,
        checkpoint: SearchCheckpoint | None = None,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        preempt=None,
    ) -> Covering:
        """Certified minimum DRC-covering of ``K_n`` over ``C_n``.

        ``upper_bound`` is *inclusive* and expressed in the objective's
        units: a covering of exactly that value is still found and
        returned (internally the branch-and-bound threshold is the
        exclusive ``upper_bound + 1``).  Raises :class:`SolverError`
        when no covering within the bound exists.

        ``objective`` selects the cost model (default ``min_blocks`` —
        the historical behaviour, node-for-node); ``allowed_sizes``
        restricts candidate cycle lengths (Manthey-style restricted
        covers) and raises when some chord becomes uncoverable.
        ``branching`` and ``use_memo`` select the chord order and the
        canonical-mask transposition memo (see the module docstring);
        the defaults are the measured-fastest configuration and the
        knobs exist for the A4 ablation.  ``deadline`` is an absolute
        ``time.time()`` wall-clock cutoff (the :mod:`repro.api` layer
        derives it from a spec's time budget); overrunning it raises,
        exactly like the node limit.

        Checkpointing: pass ``checkpoint`` (a
        :class:`~repro.core.checkpoint.SearchCheckpoint` from a prior
        run) to resume exactly where that run stopped — the final
        covering and node count are identical to an uninterrupted
        search.  ``on_checkpoint`` is called with a fresh snapshot
        every ``checkpoint_every`` nodes; ``preempt`` is polled with
        the live :class:`SolverStats` at the deadline cadence and a
        truthy return raises :class:`SolverPreempted` carrying the
        resumable checkpoint (deadline overruns raise the same way;
        a node-limit overrun raises :class:`SolverError` with the
        checkpoint attached).
        """
        n = self.n
        if n > 12:
            raise SolverError(f"exact covering solver is for small n (≤ 12), got {n}")

        obj = resolve_objective(objective)
        st = stats if stats is not None else SolverStats()
        best_count, best_blocks, order, root_cands, _ = self._search_prologue(
            upper_bound, branching, obj, allowed_sizes
        )
        best_count, best_blocks = self._covering_search(
            root_cands=root_cands,
            best_count=best_count,
            best_blocks=best_blocks,
            node_limit=node_limit,
            st=st,
            order=order,
            use_memo=use_memo,
            deadline=deadline,
            objective=obj,
            allowed_sizes=allowed_sizes,
            branching=branching,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            preempt=preempt,
        )
        if best_blocks is None:
            # The search ran to exhaustion (a node-limit overrun raises
            # inside), so the bound itself is below the optimum.
            raise SolverError(
                f"no covering of K_{n} within upper bound {upper_bound} "
                f"(the optimum is larger)"
            )
        st.best_value = best_count
        st.proven_optimal = True
        return Covering(n, tuple(best_blocks))

    def _search_prologue(
        self,
        upper_bound: int | None,
        branching: str,
        objective: Objective,
        allowed_sizes: tuple[int, ...] | None = None,
    ) -> tuple[int, list[CycleBlock] | None, list[int], list[int], list[int]]:
        """Shared setup of the serial and sharded ``K_n`` certifications:
        the exclusive threshold (seeded by the greedy/improver
        incumbent, valued under the objective), the branch order, and
        the root orbit representatives with their orbit weights.
        Keeping one copy is what guarantees both paths prove against
        the same incumbent convention."""
        table = self._table("convex", allowed_sizes)
        if allowed_sizes is not None:
            for bit, cands in enumerate(table.per_edge):
                if not cands:
                    raise SolverError(
                        f"no candidate block of size in {tuple(sorted(set(allowed_sizes)))} "
                        f"covers chord {self.space.edges[bit]} of K_{self.n}"
                    )
        max_block_cost = max(
            (objective.block_cost(blk) for blk in table.blocks), default=1
        )
        best_count = (
            max_block_cost * len(self.space.edges) + 1
            if upper_bound is None
            else upper_bound + 1
        )
        best_blocks: list[CycleBlock] | None = None
        incumbent = self._incumbent_blocks(objective, allowed_sizes)
        if incumbent is not None:
            incumbent_value = sum(objective.block_cost(blk) for blk in incumbent)
            if incumbent_value < best_count:
                best_count = incumbent_value
                best_blocks = incumbent
        order = self._branch_order(table, branching)
        # All-to-All is dihedral-invariant, so the root branch needs one
        # block per orbit only.
        root_cands, orbit_weights = _orbit_representatives(
            self.n, table.blocks, table.per_edge[order[0]]
        )
        return best_count, best_blocks, order, root_cands, orbit_weights

    def _branch_order(self, table: BlockTable, branching: str) -> list[int]:
        space = self.space
        if branching == "lex":
            return list(range(len(space.edges)))
        if branching == "scarcest":
            return sorted(
                range(len(space.edges)),
                key=lambda e: (len(table.per_edge[e]), -space.dist[e], e),
            )
        raise SolverError(
            f"unknown branching order {branching!r} (expected one of {BRANCHING_ORDERS})"
        )

    def _covering_search(
        self,
        *,
        root_cands: list[int],
        best_count: int,
        best_blocks: list[CycleBlock] | None,
        node_limit: int,
        st: SolverStats,
        order: list[int],
        use_memo: bool = True,
        deadline: float | None = None,
        objective: Objective | None = None,
        allowed_sizes: tuple[int, ...] | None = None,
        branching: str = "lex",
        checkpoint: SearchCheckpoint | None = None,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        preempt=None,
    ) -> tuple[int, list[CycleBlock] | None]:
        """Branch-and-bound over the (possibly size-restricted) convex
        pool for All-to-All demand, generic over the objective.

        ``best_count`` is the exclusive threshold in objective units
        (only strictly better coverings are accepted); ``root_cands``
        restricts the first branch — the sharded solver passes each
        worker its slice of the root orbit representatives.  The
        accumulated objective cost is what enters the transposition
        memo (for ``min_blocks`` that is the historical
        blocks-used value, node-for-node); parity-tracking objectives
        additionally get the residual odd-degree vertex count for their
        bound.  Returns the improved ``(best_count, best_blocks)``;
        exhaustive unless the node limit raises.

        The search runs as an explicit-stack loop over frames
        ``[covered, used, W, odd, scored, cursor]`` so its entire
        state — incumbent, per-frame candidate cursor, transposition
        memo, and the unexplored root frontier — can be captured in a
        :class:`SearchCheckpoint` at any loop boundary and resumed
        later with an identical node sequence.  The chosen-block path
        is implicit: frame ``k``'s active child is
        ``scored[cursor − 1]``, an invariant that holds for every
        non-top frame at the loop top.
        """
        n = self.n
        obj = resolve_objective(objective)
        if self.kernel == "numpy":
            from .kernel import numpy_covering_search

            return numpy_covering_search(
                self,
                root_cands=root_cands,
                best_count=best_count,
                best_blocks=best_blocks,
                node_limit=node_limit,
                st=st,
                order=order,
                use_memo=use_memo,
                deadline=deadline,
                objective=obj,
                allowed_sizes=allowed_sizes,
                branching=branching,
                checkpoint=checkpoint,
                checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint,
                preempt=preempt,
            )
        space = self.space
        table = self._table("convex", allowed_sizes)
        dist = space.dist
        full_mask = space.full_mask
        masks = table.masks
        blocks = table.blocks
        per_edge = table.per_edge
        bit_lists = table.bit_lists
        weights = table.chord_weights
        denom = table.weight_denom
        max_cover = min(self.max_size, max((blk.size for blk in blocks), default=1))
        costs = tuple(obj.block_cost(blk) for blk in blocks)
        min_cost = min(costs, default=1)
        node_bound = obj.node_bound
        track_parity = obj.track_parity
        edges = space.edges
        perms = dihedral_bit_perms(n) if use_memo else ()
        memo = CappedMemo(memo_cap())
        lex = order == list(range(len(space.edges)))
        W_root = sum(weights)
        # Residual demand-degree parity per vertex: All-to-All leaves
        # every vertex at degree n − 1.
        odd_root = ((1 << n) - 1) if (track_parity and (n - 1) % 2) else 0

        best: list = [best_count, best_blocks]
        chosen: list[CycleBlock] = []
        # Frame layout: [covered, used, W, odd, scored, cursor].
        frames: list[list] = []

        def visit(covered: int, used: int, W: int, odd: int):
            """Process one search node (count, completion, bound, memo,
            branching target) and return the scored candidate list to
            expand — or ``None`` when the node is a leaf or pruned."""
            st.nodes += 1
            if covered == full_mask:
                if used < best[0]:
                    best[0] = used
                    best[1] = list(chosen)
                return None
            unc = full_mask & ~covered
            # Objective bound over the running residual totals (the
            # fractional/cardinality packing maximum for min_blocks).
            bound = node_bound(
                frac_units=W,
                frac_denom=denom,
                residual_requests=unc.bit_count(),
                max_cover=max_cover,
                min_cost=min_cost,
                odd_vertices=odd.bit_count(),
            )
            if used + (bound if bound > min_cost else min_cost) >= best[0]:
                return None
            if use_memo:
                key = _canonical_mask(unc, perms)
                prev = memo.get(key)
                if prev is not None and prev <= used:
                    return None
                memo.store(key, used)
            if lex:
                target = (unc & -unc).bit_length() - 1
            else:
                target = next(e for e in order if (unc >> e) & 1)
            cands = root_cands if covered == 0 else per_edge[target]
            return sorted(
                cands,
                key=lambda i: -sum(dist[b] for b in bit_lists[i] if (unc >> b) & 1),
            )

        def capture() -> SearchCheckpoint:
            return SearchCheckpoint(
                kind=KIND_KN,
                n=n,
                max_size=self.max_size,
                objective=obj.name,
                branching=branching,
                use_memo=use_memo,
                allowed_sizes=(
                    tuple(allowed_sizes) if allowed_sizes is not None else None
                ),
                nodes=st.nodes,
                best_value=best[0],
                best_blocks=(
                    tuple(blk.vertices for blk in best[1])
                    if best[1] is not None
                    else None
                ),
                frames=[[fr[0], fr[1], fr[2], fr[3], list(fr[4]), fr[5]] for fr in frames],
                memo=list(memo.items()),
                resumes=(checkpoint.resumes + 1) if checkpoint is not None else 0,
            )

        if checkpoint is not None:
            checkpoint.check_compatible(
                kind=KIND_KN,
                n=n,
                max_size=self.max_size,
                objective=obj.name,
                branching=branching,
                use_memo=use_memo,
                allowed_sizes=(
                    tuple(allowed_sizes) if allowed_sizes is not None else None
                ),
            )
            st.nodes = checkpoint.nodes
            best[0] = checkpoint.best_value
            best[1] = (
                [CycleBlock(tuple(vs)) for vs in checkpoint.best_blocks]
                if checkpoint.best_blocks is not None
                else None
            )
            for key, value in checkpoint.memo:
                memo.store(key, value)
            frames = [
                [covered, used, W, odd, list(scored), cursor]
                for covered, used, W, odd, scored, cursor in checkpoint.frames
            ]
            for k in range(len(frames) - 1):
                fr = frames[k]
                chosen.append(blocks[fr[4][fr[5] - 1]])
        else:
            scored0 = visit(0, 0, W_root, odd_root)
            if scored0 is not None:
                frames.append([0, 0, W_root, odd_root, scored0, 0])

        # A budget check at the loop top fires on the node count the
        # just-resumed checkpoint restored; gating polls on progress
        # past this floor guarantees every resume cycle advances at
        # least one poll window before it can be preempted again.
        poll_floor = st.nodes
        next_flush = (
            st.nodes + checkpoint_every
            if checkpoint_every and on_checkpoint is not None
            else None
        )

        while frames:
            if st.nodes > node_limit:
                raise SolverError(
                    f"solver exceeded node limit {node_limit} for n={n}",
                    checkpoint=capture(),
                    best_blocks=list(best[1]) if best[1] is not None else None,
                    best_value=best[0],
                    stats=st,
                )
            if st.nodes & DEADLINE_POLL_MASK == 0 and st.nodes > poll_floor:
                if deadline is not None and time.time() > deadline:
                    raise SolverPreempted(
                        f"solver exceeded its time budget for n={n}",
                        checkpoint=capture(),
                        best_blocks=list(best[1]) if best[1] is not None else None,
                        best_value=best[0],
                        stats=st,
                    )
                if preempt is not None and preempt(st):
                    raise SolverPreempted(
                        f"solver preempted at {st.nodes} nodes for n={n}",
                        checkpoint=capture(),
                        best_blocks=list(best[1]) if best[1] is not None else None,
                        best_value=best[0],
                        stats=st,
                    )
            if next_flush is not None and st.nodes >= next_flush:
                on_checkpoint(capture())
                next_flush = st.nodes + checkpoint_every
            fr = frames[-1]
            scored = fr[4]
            cursor = fr[5]
            if cursor >= len(scored):
                frames.pop()
                if frames:
                    chosen.pop()
                continue
            fr[5] = cursor + 1
            i = scored[cursor]
            covered, used, W, odd = fr[0], fr[1], fr[2], fr[3]
            unc = full_mask & ~covered
            dW = 0
            new_odd = odd
            if track_parity:
                for b in bit_lists[i]:
                    if (unc >> b) & 1:
                        dW += weights[b]
                        a, c = edges[b]
                        new_odd ^= (1 << a) | (1 << c)
            else:
                dW = sum(weights[b] for b in bit_lists[i] if (unc >> b) & 1)
            chosen.append(blocks[i])
            child_covered = covered | masks[i]
            child_used = used + costs[i]
            child_scored = visit(child_covered, child_used, W - dW, new_odd)
            if child_scored is None:
                chosen.pop()
            else:
                frames.append(
                    [child_covered, child_used, W - dW, new_odd, child_scored, 0]
                )
        return best[0], best[1]

    # -- sharded scale-out -----------------------------------------------

    def min_covering_sharded(
        self,
        *,
        workers: int | None = None,
        upper_bound: int | None = None,
        node_limit: int = DEFAULT_NODE_LIMIT,
        stats: SolverStats | None = None,
        branching: str = "lex",
        deadline: float | None = None,
        objective: Objective | str | None = None,
        allowed_sizes: tuple[int, ...] | None = None,
    ) -> Covering:
        """Certified minimum covering of ``K_n`` sharded across
        processes by root-orbit partitioning (objective-generic — the
        objective is shipped to the shard workers by registry name).

        The root orbit representatives are split into per-worker shards
        balanced by orbit weight; every worker searches its shard
        starting from the shared greedy/improver incumbent, so the
        union of the shard proofs is exactly the serial proof.  Results
        and merged statistics are deterministic for a fixed shard count
        (scheduling order cannot change them).  With one worker this
        degrades to :meth:`min_covering`.
        """
        n = self.n
        if n > 12:
            raise SolverError(f"exact covering solver is for small n (≤ 12), got {n}")
        obj = resolve_objective(objective)
        nworkers = resolve_workers(workers)
        if nworkers == 1:
            return self.min_covering(
                upper_bound=upper_bound,
                node_limit=node_limit,
                stats=stats,
                branching=branching,
                deadline=deadline,
                objective=obj,
                allowed_sizes=allowed_sizes,
            )

        st = stats if stats is not None else SolverStats()
        best_count, best_blocks, _, root_cands, orbit_weights = self._search_prologue(
            upper_bound, branching, obj, allowed_sizes
        )
        shards = weighted_chunks(root_cands, orbit_weights, nworkers)
        payloads = [
            (
                n,
                self.max_size,
                tuple(shard),
                best_count,
                node_limit,
                branching,
                deadline,
                obj.name,
                allowed_sizes,
                self.kernel,
            )
            for shard in shards
        ]
        results = parallel_map(
            _sharded_root_worker, payloads, workers=len(payloads), min_chunk=1
        )
        shard_stats = []
        for count, vertex_lists, nodes in results:
            part = SolverStats(nodes=nodes, best_value=count, proven_optimal=True)
            shard_stats.append(part)
            if count is not None and count < best_count:
                best_count = count
                best_blocks = [CycleBlock(tuple(vs)) for vs in vertex_lists]
        merged = SolverStats.merge(shard_stats)
        st.nodes += merged.nodes
        st.shards = merged.shards
        if best_blocks is None:
            raise SolverError(
                f"no covering of K_{n} within upper bound {upper_bound} "
                f"(the optimum is larger)"
            )
        st.best_value = best_count
        st.proven_optimal = merged.proven_optimal
        return Covering(n, tuple(best_blocks))

    # -- minimum covering of an arbitrary instance -----------------------

    def min_covering_instance(
        self,
        instance,
        *,
        node_limit: int = DEFAULT_NODE_LIMIT,
        stats: SolverStats | None = None,
        dominance: bool = True,
        deadline: float | None = None,
        objective: Objective | str | None = None,
        allowed_sizes: tuple[int, ...] | None = None,
        checkpoint: SearchCheckpoint | None = None,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        preempt=None,
    ) -> Covering:
        """Certified minimum DRC-covering of an arbitrary instance on
        ``C_n`` (multiplicities supported — e.g. ``λK_n``), generic
        over the objective.

        Inadmissible candidates (cycle lengths outside
        ``allowed_sizes``) are dropped alongside the dominance filter
        (``dominance=False`` disables the latter — the knob the
        soundness property tests exercise); the branch-and-bound prunes
        with the objective's node bound over the residual demand (for
        ``min_blocks`` the historical fractional/cardinality packing
        maximum) plus a residual-state transposition memo keyed by
        accumulated objective cost.  Exponential; intended for small
        instances (``n ≤ 10``, small λ).  This is the certifier behind
        the λK_n experiment's exact values.

        ``checkpoint``/``checkpoint_every``/``on_checkpoint``/``preempt``
        follow :meth:`min_covering`'s resumable-search contract; the
        instance frames additionally carry the per-chord residual
        decrements so the mutable ``residual_counts`` vector restores
        exactly, and resume validates a demand fingerprint.
        """
        from ..traffic.instances import Instance

        if not isinstance(instance, Instance):
            raise SolverError(f"expected an Instance, got {type(instance).__name__}")
        n = instance.n
        if n != self.n:
            raise SolverError(f"instance order {n} ≠ n = {self.n}")
        if n > 10:
            raise SolverError(f"instance solver is for small n (≤ 10), got {n}")

        obj = resolve_objective(objective)
        space = self.space
        index = space.index
        dist_by_bit = space.dist
        residual_counts = [0] * len(space.edges)
        for e, m in instance.demand.items():
            if m > 0:
                residual_counts[index[e]] = m
        demand_bits = [b for b, m in enumerate(residual_counts) if m]
        st = stats if stats is not None else SolverStats()
        if not demand_bits:
            st.best_value = 0
            st.proven_optimal = True
            return Covering(n, ())

        table = self.convex_table
        demand_mask = 0
        for b in demand_bits:
            demand_mask |= 1 << b
        keep = [
            i
            for i, m in enumerate(table.masks)
            if m & demand_mask and obj.admits(table.blocks[i], allowed_sizes)
        ]
        if dominance:
            # Cost-aware dominance: under weighted objectives a superset
            # cover only dominates at equal-or-lower block cost (unit
            # costs reduce to the historical min_blocks filter).
            dropped = dominated_candidates(
                [table.masks[i] for i in keep],
                demand_mask,
                costs=[obj.block_cost(table.blocks[i]) for i in keep],
            )
            keep = [i for k, i in enumerate(keep) if k not in dropped]

        weights, denom, uncoverable = _bound_fragments(
            dist_by_bit,
            [table.masks[i] for i in keep],
            [table.bit_lists[i] for i in keep],
            demand_bits,
        )
        if uncoverable:
            e = space.edges[uncoverable[0]]
            raise SolverError(f"no candidate block covers requested chord {e}")
        per_bit: dict[int, list[int]] = {b: [] for b in demand_bits}
        max_cover = 1
        for i in keep:
            covered_bits = [b for b in table.bit_lists[i] if (demand_mask >> b) & 1]
            max_cover = max(max_cover, len(covered_bits))
            for b in covered_bits:
                per_bit[b].append(i)

        blocks = table.blocks
        bit_lists = table.bit_lists
        costs = {i: obj.block_cost(table.blocks[i]) for i in keep}
        min_cost = min(costs.values(), default=1)
        max_cost = max(costs.values(), default=1)
        node_bound = obj.node_bound
        track_parity = obj.track_parity
        edges = space.edges
        total_requests = sum(residual_counts)
        W_root = sum(residual_counts[b] * weights[b] for b in demand_bits)
        # Residual demand-degree parity per vertex, maintained alongside
        # residual_counts when the objective's bound wants it.
        odd_root = 0
        if track_parity:
            degree = [0] * n
            for b in demand_bits:
                a, c = edges[b]
                degree[a] += residual_counts[b]
                degree[c] += residual_counts[b]
            for v, d in enumerate(degree):
                if d % 2:
                    odd_root |= 1 << v

        best_blocks: list[CycleBlock] | None = None
        # Exclusive threshold: one admitted block per request always
        # suffices, so this is a true upper limit (max_cost = 1 recovers
        # min_covering's historical total_requests + 1).
        best_count = max_cost * total_requests + 1

        greedy_idx, leftover = self.greedy_cover_indices(
            dict(instance.demand), allowed_sizes=allowed_sizes
        )
        if not leftover:
            greedy_table = self._table("convex", allowed_sizes)
            greedy_value = sum(
                obj.block_cost(greedy_table.blocks[i]) for i in greedy_idx
            )
            if greedy_value < best_count:
                best_count = greedy_value
                best_blocks = [greedy_table.blocks[i] for i in greedy_idx]

        # Root symmetry breaking is sound only when the demand itself is
        # preserved by the ring's rotations and reflections.
        symmetric = _is_dihedral_invariant(instance)
        root_bit = min(demand_bits)
        root_cands: list[int] | None = None
        if symmetric:
            root_cands, _ = _orbit_representatives(n, blocks, per_bit[root_bit])

        # The numpy kernel vectorizes candidate scoring only — the
        # instance loop's mutable residual vector and ``decremented``
        # bookkeeping stay in Python (they are serialization-ordered).
        # argsort(kind="stable") over the same key keeps the scored
        # lists, and therefore the node sequence, identical.
        korder = None
        if self.kernel == "numpy":
            from .kernel import InstanceOrder

            korder = InstanceOrder(n, self.max_size)

        memo = CappedMemo(memo_cap())
        best: list = [best_count, best_blocks]
        chosen: list[CycleBlock] = []
        # Frame layout: [used, remaining, W, odd, scored, cursor,
        # decremented] — ``decremented`` records the chord bits whose
        # residual count was reduced on *entering* this frame's node,
        # replayed backwards when the frame pops (and serialized, so a
        # resumed search restores ``residual_counts`` exactly).
        frames: list[list] = []
        demand_fingerprint = sorted(
            [a, b, m] for (a, b), m in instance.demand.items() if m > 0
        )

        def visit(used: int, remaining: int, W: int, odd: int):
            """Process one search node and return the scored candidate
            list to expand, or ``None`` when it is a leaf or pruned."""
            st.nodes += 1
            if remaining == 0:
                if used < best[0]:
                    best[0] = used
                    best[1] = list(chosen)
                return None
            bound = node_bound(
                frac_units=W,
                frac_denom=denom,
                residual_requests=remaining,
                max_cover=max_cover,
                min_cost=min_cost,
                odd_vertices=odd.bit_count(),
            )
            if used + (bound if bound > min_cost else min_cost) >= best[0]:
                return None
            key = tuple(residual_counts)
            prev = memo.get(key)
            if prev is not None and prev <= used:
                return None
            memo.store(key, used)
            target = -1
            for b in demand_bits:
                if residual_counts[b]:
                    target = b
                    break
            cands = per_bit[target]
            if used == 0 and root_cands is not None and target == root_bit:
                cands = root_cands
            if korder is not None:
                return korder.order(cands, residual_counts)
            return sorted(
                cands,
                key=lambda i: -sum(
                    dist_by_bit[b] for b in bit_lists[i] if residual_counts[b] > 0
                ),
            )

        def capture() -> SearchCheckpoint:
            return SearchCheckpoint(
                kind=KIND_INSTANCE,
                n=n,
                max_size=self.max_size,
                objective=obj.name,
                dominance=dominance,
                allowed_sizes=(
                    tuple(allowed_sizes) if allowed_sizes is not None else None
                ),
                nodes=st.nodes,
                best_value=best[0],
                best_blocks=(
                    tuple(blk.vertices for blk in best[1])
                    if best[1] is not None
                    else None
                ),
                frames=[
                    [fr[0], fr[1], fr[2], fr[3], list(fr[4]), fr[5], list(fr[6])]
                    for fr in frames
                ],
                memo=list(memo.items()),
                residual_counts=list(residual_counts),
                demand=demand_fingerprint,
                resumes=(checkpoint.resumes + 1) if checkpoint is not None else 0,
            )

        if checkpoint is not None:
            checkpoint.check_compatible(
                kind=KIND_INSTANCE,
                n=n,
                max_size=self.max_size,
                objective=obj.name,
                dominance=dominance,
                allowed_sizes=(
                    tuple(allowed_sizes) if allowed_sizes is not None else None
                ),
                demand=demand_fingerprint,
            )
            st.nodes = checkpoint.nodes
            best[0] = checkpoint.best_value
            best[1] = (
                [CycleBlock(tuple(vs)) for vs in checkpoint.best_blocks]
                if checkpoint.best_blocks is not None
                else None
            )
            for key, value in checkpoint.memo:
                memo.store(key, value)
            if checkpoint.residual_counts is not None:
                residual_counts[:] = checkpoint.residual_counts
            frames = [
                [used, remaining, W, odd, list(scored), cursor, list(dec)]
                for used, remaining, W, odd, scored, cursor, dec in checkpoint.frames
            ]
            for k in range(len(frames) - 1):
                fr = frames[k]
                chosen.append(blocks[fr[4][fr[5] - 1]])
        else:
            scored0 = visit(0, total_requests, W_root, odd_root)
            if scored0 is not None:
                frames.append([0, total_requests, W_root, odd_root, scored0, 0, []])

        poll_floor = st.nodes
        next_flush = (
            st.nodes + checkpoint_every
            if checkpoint_every and on_checkpoint is not None
            else None
        )

        while frames:
            if st.nodes > node_limit:
                raise SolverError(
                    f"instance solver exceeded node limit {node_limit}",
                    checkpoint=capture(),
                    best_blocks=list(best[1]) if best[1] is not None else None,
                    best_value=best[0],
                    stats=st,
                )
            if st.nodes & DEADLINE_POLL_MASK == 0 and st.nodes > poll_floor:
                if deadline is not None and time.time() > deadline:
                    raise SolverPreempted(
                        f"solver exceeded its time budget for n={n}",
                        checkpoint=capture(),
                        best_blocks=list(best[1]) if best[1] is not None else None,
                        best_value=best[0],
                        stats=st,
                    )
                if preempt is not None and preempt(st):
                    raise SolverPreempted(
                        f"solver preempted at {st.nodes} nodes for n={n}",
                        checkpoint=capture(),
                        best_blocks=list(best[1]) if best[1] is not None else None,
                        best_value=best[0],
                        stats=st,
                    )
            if next_flush is not None and st.nodes >= next_flush:
                on_checkpoint(capture())
                next_flush = st.nodes + checkpoint_every
            fr = frames[-1]
            scored = fr[4]
            cursor = fr[5]
            if cursor >= len(scored):
                frames.pop()
                for b in fr[6]:
                    residual_counts[b] += 1
                if frames:
                    chosen.pop()
                continue
            fr[5] = cursor + 1
            i = scored[cursor]
            decremented: list[int] = []
            dW = 0
            new_odd = fr[3]
            for b in bit_lists[i]:
                if residual_counts[b] > 0:
                    residual_counts[b] -= 1
                    decremented.append(b)
                    dW += weights[b]
                    if track_parity:
                        a, c = edges[b]
                        new_odd ^= (1 << a) | (1 << c)
            chosen.append(blocks[i])
            child_used = fr[0] + costs[i]
            child_remaining = fr[1] - len(decremented)
            child_W = fr[2] - dW
            child_scored = visit(child_used, child_remaining, child_W, new_odd)
            if child_scored is None:
                chosen.pop()
                for b in decremented:
                    residual_counts[b] += 1
            else:
                frames.append(
                    [child_used, child_remaining, child_W, new_odd,
                     child_scored, 0, decremented]
                )
        best_count, best_blocks = best
        if best_blocks is None:
            raise SolverError("no covering found (node limit too small?)")
        st.best_value = best_count
        st.proven_optimal = True
        return Covering(n, tuple(best_blocks))

    # -- exact decomposition ---------------------------------------------

    def decompose(
        self,
        edges: frozenset[tuple[int, int]],
        *,
        max_triangles: int | None = None,
        candidates: tuple[CycleBlock, ...] | None = None,
        node_limit: int = 5_000_000,
        strategy: str = "mrv",
        stats: SolverStats | None = None,
    ) -> list[CycleBlock] | None:
        """Partition ``edges`` into tight convex blocks, each edge exactly
        once; returns ``None`` when no partition exists.

        ``max_triangles`` bounds the number of C3 blocks (the pole
        completion needs exactly one — enforced by edge counts, bounding
        merely prunes).  Deterministic DFS over bitmasks; explored node
        counts are reported through ``stats`` (same contract as
        :meth:`min_covering`).  Dominance filtering is deliberately
        *not* applied here: replacing a block by a strict superset
        changes the partition, so dominated candidates can still be the
        only way to complete a decomposition.

        ``strategy`` selects the branching variable: ``"mrv"`` (default)
        recomputes the fewest-live-candidates edge at every node —
        near-backtrack-free on the pole completions; ``"static"`` uses a
        one-shot scarcity order — cheaper per node but can thrash (kept
        for the ablation benchmark, which quantifies the difference).
        """
        n = self.n
        if strategy not in ("mrv", "static"):
            raise SolverError(f"unknown branching strategy {strategy!r}")
        edge_list = sorted(edges)
        index = {e: i for i, e in enumerate(edge_list)}
        full_mask = (1 << len(edge_list)) - 1
        st = stats if stats is not None else SolverStats()
        if full_mask == 0:
            st.best_value = 0
            st.proven_optimal = True
            return []

        pool = candidates if candidates is not None else enumerate_tight_blocks(n)
        usable: list[tuple[int, CycleBlock]] = []
        for blk in pool:
            bes = blk.edges()
            if all(e in index for e in bes):
                mask = 0
                for e in bes:
                    mask |= 1 << index[e]
                usable.append((mask, blk))

        per_edge: list[list[tuple[int, CycleBlock]]] = [[] for _ in edge_list]
        for mask, blk in usable:
            m = mask
            while m:
                low = (m & -m).bit_length() - 1
                per_edge[low].append((mask, blk))
                m &= m - 1
        if any(not cands for cands in per_edge):
            # Some edge has no candidate block at all: non-existence is
            # certified without search, same stats contract as below.
            st.proven_optimal = True
            return None

        static_rank: list[int] | None = None
        if strategy == "static":
            order = sorted(range(len(edge_list)), key=lambda i: len(per_edge[i]))
            static_rank = [0] * len(edge_list)
            for pos, i in enumerate(order):
                static_rank[i] = pos

        def static_choice(covered: int) -> tuple[int, list[tuple[int, CycleBlock]]]:
            assert static_rank is not None
            best = -1
            best_rank = len(edge_list) + 1
            m = (~covered) & full_mask
            while m:
                low = (m & -m).bit_length() - 1
                m &= m - 1
                if static_rank[low] < best_rank:
                    best_rank = static_rank[low]
                    best = low
            cands = [c for c in per_edge[best] if not c[0] & covered]
            return best, cands

        def most_constrained(covered: int) -> tuple[int, list[tuple[int, CycleBlock]]]:
            """Dynamic MRV: the uncovered edge with fewest live candidates.

            Scanning candidate lists per node costs more than a static
            order but keeps backtracking near zero on these structured
            instances (the paper-scale bottleneck is a thrashing search,
            not the scan).
            """
            best_edge = -1
            best_cands: list[tuple[int, CycleBlock]] = []
            best_count = 1 << 30
            m = (~covered) & full_mask
            while m:
                low = (m & -m).bit_length() - 1
                m &= m - 1
                count = 0
                cands: list[tuple[int, CycleBlock]] = []
                for cand in per_edge[low]:
                    if not cand[0] & covered:
                        count += 1
                        cands.append(cand)
                        if count >= best_count:
                            break
                if count < best_count:
                    best_count = count
                    best_edge = low
                    best_cands = cands
                    if count <= 1:
                        break
            return best_edge, best_cands

        def dfs(covered: int, triangles_used: int, chosen: list[CycleBlock]) -> bool:
            st.nodes += 1
            if st.nodes > node_limit:
                raise SolverError(
                    f"exact_decomposition exceeded node limit {node_limit} for n={n}"
                )
            if covered == full_mask:
                return True
            chooser = static_choice if strategy == "static" else most_constrained
            _, cands = chooser(covered)
            for mask, blk in cands:
                tri = 1 if blk.size == 3 else 0
                if max_triangles is not None and triangles_used + tri > max_triangles:
                    continue
                chosen.append(blk)
                if dfs(covered | mask, triangles_used + tri, chosen):
                    return True
                chosen.pop()
            return False

        chosen: list[CycleBlock] = []
        if dfs(0, 0, chosen):
            st.best_value = len(chosen)
            st.proven_optimal = True
            return chosen
        st.proven_optimal = True  # exhaustive: non-existence is certified
        return None


# ---------------------------------------------------------------------------
# Front doors (historical signatures; re-exported by repro.core.solver)
# ---------------------------------------------------------------------------


def exact_decomposition(
    n: int,
    edges: frozenset[tuple[int, int]],
    *,
    max_triangles: int | None = None,
    candidates: tuple[CycleBlock, ...] | None = None,
    node_limit: int = 5_000_000,
    strategy: str = "mrv",
    stats: SolverStats | None = None,
) -> list[CycleBlock] | None:
    """See :meth:`SolverEngine.decompose`."""
    return SolverEngine(n).decompose(
        edges,
        max_triangles=max_triangles,
        candidates=candidates,
        node_limit=node_limit,
        strategy=strategy,
        stats=stats,
    )


def solve_min_covering(
    n: int,
    *,
    upper_bound: int | None = None,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    stats: SolverStats | None = None,
    branching: str = "lex",
    use_memo: bool = True,
) -> Covering:
    """See :meth:`SolverEngine.min_covering`.  ``upper_bound`` is
    inclusive: ``upper_bound=rho(n)`` still returns a certificate."""
    return SolverEngine(n, max_size=max_size).min_covering(
        upper_bound=upper_bound,
        node_limit=node_limit,
        stats=stats,
        branching=branching,
        use_memo=use_memo,
    )


def solve_min_covering_sharded(
    n: int,
    *,
    workers: int | None = None,
    upper_bound: int | None = None,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    stats: SolverStats | None = None,
) -> Covering:
    """See :meth:`SolverEngine.min_covering_sharded`."""
    return SolverEngine(n, max_size=max_size).min_covering_sharded(
        workers=workers,
        upper_bound=upper_bound,
        node_limit=node_limit,
        stats=stats,
    )


def solve_min_covering_instance(
    instance,
    *,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    stats: SolverStats | None = None,
    dominance: bool = True,
) -> Covering:
    """See :meth:`SolverEngine.min_covering_instance`."""
    from ..traffic.instances import Instance

    if not isinstance(instance, Instance):
        raise SolverError(f"expected an Instance, got {type(instance).__name__}")
    return SolverEngine(instance.n, max_size=max_size).min_covering_instance(
        instance, node_limit=node_limit, stats=stats, dominance=dominance
    )


def _sharded_root_worker(
    payload: tuple[
        int, int, tuple[int, ...], int, int, str, float | None,
        str, tuple[int, ...] | None, str,
    ],
) -> tuple[int | None, list[tuple[int, ...]] | None, int]:
    """One shard of a root-orbit-partitioned certification: search the
    given root candidates only, starting from the broadcast incumbent
    value (exclusive threshold, objective units).  The objective
    crosses the process boundary by registry name, the kernel by its
    resolved name (a worker without numpy falls back to the reference
    kernel — same proof either way).  Returns a strictly-better
    covering's vertex lists or ``None``, plus the shard's node count."""
    (
        n, max_size, root_cands, best_count, node_limit, branching, deadline,
        objective_name, allowed_sizes, kernel,
    ) = payload
    engine = SolverEngine(n, max_size=max_size, kernel=kernel)
    st = SolverStats()
    obj = resolve_objective(objective_name)
    table = engine._table("convex", allowed_sizes)
    order = engine._branch_order(table, branching)
    count, blocks = engine._covering_search(
        root_cands=list(root_cands),
        best_count=best_count,
        best_blocks=None,
        node_limit=node_limit,
        st=st,
        order=order,
        deadline=deadline,
        objective=obj,
        allowed_sizes=allowed_sizes,
    )
    if blocks is None:
        return None, None, st.nodes
    return count, [blk.vertices for blk in blocks], st.nodes


def _solve_many_worker(
    payload: tuple[int, int | None, int, int, str | None],
) -> tuple[Covering, SolverStats]:
    n, upper_bound, max_size, node_limit, kernel = payload
    st = SolverStats()
    cov = SolverEngine(n, max_size=max_size, kernel=kernel).min_covering(
        upper_bound=upper_bound, node_limit=node_limit, stats=st
    )
    return cov, st


def solve_many(
    ns,
    *,
    upper_bounds=None,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    workers: int | None = None,
    shard_threshold: int | None = None,
    kernel: str | None = None,
) -> list[tuple[Covering, SolverStats]]:
    """Batched front door: certified min coverings for every ring size in
    ``ns``, fanned out over :func:`repro.util.parallel.parallel_map`.

    ``upper_bounds`` is an optional parallel sequence of inclusive
    bounds (``None`` entries mean unbounded).  Order of results matches
    ``ns``.  Block tables and edge spaces are memoized per process, so
    serial sweeps (and each pool worker) build them at most once per
    ``(n, max_size)``.

    The batch is chunked by estimated cost (exponential in n), so one
    large ring size cannot serialise the sweep behind round-robin
    chunks.  Ring sizes ≥ ``shard_threshold`` additionally scale *out*:
    each is certified on its own via
    :meth:`SolverEngine.min_covering_sharded`, partitioning its root
    orbits across all workers instead of occupying one.
    """
    ns = tuple(ns)
    kern = resolve_kernel(kernel)
    if upper_bounds is None:
        ubs: tuple[int | None, ...] = (None,) * len(ns)
    else:
        ubs = tuple(upper_bounds)
        if len(ubs) != len(ns):
            raise SolverError(
                f"upper_bounds has {len(ubs)} entries for {len(ns)} ring sizes"
            )
    results: dict[int, tuple[Covering, SolverStats]] = {}
    batched: list[tuple[int, tuple[int, int | None, int, int, str]]] = []
    for pos, (n, ub) in enumerate(zip(ns, ubs)):
        if shard_threshold is not None and n >= shard_threshold:
            st = SolverStats()
            cov = SolverEngine(
                n, max_size=max_size, kernel=kern
            ).min_covering_sharded(
                workers=workers, upper_bound=ub, node_limit=node_limit, stats=st
            )
            results[pos] = (cov, st)
        else:
            batched.append((pos, (n, ub, max_size, node_limit, kern)))
    if batched:
        payloads = [payload for _, payload in batched]
        weights = [4.0 ** payload[0] for payload in payloads]
        solved = parallel_map(
            _solve_many_worker, payloads, workers=workers, weights=weights
        )
        for (pos, _), result in zip(batched, solved):
            results[pos] = result
    return [results[pos] for pos in range(len(ns))]
