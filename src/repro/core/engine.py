"""Unified incremental solver engine for DRC cycle coverings.

Engine architecture
-------------------
Every exact solver in the repo — tight exact decomposition (the pole
completion step), minimum covering of ``K_n`` (the ρ(n) certifier), and
minimum covering of an arbitrary instance (the λK_n certifier) — used
to carry its own copy of the same scaffolding: a sorted chord list, a
chord → bit index map, per-chord candidate-block lists, and a counting
lower bound.  :class:`SolverEngine` owns that scaffolding once:

* **Edge space** (:func:`edge_space`): the sorted chords of ``K_n``,
  their bit indices, ring distances, and the full-coverage bitmask.
  Memoized per ring size.
* **Block tables** (:func:`convex_block_table`,
  :func:`tight_block_table`): candidate pools with precomputed edge
  bitmasks, edge lists, and per-chord candidate indices.  Memoized per
  ``(n, max_size)`` so batched sweeps (:func:`solve_many`) build each
  table once per process.
* **One prune** — branch-and-bound nodes compute the counting bound
  exactly once and cut with the single exclusive test
  ``used + bound >= best_count`` (``best_count`` is always the
  *exclusive* threshold: one more than the best covering found so
  far, or ``upper_bound + 1`` before an incumbent exists).  The seed
  solver evaluated the bound twice per node against a contradictory
  ``>=`` / ``>`` pair; this engine is the fix.
* **Symmetry breaking** — the All-to-All problem (and any
  dihedral-invariant instance) is preserved by the ``2n`` rotations
  and reflections of ``C_n``, so the first branch only needs one
  candidate block per dihedral orbit (:func:`dihedral_canonical`).
  Every solution maps, by some ring symmetry, to a solution through a
  retained representative, so optimality is unaffected while the root
  fan-out shrinks by roughly the orbit sizes.
* **Greedy incumbents** — before branching, a deterministic
  max-coverage greedy pass (shared with :mod:`repro.baselines.greedy`)
  seeds ``best_count``, replacing the trivial one-block-per-request
  bound and letting the counting prune bite from the first node.
* **Incremental coverings** — results are
  :class:`~repro.core.covering.Covering` objects backed by a
  :class:`~repro.core.ledger.CoverageLedger`, so downstream mutation
  (greedy loops, local search, mutation tests) stays O(block size)
  per edit.

:mod:`repro.core.solver` remains as a thin compatibility façade
re-exporting the public entry points with their historical signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import NamedTuple

from ..util import circular
from ..util.errors import SolverError
from ..util.parallel import parallel_map
from .blocks import CycleBlock
from .covering import Covering
from .ledger import CoverageLedger

__all__ = [
    "SolverEngine",
    "SolverStats",
    "dihedral_canonical",
    "enumerate_convex_blocks",
    "enumerate_tight_blocks",
    "exact_decomposition",
    "solve_many",
    "solve_min_covering",
    "solve_min_covering_instance",
]

DEFAULT_NODE_LIMIT = 20_000_000


@dataclass
class SolverStats:
    """Search statistics, reported by the certifying benchmarks."""

    nodes: int = 0
    best_value: int | None = None
    proven_optimal: bool = False


# ---------------------------------------------------------------------------
# Block enumeration
# ---------------------------------------------------------------------------


def _gap_compositions(total: int, parts: int, max_part: int) -> list[tuple[int, ...]]:
    """All ordered compositions of ``total`` into ``parts`` positive parts
    each ≤ ``max_part`` (gap sequences of tight blocks)."""
    out: list[tuple[int, ...]] = []

    def rec(remaining: int, left: int, prefix: tuple[int, ...]) -> None:
        if left == 1:
            if 1 <= remaining <= max_part:
                out.append(prefix + (remaining,))
            return
        lo = max(1, remaining - max_part * (left - 1))
        hi = min(max_part, remaining - (left - 1))
        for g in range(lo, hi + 1):
            rec(remaining - g, left - 1, prefix + (g,))

    rec(total, parts, ())
    return out


@lru_cache(maxsize=64)
def enumerate_tight_blocks(n: int, max_size: int = 4) -> tuple[CycleBlock, ...]:
    """All *tight* convex blocks of size 3..max_size on ``C_n`` (gaps
    ≤ ⌊n/2⌋ summing to n), deduplicated by canonical rotation."""
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    half = n // 2
    seen: set[tuple[int, ...]] = set()
    blocks: list[CycleBlock] = []
    for size in range(3, max_size + 1):
        for gaps in _gap_compositions(n, size, half):
            for start in range(n):
                vs = [start]
                for g in gaps[:-1]:
                    vs.append((vs[-1] + g) % n)
                blk = CycleBlock(tuple(vs))
                if blk.canonical not in seen:
                    seen.add(blk.canonical)
                    blocks.append(blk)
    return tuple(blocks)


@lru_cache(maxsize=32)
def enumerate_convex_blocks(n: int, max_size: int = 4) -> tuple[CycleBlock, ...]:
    """All convex blocks of size 3..max_size on ``C_n`` (any gaps): one
    block per vertex subset, joined in circular order."""
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    from itertools import combinations

    blocks: list[CycleBlock] = []
    for size in range(3, max_size + 1):
        for subset in combinations(range(n), size):
            blocks.append(CycleBlock(subset))
    return tuple(blocks)


# ---------------------------------------------------------------------------
# Shared bitmask universe
# ---------------------------------------------------------------------------


class EdgeSpace(NamedTuple):
    """The chord universe of ``K_n`` as a bitmask space."""

    n: int
    edges: tuple[tuple[int, int], ...]
    index: dict[tuple[int, int], int]
    dist: tuple[int, ...]
    full_mask: int


class BlockTable(NamedTuple):
    """A candidate-block pool with precomputed masks and indices."""

    blocks: tuple[CycleBlock, ...]
    masks: tuple[int, ...]
    edge_lists: tuple[tuple[tuple[int, int], ...], ...]
    per_edge: tuple[tuple[int, ...], ...]  # chord bit → candidate block indices


@lru_cache(maxsize=64)
def edge_space(n: int) -> EdgeSpace:
    edges = tuple(sorted(circular.all_chords(n)))
    index = {e: i for i, e in enumerate(edges)}
    dist = tuple(circular.chord_distance(n, e) for e in edges)
    return EdgeSpace(n, edges, index, dist, (1 << len(edges)) - 1)


def _build_table(n: int, pool: tuple[CycleBlock, ...], *, big_first: bool) -> BlockTable:
    space = edge_space(n)
    masks: list[int] = []
    edge_lists: list[tuple[tuple[int, int], ...]] = []
    for blk in pool:
        es = blk.edges()
        mask = 0
        for e in es:
            mask |= 1 << space.index[e]
        masks.append(mask)
        edge_lists.append(es)
    per_edge: list[list[int]] = [[] for _ in space.edges]
    for i, mask in enumerate(masks):
        m = mask
        while m:
            low = (m & -m).bit_length() - 1
            per_edge[low].append(i)
            m &= m - 1
    if big_first:
        # Larger blocks first: greedy-like ordering reaches strong
        # incumbents early, which tightens the counting prune sooner.
        for cands in per_edge:
            cands.sort(key=lambda i: (-pool[i].size, i))
    return BlockTable(
        tuple(pool), tuple(masks), tuple(edge_lists), tuple(tuple(c) for c in per_edge)
    )


@lru_cache(maxsize=32)
def convex_block_table(n: int, max_size: int = 4) -> BlockTable:
    return _build_table(n, enumerate_convex_blocks(n, max_size), big_first=True)


@lru_cache(maxsize=32)
def tight_block_table(n: int, max_size: int = 4) -> BlockTable:
    return _build_table(n, enumerate_tight_blocks(n, max_size), big_first=False)


# ---------------------------------------------------------------------------
# Dihedral symmetry
# ---------------------------------------------------------------------------


def dihedral_canonical(n: int, vertices: tuple[int, ...]) -> tuple[int, ...]:
    """Canonical representative of a vertex set under the ``2n`` ring
    symmetries (rotations and reflections of ``C_n``).

    Convex blocks are determined by their vertex set, so two convex
    blocks lie in the same dihedral orbit iff their canonical vertex
    sets coincide.
    """
    best: tuple[int, ...] | None = None
    for vs in (vertices, tuple((-v) % n for v in vertices)):
        for r in range(n):
            img = tuple(sorted((v + r) % n for v in vs))
            if best is None or img < best:
                best = img
    assert best is not None
    return best


def _orbit_representatives(n: int, blocks: tuple[CycleBlock, ...], cand_indices) -> list[int]:
    """One candidate per dihedral orbit, in candidate order."""
    seen: set[tuple[int, ...]] = set()
    reps: list[int] = []
    for i in cand_indices:
        key = dihedral_canonical(n, blocks[i].vertices)
        if key not in seen:
            seen.add(key)
            reps.append(i)
    return reps


def _is_dihedral_invariant(instance) -> bool:
    """True when demand depends only on chord distance — the condition
    under which root symmetry breaking is sound for an instance."""
    n = instance.n
    per_dist: dict[int, int] = {}
    for e in circular.all_chords(n):
        d = circular.chord_distance(n, e)
        m = instance.required(e)
        if per_dist.setdefault(d, m) != m:
            return False
    return True


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class SolverEngine:
    """Shared bitmask kernel behind every exact solver and the greedy
    baseline (see the module docstring for the architecture)."""

    def __init__(self, n: int, *, max_size: int = 4):
        if n < 3:
            raise SolverError(f"n ≥ 3 required, got {n}")
        self.n = n
        self.max_size = max_size

    # -- shared state (memoized at module level, cheap to re-ask) -------

    @property
    def space(self) -> EdgeSpace:
        return edge_space(self.n)

    @property
    def convex_table(self) -> BlockTable:
        return convex_block_table(self.n, self.max_size)

    @property
    def tight_table(self) -> BlockTable:
        return tight_block_table(self.n, self.max_size)

    def _table(self, pool: str) -> BlockTable:
        if pool == "convex":
            return self.convex_table
        if pool == "tight":
            return self.tight_table
        raise SolverError(f"unknown candidate pool {pool!r}")

    # -- greedy kernel ---------------------------------------------------

    def greedy_cover_indices(
        self, demand: dict[tuple[int, int], int], *, pool: str = "convex"
    ) -> tuple[list[int], int]:
        """Deterministic max-coverage greedy over the pool: repeatedly
        take the block covering the most residual requests, ties toward
        lower waste then enumeration order.  Returns the chosen block
        indices and the number of residual requests it failed to cover
        (0 whenever the pool can reach them, which it always can for
        ``pool="convex"``)."""
        table = self._table(pool)
        residual = {e: m for e, m in demand.items() if m > 0}
        chosen: list[int] = []
        while residual:
            best_key: tuple[int, int] | None = None
            best_i = -1
            for i, edges in enumerate(table.edge_lists):
                gain = sum(1 for e in edges if residual.get(e, 0) > 0)
                if gain == 0:
                    continue
                key = (gain, gain - len(edges))  # maximise gain, minimise waste
                if best_key is None or key > best_key:
                    best_key = key
                    best_i = i
            if best_key is None:
                break
            chosen.append(best_i)
            for e in table.edge_lists[best_i]:
                m = residual.get(e, 0)
                if m > 0:
                    if m == 1:
                        del residual[e]
                    else:
                        residual[e] = m - 1
        return chosen, sum(residual.values())

    def greedy_cover(self, instance=None, *, pool: str = "convex") -> Covering:
        """Greedy covering as a ledger-backed :class:`Covering`; raises
        :class:`SolverError` when the pool cannot reach some request."""
        from ..traffic.instances import all_to_all

        inst = instance if instance is not None else all_to_all(self.n)
        if inst.n != self.n:
            raise SolverError(f"instance order {inst.n} ≠ n = {self.n}")
        chosen, leftover = self.greedy_cover_indices(dict(inst.demand), pool=pool)
        if leftover:
            raise SolverError(
                f"greedy covering stuck with {leftover} requests left "
                f"(n={self.n}, pool={pool!r}, max_size={self.max_size})"
            )
        table = self._table(pool)
        return Covering(self.n, tuple(table.blocks[i] for i in chosen))

    # -- minimum covering of K_n ----------------------------------------

    def min_covering(
        self,
        *,
        upper_bound: int | None = None,
        node_limit: int = DEFAULT_NODE_LIMIT,
        stats: SolverStats | None = None,
    ) -> Covering:
        """Certified minimum DRC-covering of ``K_n`` over ``C_n``.

        ``upper_bound`` is *inclusive*: a covering using exactly
        ``upper_bound`` blocks is still found and returned (internally
        the branch-and-bound threshold is the exclusive
        ``upper_bound + 1``).  Raises :class:`SolverError` when no
        covering within the bound exists.
        """
        n = self.n
        if n > 12:
            raise SolverError(f"exact covering solver is for small n (≤ 12), got {n}")

        space = self.space
        table = self.convex_table
        dist = space.dist
        full_mask = space.full_mask
        masks = table.masks
        blocks = table.blocks
        per_edge = table.per_edge
        st = stats if stats is not None else SolverStats()

        # best_count is the exclusive threshold throughout: only strictly
        # better coverings are accepted, so the one prune below is exact.
        best_count = len(space.edges) + 1 if upper_bound is None else upper_bound + 1
        best_blocks: list[CycleBlock] | None = None

        from ..traffic.instances import all_to_all

        greedy_idx, leftover = self.greedy_cover_indices(dict(all_to_all(n).demand))
        if not leftover and len(greedy_idx) < best_count:
            best_count = len(greedy_idx)
            best_blocks = [blocks[i] for i in greedy_idx]

        # All-to-All is dihedral-invariant, so the root branch (always on
        # chord (0, 1), the lowest bit) needs one block per orbit only.
        root_cands = _orbit_representatives(n, blocks, per_edge[0])

        def dfs(covered: int, used: int, chosen: list[CycleBlock]) -> None:
            nonlocal best_blocks, best_count
            st.nodes += 1
            if st.nodes > node_limit:
                raise SolverError(f"solver exceeded node limit {node_limit} for n={n}")
            if covered == full_mask:
                if used < best_count:
                    best_count = used
                    best_blocks = list(chosen)
                return
            # Counting lower bound over the uncovered chords — computed
            # once per node, pruned with the single exclusive test.
            total = 0
            m = (~covered) & full_mask
            while m:
                low = (m & -m).bit_length() - 1
                total += dist[low]
                m &= m - 1
            bound = max(1, -(-total // n))
            if used + bound >= best_count:
                return
            # Branch on the lowest-index uncovered chord: every solution
            # must cover it, so trying exactly its candidates is complete.
            m = (~covered) & full_mask
            target = (m & -m).bit_length() - 1
            cands = root_cands if covered == 0 else per_edge[target]
            for i in cands:
                chosen.append(blocks[i])
                dfs(covered | masks[i], used + 1, chosen)
                chosen.pop()

        dfs(0, 0, [])
        if best_blocks is None:
            # The search ran to exhaustion (a node-limit overrun raises
            # above), so the bound itself is below the optimum.
            raise SolverError(
                f"no covering of K_{n} within upper bound {upper_bound} "
                f"(the optimum is larger)"
            )
        st.best_value = best_count
        st.proven_optimal = True
        return Covering(n, tuple(best_blocks))

    # -- minimum covering of an arbitrary instance -----------------------

    def min_covering_instance(
        self,
        instance,
        *,
        node_limit: int = DEFAULT_NODE_LIMIT,
        stats: SolverStats | None = None,
    ) -> Covering:
        """Certified minimum DRC-covering of an arbitrary instance on
        ``C_n`` (multiplicities supported — e.g. ``λK_n``).

        Exponential; intended for tiny instances (``n ≤ 8``-ish, small
        λ).  This is the certifier behind the λK_n experiment's exact
        values.
        """
        from ..traffic.instances import Instance

        if not isinstance(instance, Instance):
            raise SolverError(f"expected an Instance, got {type(instance).__name__}")
        n = instance.n
        if n != self.n:
            raise SolverError(f"instance order {n} ≠ n = {self.n}")
        if n < 3:
            raise SolverError(f"n ≥ 3 required, got {n}")
        if n > 10:
            raise SolverError(f"instance solver is for small n (≤ 10), got {n}")

        residual: dict[tuple[int, int], int] = {
            e: m for e, m in instance.demand.items() if m > 0
        }
        if not residual:
            return Covering(n, ())
        total_demand = sum(residual.values())
        dist = {e: circular.chord_distance(n, e) for e in residual}

        table = self.convex_table
        blocks = table.blocks
        per_edge: dict[tuple[int, int], list[int]] = {e: [] for e in residual}
        for i, edges in enumerate(table.edge_lists):
            for e in edges:
                if e in per_edge:
                    per_edge[e].append(i)

        st = stats if stats is not None else SolverStats()
        best_blocks: list[CycleBlock] | None = None
        best_count = total_demand + 1  # exclusive threshold, as in min_covering

        greedy_idx, leftover = self.greedy_cover_indices(dict(residual))
        if not leftover and len(greedy_idx) < best_count:
            best_count = len(greedy_idx)
            best_blocks = [blocks[i] for i in greedy_idx]

        # Root symmetry breaking is sound only when the demand itself is
        # preserved by the ring's rotations and reflections.
        symmetric = _is_dihedral_invariant(instance)
        root_target = min(residual)

        remaining_distance = sum(m * dist[e] for e, m in residual.items())

        def pick_target() -> tuple[int, int] | None:
            best: tuple[int, int] | None = None
            for e, m in residual.items():
                if m > 0 and (best is None or e < best):
                    best = e
            return best

        def dfs(used: int, chosen: list[CycleBlock]) -> None:
            nonlocal best_blocks, best_count, remaining_distance
            st.nodes += 1
            if st.nodes > node_limit:
                raise SolverError(f"instance solver exceeded node limit {node_limit}")
            target = pick_target()
            if target is None:
                if used < best_count:
                    best_count = used
                    best_blocks = list(chosen)
                return
            bound = max(1, -(-remaining_distance // n))
            if used + bound >= best_count:
                return
            cands = per_edge[target]
            if used == 0 and symmetric and target == root_target:
                cands = _orbit_representatives(n, blocks, cands)
            for i in cands:
                decremented: list[tuple[int, int]] = []
                delta = 0
                for e in table.edge_lists[i]:
                    m = residual.get(e, 0)
                    if m > 0:
                        residual[e] = m - 1
                        decremented.append(e)
                        delta += dist[e]
                remaining_distance -= delta
                chosen.append(blocks[i])
                dfs(used + 1, chosen)
                chosen.pop()
                remaining_distance += delta
                for e in decremented:
                    residual[e] += 1

        dfs(0, [])
        if best_blocks is None:
            raise SolverError("no covering found (node limit too small?)")
        st.best_value = best_count
        st.proven_optimal = True
        return Covering(n, tuple(best_blocks))

    # -- exact decomposition ---------------------------------------------

    def decompose(
        self,
        edges: frozenset[tuple[int, int]],
        *,
        max_triangles: int | None = None,
        candidates: tuple[CycleBlock, ...] | None = None,
        node_limit: int = 5_000_000,
        strategy: str = "mrv",
        stats: SolverStats | None = None,
    ) -> list[CycleBlock] | None:
        """Partition ``edges`` into tight convex blocks, each edge exactly
        once; returns ``None`` when no partition exists.

        ``max_triangles`` bounds the number of C3 blocks (the pole
        completion needs exactly one — enforced by edge counts, bounding
        merely prunes).  Deterministic DFS over bitmasks; explored node
        counts are reported through ``stats`` (same contract as
        :meth:`min_covering`).

        ``strategy`` selects the branching variable: ``"mrv"`` (default)
        recomputes the fewest-live-candidates edge at every node —
        near-backtrack-free on the pole completions; ``"static"`` uses a
        one-shot scarcity order — cheaper per node but can thrash (kept
        for the ablation benchmark, which quantifies the difference).
        """
        n = self.n
        if strategy not in ("mrv", "static"):
            raise SolverError(f"unknown branching strategy {strategy!r}")
        edge_list = sorted(edges)
        index = {e: i for i, e in enumerate(edge_list)}
        full_mask = (1 << len(edge_list)) - 1
        st = stats if stats is not None else SolverStats()
        if full_mask == 0:
            st.best_value = 0
            st.proven_optimal = True
            return []

        pool = candidates if candidates is not None else enumerate_tight_blocks(n)
        usable: list[tuple[int, CycleBlock]] = []
        for blk in pool:
            bes = blk.edges()
            if all(e in index for e in bes):
                mask = 0
                for e in bes:
                    mask |= 1 << index[e]
                usable.append((mask, blk))

        per_edge: list[list[tuple[int, CycleBlock]]] = [[] for _ in edge_list]
        for mask, blk in usable:
            m = mask
            while m:
                low = (m & -m).bit_length() - 1
                per_edge[low].append((mask, blk))
                m &= m - 1
        if any(not cands for cands in per_edge):
            # Some edge has no candidate block at all: non-existence is
            # certified without search, same stats contract as below.
            st.proven_optimal = True
            return None

        static_rank: list[int] | None = None
        if strategy == "static":
            order = sorted(range(len(edge_list)), key=lambda i: len(per_edge[i]))
            static_rank = [0] * len(edge_list)
            for pos, i in enumerate(order):
                static_rank[i] = pos

        def static_choice(covered: int) -> tuple[int, list[tuple[int, CycleBlock]]]:
            assert static_rank is not None
            best = -1
            best_rank = len(edge_list) + 1
            m = (~covered) & full_mask
            while m:
                low = (m & -m).bit_length() - 1
                m &= m - 1
                if static_rank[low] < best_rank:
                    best_rank = static_rank[low]
                    best = low
            cands = [c for c in per_edge[best] if not c[0] & covered]
            return best, cands

        def most_constrained(covered: int) -> tuple[int, list[tuple[int, CycleBlock]]]:
            """Dynamic MRV: the uncovered edge with fewest live candidates.

            Scanning candidate lists per node costs more than a static
            order but keeps backtracking near zero on these structured
            instances (the paper-scale bottleneck is a thrashing search,
            not the scan).
            """
            best_edge = -1
            best_cands: list[tuple[int, CycleBlock]] = []
            best_count = 1 << 30
            m = (~covered) & full_mask
            while m:
                low = (m & -m).bit_length() - 1
                m &= m - 1
                count = 0
                cands: list[tuple[int, CycleBlock]] = []
                for cand in per_edge[low]:
                    if not cand[0] & covered:
                        count += 1
                        cands.append(cand)
                        if count >= best_count:
                            break
                if count < best_count:
                    best_count = count
                    best_edge = low
                    best_cands = cands
                    if count <= 1:
                        break
            return best_edge, best_cands

        def dfs(covered: int, triangles_used: int, chosen: list[CycleBlock]) -> bool:
            st.nodes += 1
            if st.nodes > node_limit:
                raise SolverError(
                    f"exact_decomposition exceeded node limit {node_limit} for n={n}"
                )
            if covered == full_mask:
                return True
            chooser = static_choice if strategy == "static" else most_constrained
            _, cands = chooser(covered)
            for mask, blk in cands:
                tri = 1 if blk.size == 3 else 0
                if max_triangles is not None and triangles_used + tri > max_triangles:
                    continue
                chosen.append(blk)
                if dfs(covered | mask, triangles_used + tri, chosen):
                    return True
                chosen.pop()
            return False

        chosen: list[CycleBlock] = []
        if dfs(0, 0, chosen):
            st.best_value = len(chosen)
            st.proven_optimal = True
            return chosen
        st.proven_optimal = True  # exhaustive: non-existence is certified
        return None


# ---------------------------------------------------------------------------
# Front doors (historical signatures; re-exported by repro.core.solver)
# ---------------------------------------------------------------------------


def exact_decomposition(
    n: int,
    edges: frozenset[tuple[int, int]],
    *,
    max_triangles: int | None = None,
    candidates: tuple[CycleBlock, ...] | None = None,
    node_limit: int = 5_000_000,
    strategy: str = "mrv",
    stats: SolverStats | None = None,
) -> list[CycleBlock] | None:
    """See :meth:`SolverEngine.decompose`."""
    return SolverEngine(n).decompose(
        edges,
        max_triangles=max_triangles,
        candidates=candidates,
        node_limit=node_limit,
        strategy=strategy,
        stats=stats,
    )


def solve_min_covering(
    n: int,
    *,
    upper_bound: int | None = None,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    stats: SolverStats | None = None,
) -> Covering:
    """See :meth:`SolverEngine.min_covering`.  ``upper_bound`` is
    inclusive: ``upper_bound=rho(n)`` still returns a certificate."""
    return SolverEngine(n, max_size=max_size).min_covering(
        upper_bound=upper_bound, node_limit=node_limit, stats=stats
    )


def solve_min_covering_instance(
    instance,
    *,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    stats: SolverStats | None = None,
) -> Covering:
    """See :meth:`SolverEngine.min_covering_instance`."""
    from ..traffic.instances import Instance

    if not isinstance(instance, Instance):
        raise SolverError(f"expected an Instance, got {type(instance).__name__}")
    return SolverEngine(instance.n, max_size=max_size).min_covering_instance(
        instance, node_limit=node_limit, stats=stats
    )


def _solve_many_worker(
    payload: tuple[int, int | None, int, int],
) -> tuple[Covering, SolverStats]:
    n, upper_bound, max_size, node_limit = payload
    st = SolverStats()
    cov = SolverEngine(n, max_size=max_size).min_covering(
        upper_bound=upper_bound, node_limit=node_limit, stats=st
    )
    return cov, st


def solve_many(
    ns,
    *,
    upper_bounds=None,
    max_size: int = 4,
    node_limit: int = DEFAULT_NODE_LIMIT,
    workers: int | None = None,
) -> list[tuple[Covering, SolverStats]]:
    """Batched front door: certified min coverings for every ring size in
    ``ns``, fanned out over :func:`repro.util.parallel.parallel_map`.

    ``upper_bounds`` is an optional parallel sequence of inclusive
    bounds (``None`` entries mean unbounded).  Order of results matches
    ``ns``.  Block tables and edge spaces are memoized per process, so
    serial sweeps (and each pool worker) build them at most once per
    ``(n, max_size)``.
    """
    ns = tuple(ns)
    if upper_bounds is None:
        ubs: tuple[int | None, ...] = (None,) * len(ns)
    else:
        ubs = tuple(upper_bounds)
        if len(ubs) != len(ns):
            raise SolverError(
                f"upper_bounds has {len(ubs)} entries for {len(ns)} ring sizes"
            )
    payloads = [(n, ub, max_size, node_limit) for n, ub in zip(ns, ubs)]
    return parallel_map(_solve_many_worker, payloads, workers=workers)
