"""Coverings: collections of cycle blocks covering a traffic instance.

A :class:`Covering` is the paper's central object — a family of
subnetworks ``{I_k}`` whose union of requests covers the logical graph.
The class is a value container with cached coverage accounting (chord →
times covered), DRC feasibility, excess, and C3/C4 mix statistics; the
independent validity checker lives in :mod:`repro.core.verify`.

Coverage accounting is backed by a
:class:`~repro.core.ledger.CoverageLedger`: a fresh covering recounts
once, lazily, and every derived covering (``with_blocks``,
``without_block``, ``replace_block``) inherits the parent's ledger and
applies per-block deltas, so chains of edits — greedy loops, local
search, mutation tests — pay O(block size) per step instead of
recounting every slot.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from functools import cached_property

from ..traffic.instances import Instance, all_to_all
from ..util.errors import InvalidCoveringError
from .blocks import CycleBlock
from .ledger import CoverageLedger

__all__ = ["Covering"]


@dataclass(frozen=True)
class Covering:
    """An (ordered) family of cycle blocks over the ring ``C_n``.

    The covering does not itself fix the traffic instance: coverage
    queries take an :class:`~repro.traffic.instances.Instance` and
    default to All-to-All, the paper's headline case.
    """

    n: int
    blocks: tuple[CycleBlock, ...]

    def __post_init__(self) -> None:
        if self.n < 3:
            raise InvalidCoveringError(f"a ring needs n ≥ 3, got n={self.n}")
        blocks = tuple(self.blocks)
        for blk in blocks:
            if max(blk.vertices) >= self.n:
                raise InvalidCoveringError(
                    f"block {blk.vertices!r} does not fit on ring of order {self.n}"
                )
        object.__setattr__(self, "blocks", blocks)

    # -- basic shape ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @cached_property
    def size_histogram(self) -> dict[int, int]:
        """Mapping cycle length → number of blocks of that length."""
        hist = Counter(blk.size for blk in self.blocks)
        return dict(sorted(hist.items()))

    @property
    def num_triangles(self) -> int:
        return self.size_histogram.get(3, 0)

    @property
    def num_quads(self) -> int:
        return self.size_histogram.get(4, 0)

    @property
    def total_slots(self) -> int:
        """Total number of request slots over all blocks (Σ block sizes)."""
        return self._ledger.total_slots

    # -- coverage accounting --------------------------------------------

    @cached_property
    def _ledger(self) -> CoverageLedger:
        """Incremental coverage accounting.  Recounted lazily for fresh
        coverings; the mutation methods pre-seed this cache on derived
        coverings with a copied-and-patched parent ledger."""
        return CoverageLedger.from_blocks(self.blocks)

    @property
    def coverage(self) -> dict[tuple[int, int], int]:
        """Chord → number of blocks covering it (with multiplicity).

        The returned mapping is the ledger's live view — treat it as
        read-only.
        """
        return self._ledger.counts

    def _derive(self, blocks: tuple[CycleBlock, ...], added: Iterable[CycleBlock],
                removed: Iterable[CycleBlock]) -> "Covering":
        """A sibling covering whose ledger is patched incrementally when
        this covering's ledger has already been materialised."""
        child = Covering(self.n, blocks)
        parent = self.__dict__.get("_ledger")
        if parent is not None:
            ledger = parent.copy()
            for blk in removed:
                ledger.remove_block(blk)
            for blk in added:
                ledger.add_block(blk)
            child.__dict__["_ledger"] = ledger
        return child

    def multiplicity(self, e: tuple[int, int]) -> int:
        a, b = min(e), max(e)
        return self._ledger.multiplicity((a, b))

    def uncovered(self, instance: Instance | None = None) -> list[tuple[int, int]]:
        """Requests of ``instance`` covered fewer times than demanded."""
        inst = instance if instance is not None else all_to_all(self.n)
        self._check_instance(inst)
        cov = self.coverage
        return [e for e, m in inst.demand.items() if cov.get(e, 0) < m]

    def covers(self, instance: Instance | None = None) -> bool:
        """True when every request is covered at least its multiplicity."""
        if instance is None:
            # All-to-All, λ = 1: covered ⟺ every chord appears in the ledger.
            n = self.n
            return self._ledger.distinct_covered == n * (n - 1) // 2
        return not self.uncovered(instance)

    def excess(self, instance: Instance | None = None) -> int:
        """Total over-coverage: ``Σ_e max(0, covered(e) − required(e))``
        plus coverage of unrequested chords.

        Theorem 2's optimal coverings have excess exactly ``n/2``.
        """
        if instance is None:
            # All-to-All, λ = 1: every chord on the ring is requested once.
            return self._ledger.excess_all_to_all()
        self._check_instance(instance)
        extra = 0
        for e, c in self.coverage.items():
            extra += max(0, c - instance.required(e))
        return extra

    def doubled_edges(self, instance: Instance | None = None) -> list[tuple[int, int]]:
        """Chords covered strictly more often than required — candidates
        for block-enlargement moves in the even construction."""
        inst = instance if instance is not None else all_to_all(self.n)
        return sorted(e for e, c in self.coverage.items() if c > inst.required(e))

    def binding_edges(
        self, index: int, instance: Instance | None = None
    ) -> tuple[tuple[int, int], ...]:
        """Edges of block ``index`` that any replacement block must keep
        covering (demand would be violated without them).  O(block size)
        via the ledger — the improver's move-generation primitive."""
        if not 0 <= index < len(self.blocks):
            raise IndexError(index)
        inst = instance if instance is not None else all_to_all(self.n)
        self._check_instance(inst)
        return self._ledger.binding_edges(self.blocks[index], inst.demand)

    def is_redundant_block(self, index: int, instance: Instance | None = None) -> bool:
        """True when block ``index`` can be dropped with every demand
        still satisfied."""
        if not 0 <= index < len(self.blocks):
            raise IndexError(index)
        inst = instance if instance is not None else all_to_all(self.n)
        self._check_instance(inst)
        return self._ledger.removable(self.blocks[index], inst.demand)

    def is_exact(self, instance: Instance | None = None) -> bool:
        """True for a perfect decomposition: every request covered exactly
        its multiplicity and nothing else covered."""
        inst = instance if instance is not None else all_to_all(self.n)
        self._check_instance(inst)
        return self.covers(inst) and self.excess(inst) == 0

    # -- DRC ------------------------------------------------------------

    @cached_property
    def non_convex_blocks(self) -> tuple[CycleBlock, ...]:
        """Blocks violating the disjoint-routing constraint on ``C_n``."""
        return tuple(blk for blk in self.blocks if not blk.is_convex(self.n))

    def is_drc_feasible(self) -> bool:
        """True when every block admits an edge-disjoint routing on the
        ring (the paper's DRC property)."""
        return not self.non_convex_blocks

    # -- algebra ---------------------------------------------------------

    def with_blocks(self, extra: Iterable[CycleBlock]) -> "Covering":
        extra = tuple(extra)
        return self._derive(self.blocks + extra, added=extra, removed=())

    def without_block(self, index: int) -> "Covering":
        if not 0 <= index < len(self.blocks):
            raise IndexError(index)
        return self._derive(
            self.blocks[:index] + self.blocks[index + 1 :],
            added=(),
            removed=(self.blocks[index],),
        )

    def replace_block(self, index: int, new_block: CycleBlock) -> "Covering":
        if not 0 <= index < len(self.blocks):
            raise IndexError(index)
        blocks = list(self.blocks)
        old = blocks[index]
        blocks[index] = new_block
        return self._derive(tuple(blocks), added=(new_block,), removed=(old,))

    def deduplicated(self) -> "Covering":
        """Remove repeated blocks (same canonical cycle)."""
        seen: set[tuple[int, ...]] = set()
        keep: list[CycleBlock] = []
        for blk in self.blocks:
            if blk.canonical not in seen:
                seen.add(blk.canonical)
                keep.append(blk)
        return Covering(self.n, tuple(keep))

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {"n": self.n, "blocks": [list(blk.vertices) for blk in self.blocks]}

    @classmethod
    def from_dict(cls, payload: dict) -> "Covering":
        return cls(int(payload["n"]), tuple(CycleBlock(tuple(vs)) for vs in payload["blocks"]))

    @classmethod
    def from_vertex_lists(cls, n: int, cycles: Sequence[Sequence[int]]) -> "Covering":
        return cls(n, tuple(CycleBlock(tuple(c)) for c in cycles))

    # -- misc --------------------------------------------------------------

    def describe(self) -> str:
        """One-line summary used by examples and the experiment harness."""
        hist = ", ".join(f"{cnt}×C{size}" for size, cnt in self.size_histogram.items())
        return (
            f"Covering(n={self.n}): {self.num_blocks} cycles [{hist}], "
            f"excess={self.excess()}, DRC={'ok' if self.is_drc_feasible() else 'VIOLATED'}"
        )

    def _check_instance(self, instance: Instance) -> None:
        if instance.n != self.n:
            raise InvalidCoveringError(
                f"instance order {instance.n} does not match covering order {self.n}"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Covering(n={self.n}, blocks={self.num_blocks})"
