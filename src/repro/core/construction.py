"""Top-level construction API.

``optimal_covering(n)`` returns a DRC-covering of ``K_n`` over ``C_n``
with exactly ``ρ(n)`` cycles and the theorems' C3/C4 mix — the paper's
Theorem 1/2 objects.  ``fast_covering(n)`` is the always-polynomial
variant: identical for odd ``n``, and for even ``n`` a simple
pole-style deletion from the ladder that needs no completion search at
the cost of ``⌈(n/2 − 1)/2⌉`` extra cycles (useful for very large even
rings; the optimality gap is reported, never hidden).
"""

from __future__ import annotations

from ..util import circular
from ..util.errors import ConstructionError
from ..util.validation import as_int
from .blocks import CycleBlock, convex_block
from .covering import Covering
from .even import even_covering
from .formulas import rho
from .ladder import ladder_decomposition

__all__ = ["optimal_covering", "fast_covering", "optimality_gap"]


def optimal_covering(n: int) -> Covering:
    """The Theorem 1/2 optimal DRC-covering of ``K_n`` over ``C_n``.

    * odd ``n ≥ 3``: exact decomposition with ``p(p+1)/2`` cycles;
    * even ``n ≥ 4``: covering with ``⌈(p²+1)/2⌉`` cycles, excess ``p``
      (3 for ``n = 4``).
    """
    n = as_int(n, "n")
    if n < 3:
        raise ConstructionError(f"coverings need n ≥ 3, got {n}")
    if n % 2 == 1:
        return ladder_decomposition(n)
    return even_covering(n)


def fast_covering(n: int) -> Covering:
    """A guaranteed-polynomial DRC-covering: optimal for odd ``n``;
    for even ``n`` at most ``⌈(p−1)/2⌉`` cycles above ``ρ(n)``
    (``p = n/2``), built by deleting one vertex from the odd ladder of
    ``K_{n+1}`` and closing each fragment individually."""
    n = as_int(n, "n")
    if n < 3:
        raise ConstructionError(f"coverings need n ≥ 3, got {n}")
    if n % 2 == 1:
        return ladder_decomposition(n)
    if n == 4:
        return even_covering(4)

    odd = ladder_decomposition(n + 1)
    pole = n  # delete the largest label: survivors keep labels 0..n-1
    blocks: list[CycleBlock] = []
    for blk in odd.blocks:
        if pole not in blk.vertices:
            blocks.append(blk)
            continue
        vs = list(blk.vertices)
        i = vs.index(pole)
        path = vs[i + 1 :] + vs[:i]
        if len(path) == 2:
            # Leftover chord {a, b}: close through any third vertex.
            a, b = path
            c = next(v for v in range(n) if v not in (a, b))
            blocks.append(convex_block((a, b, c)))
        else:
            blocks.append(convex_block(tuple(path)))
    return Covering(n, tuple(blocks))


def optimality_gap(covering: Covering) -> int:
    """Number of cycles above the proven optimum ``ρ(n)`` (≥ 0 for any
    valid covering of All-to-All)."""
    return covering.num_blocks - rho(covering.n)
