"""Theorem 1 construction: optimal DRC-decomposition of ``K_n``, n odd.

The note states Theorem 1 without proof.  We reconstruct it with an
inductive *ladder*:

* Base: ``K_3`` is one triangle.
* Step ``2s+1 → 2s+3``: insert two new nodes ``x`` and ``y`` into the
  ring so that the two arcs between them hold ``s`` and ``s+1`` old
  nodes (sides ``A`` and ``B``).  Add the triangle ``(x, c, y)`` for one
  leftover node ``c ∈ B`` and the quads ``(x, a_i, y, b_i)`` for a
  pairing of the remaining ``A``/``B`` nodes.  The new blocks are convex
  by placement and cover exactly the new edges (each once): every old
  node needs its two new requests ``{u,x}, {u,y}`` covered, which the
  unique block containing it provides, and ``{x,y}`` comes from the
  triangle.

Counting: the step adds ``s+1`` blocks, so ``K_{2p+1}`` gets
``1 + Σ_{s=1}^{p-1}(s+1) = p(p+1)/2`` blocks — meeting the counting
lower bound — with ``p`` triangles and ``p(p−1)/2`` quads, exactly the
mix stated by Theorem 1.  The result is an exact decomposition (each
request covered once), which the verifier re-checks independently.
"""

from __future__ import annotations

from ..util.errors import ConstructionError
from ..util.validation import as_int, check_odd
from .blocks import CycleBlock
from .covering import Covering

__all__ = ["ladder_decomposition", "ladder_step_blocks"]


def ladder_decomposition(n: int) -> Covering:
    """The Theorem 1 optimal DRC-decomposition of ``K_n`` (odd ``n ≥ 3``).

    Runs in ``O(n²)`` time — proportional to the output size.
    """
    n = check_odd(as_int(n, "n"), "n")
    if n < 3:
        raise ConstructionError(f"odd construction needs n ≥ 3, got {n}")

    # Work with abstract node ids (creation order); keep the ring as the
    # id list in circular order, then relabel ids to ring positions at
    # the end so the output lives on the standard ring 0..n-1.
    ring: list[int] = [0, 1, 2]
    blocks: list[tuple[int, ...]] = [(0, 1, 2)]
    next_id = 3

    p = n // 2
    for s in range(1, p):
        x = next_id
        y = next_id + 1
        next_id += 2
        side_a = ring[:s]          # s old nodes, clockwise after x
        side_b = ring[s:]          # s+1 old nodes, clockwise after y
        # Triangle partner: last node of B (immediately counterclockwise
        # of x in the new ring).  Quads pair A and the rest of B in order.
        c = side_b[-1]
        blocks.append((x, c, y))
        for a, b in zip(side_a, side_b[:-1]):
            blocks.append((x, a, y, b))
        ring = [x, *side_a, y, *side_b]

    if len(ring) != n:
        raise ConstructionError(
            f"internal ladder error: ring has {len(ring)} nodes, expected {n}"
        )

    position = {node_id: pos for pos, node_id in enumerate(ring)}
    relabelled = tuple(
        CycleBlock(tuple(position[v] for v in blk)) for blk in blocks
    )
    return Covering(n, relabelled)


def ladder_step_blocks(s: int) -> int:
    """Number of blocks the ladder adds at step ``2s+1 → 2s+3``."""
    s = as_int(s, "s")
    if s < 1:
        raise ValueError(f"step index must be ≥ 1, got {s}")
    return s + 1
