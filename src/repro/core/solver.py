"""Exact solvers over convex blocks.

Two related engines, both bitmask-based (edge sets as Python ints so
set algebra is single machine-word-ish operations even for hundreds of
edges):

* :func:`exact_decomposition` — partition a prescribed edge set into
  *tight* convex blocks, each edge exactly once (used by the pole
  construction's completion step and by tests).
* :func:`solve_min_covering` — branch-and-bound minimum DRC-covering of
  a (small) instance, allowing excess.  This is the independent
  certifier for ρ(n): it knows nothing of the closed forms and explores
  the full block space with counting-bound pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..util import circular
from ..util.errors import SolverError
from .blocks import CycleBlock
from .covering import Covering

__all__ = [
    "enumerate_convex_blocks",
    "enumerate_tight_blocks",
    "exact_decomposition",
    "solve_min_covering",
    "SolverStats",
]


@dataclass
class SolverStats:
    """Search statistics, reported by the certifying benchmarks."""

    nodes: int = 0
    best_value: int | None = None
    proven_optimal: bool = False


# ---------------------------------------------------------------------------
# Block enumeration
# ---------------------------------------------------------------------------


def _gap_compositions(total: int, parts: int, max_part: int) -> list[tuple[int, ...]]:
    """All ordered compositions of ``total`` into ``parts`` positive parts
    each ≤ ``max_part`` (gap sequences of tight blocks)."""
    out: list[tuple[int, ...]] = []

    def rec(remaining: int, left: int, prefix: tuple[int, ...]) -> None:
        if left == 1:
            if 1 <= remaining <= max_part:
                out.append(prefix + (remaining,))
            return
        lo = max(1, remaining - max_part * (left - 1))
        hi = min(max_part, remaining - (left - 1))
        for g in range(lo, hi + 1):
            rec(remaining - g, left - 1, prefix + (g,))

    rec(total, parts, ())
    return out


@lru_cache(maxsize=64)
def enumerate_tight_blocks(n: int, max_size: int = 4) -> tuple[CycleBlock, ...]:
    """All *tight* convex blocks of size 3..max_size on ``C_n`` (gaps
    ≤ ⌊n/2⌋ summing to n), deduplicated by canonical rotation."""
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    half = n // 2
    seen: set[tuple[int, ...]] = set()
    blocks: list[CycleBlock] = []
    for size in range(3, max_size + 1):
        for gaps in _gap_compositions(n, size, half):
            for start in range(n):
                vs = [start]
                for g in gaps[:-1]:
                    vs.append((vs[-1] + g) % n)
                blk = CycleBlock(tuple(vs))
                if blk.canonical not in seen:
                    seen.add(blk.canonical)
                    blocks.append(blk)
    return tuple(blocks)


@lru_cache(maxsize=32)
def enumerate_convex_blocks(n: int, max_size: int = 4) -> tuple[CycleBlock, ...]:
    """All convex blocks of size 3..max_size on ``C_n`` (any gaps): one
    block per vertex subset, joined in circular order."""
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    from itertools import combinations

    blocks: list[CycleBlock] = []
    for size in range(3, max_size + 1):
        for subset in combinations(range(n), size):
            blocks.append(CycleBlock(subset))
    return tuple(blocks)


# ---------------------------------------------------------------------------
# Exact decomposition (edge-disjoint exact cover)
# ---------------------------------------------------------------------------


def exact_decomposition(
    n: int,
    edges: frozenset[tuple[int, int]],
    *,
    max_triangles: int | None = None,
    candidates: tuple[CycleBlock, ...] | None = None,
    node_limit: int = 5_000_000,
    strategy: str = "mrv",
) -> list[CycleBlock] | None:
    """Partition ``edges`` into tight convex blocks, each edge exactly
    once; returns ``None`` when no partition exists.

    ``max_triangles`` bounds the number of C3 blocks (the pole
    completion needs exactly one — enforced by edge counts, bounding
    merely prunes).  Deterministic DFS over bitmasks.

    ``strategy`` selects the branching variable: ``"mrv"`` (default)
    recomputes the fewest-live-candidates edge at every node —
    near-backtrack-free on the pole completions; ``"static"`` uses a
    one-shot scarcity order — cheaper per node but can thrash (kept for
    the ablation benchmark, which quantifies the difference).
    """
    if strategy not in ("mrv", "static"):
        raise SolverError(f"unknown branching strategy {strategy!r}")
    edge_list = sorted(edges)
    index = {e: i for i, e in enumerate(edge_list)}
    full_mask = (1 << len(edge_list)) - 1
    if full_mask == 0:
        return []

    pool = candidates if candidates is not None else enumerate_tight_blocks(n)
    usable: list[tuple[int, CycleBlock]] = []
    for blk in pool:
        bes = blk.edges()
        if all(e in index for e in bes):
            mask = 0
            for e in bes:
                mask |= 1 << index[e]
            usable.append((mask, blk))

    per_edge: list[list[tuple[int, CycleBlock]]] = [[] for _ in edge_list]
    for mask, blk in usable:
        m = mask
        while m:
            low = (m & -m).bit_length() - 1
            per_edge[low].append((mask, blk))
            m &= m - 1
    if any(not cands for cands in per_edge):
        return None

    nodes = 0

    static_rank: list[int] | None = None
    if strategy == "static":
        order = sorted(range(len(edge_list)), key=lambda i: len(per_edge[i]))
        static_rank = [0] * len(edge_list)
        for pos, i in enumerate(order):
            static_rank[i] = pos

    def static_choice(covered: int) -> tuple[int, list[tuple[int, CycleBlock]]]:
        assert static_rank is not None
        best = -1
        best_rank = len(edge_list) + 1
        m = (~covered) & full_mask
        while m:
            low = (m & -m).bit_length() - 1
            m &= m - 1
            if static_rank[low] < best_rank:
                best_rank = static_rank[low]
                best = low
        cands = [c for c in per_edge[best] if not c[0] & covered]
        return best, cands

    def most_constrained(covered: int) -> tuple[int, list[tuple[int, CycleBlock]]]:
        """Dynamic MRV: the uncovered edge with fewest live candidates.

        Scanning candidate lists per node costs more than a static order
        but keeps backtracking near zero on these structured instances
        (the paper-scale bottleneck is a thrashing search, not the scan).
        """
        best_edge = -1
        best_cands: list[tuple[int, CycleBlock]] = []
        best_count = 1 << 30
        m = (~covered) & full_mask
        while m:
            low = (m & -m).bit_length() - 1
            m &= m - 1
            count = 0
            cands: list[tuple[int, CycleBlock]] = []
            for cand in per_edge[low]:
                if not cand[0] & covered:
                    count += 1
                    cands.append(cand)
                    if count >= best_count:
                        break
            if count < best_count:
                best_count = count
                best_edge = low
                best_cands = cands
                if count <= 1:
                    break
        return best_edge, best_cands

    def dfs(covered: int, triangles_used: int, chosen: list[CycleBlock]) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"exact_decomposition exceeded node limit {node_limit} for n={n}"
            )
        if covered == full_mask:
            return True
        chooser = static_choice if strategy == "static" else most_constrained
        _, cands = chooser(covered)
        for mask, blk in cands:
            tri = 1 if blk.size == 3 else 0
            if max_triangles is not None and triangles_used + tri > max_triangles:
                continue
            chosen.append(blk)
            if dfs(covered | mask, triangles_used + tri, chosen):
                return True
            chosen.pop()
        return False

    chosen: list[CycleBlock] = []
    if dfs(0, 0, chosen):
        return chosen
    return None


# ---------------------------------------------------------------------------
# Minimum covering (branch & bound, excess allowed)
# ---------------------------------------------------------------------------


def solve_min_covering(
    n: int,
    *,
    upper_bound: int | None = None,
    max_size: int = 4,
    node_limit: int = 20_000_000,
    stats: SolverStats | None = None,
) -> Covering:
    """Certified minimum DRC-covering of ``K_n`` over ``C_n`` by cycles
    of length ≤ ``max_size``, by exhaustive branch and bound.

    Independent of the paper's formulas: the only pruning is the
    distance-counting bound applied to the *remaining* uncovered chords.
    Practical for ``n ≤ 9`` (``n = 10`` with patience); the benchmarks
    use it to certify the closed forms at small ``n``.
    """
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    if n > 12:
        raise SolverError(f"exact covering solver is for small n (≤ 12), got {n}")

    edge_list = sorted(circular.all_chords(n))
    index = {e: i for i, e in enumerate(edge_list)}
    dist = [circular.chord_distance(n, e) for e in edge_list]
    full_mask = (1 << len(edge_list)) - 1

    blocks = enumerate_convex_blocks(n, max_size)
    block_masks: list[tuple[int, CycleBlock]] = []
    for blk in blocks:
        mask = 0
        for e in blk.edges():
            mask |= 1 << index[e]
        block_masks.append((mask, blk))

    per_edge: list[list[tuple[int, CycleBlock]]] = [[] for _ in edge_list]
    for mask, blk in block_masks:
        m = mask
        while m:
            low = (m & -m).bit_length() - 1
            per_edge[low].append((mask, blk))
            m &= m - 1

    st = stats if stats is not None else SolverStats()
    best_blocks: list[CycleBlock] | None = None
    best_count = upper_bound if upper_bound is not None else len(edge_list)

    def remaining_bound(covered: int) -> int:
        """Counting lower bound on blocks needed for uncovered chords."""
        total = 0
        m = (~covered) & full_mask
        while m:
            low = (m & -m).bit_length() - 1
            total += dist[low]
            m &= m - 1
        return -(-total // n)

    def dfs(covered: int, used: int, chosen: list[CycleBlock]) -> None:
        nonlocal best_blocks, best_count
        st.nodes += 1
        if st.nodes > node_limit:
            raise SolverError(f"solver exceeded node limit {node_limit} for n={n}")
        if covered == full_mask:
            if used < best_count or best_blocks is None:
                best_count = used
                best_blocks = list(chosen)
            return
        if used + max(1, remaining_bound(covered)) >= best_count and best_blocks is not None:
            return
        if used + max(1, remaining_bound(covered)) > best_count:
            return
        # Branch on the lowest-index uncovered chord: every solution must
        # cover it, so trying exactly its candidate blocks is complete.
        m = (~covered) & full_mask
        target = (m & -m).bit_length() - 1
        for mask, blk in per_edge[target]:
            chosen.append(blk)
            dfs(covered | mask, used + 1, chosen)
            chosen.pop()

    dfs(0, 0, [])
    if best_blocks is None:
        raise SolverError(f"no covering found for n={n} (node limit too small?)")
    st.best_value = best_count
    st.proven_optimal = True
    return Covering(n, tuple(best_blocks))


# ---------------------------------------------------------------------------
# Minimum covering of an arbitrary instance (multiplicities allowed)
# ---------------------------------------------------------------------------


def solve_min_covering_instance(
    instance: "Instance",
    *,
    max_size: int = 4,
    node_limit: int = 20_000_000,
    stats: SolverStats | None = None,
) -> Covering:
    """Certified minimum DRC-covering of an arbitrary instance on
    ``C_n`` (multiplicities supported — e.g. ``λK_n``), by branch and
    bound over convex blocks.

    Exponential; intended for tiny instances (``n ≤ 8``-ish, small λ).
    This is the certifier behind the λK_n experiment's exact values.
    """
    from ..traffic.instances import Instance  # local: avoid import cycle

    if not isinstance(instance, Instance):
        raise SolverError(f"expected an Instance, got {type(instance).__name__}")
    n = instance.n
    if n < 3:
        raise SolverError(f"n ≥ 3 required, got {n}")
    if n > 10:
        raise SolverError(f"instance solver is for small n (≤ 10), got {n}")

    residual: dict[tuple[int, int], int] = {
        e: m for e, m in instance.demand.items() if m > 0
    }
    if not residual:
        return Covering(n, ())
    total_demand = sum(residual.values())
    dist = {e: circular.chord_distance(n, e) for e in residual}

    blocks = enumerate_convex_blocks(n, max_size)
    per_edge: dict[tuple[int, int], list[tuple[CycleBlock, tuple[tuple[int, int], ...]]]] = {
        e: [] for e in residual
    }
    for blk in blocks:
        edges = blk.edges()
        for e in edges:
            if e in per_edge:
                per_edge[e].append((blk, edges))

    st = stats if stats is not None else SolverStats()
    best_blocks: list[CycleBlock] | None = None
    best_count = total_demand + 1  # trivial upper bound: one block per unit

    remaining_distance = sum(m * dist[e] for e, m in residual.items())

    def bound() -> int:
        return -(-remaining_distance // n)

    def pick_target() -> tuple[int, int] | None:
        best: tuple[int, int] | None = None
        for e, m in residual.items():
            if m > 0 and (best is None or e < best):
                best = e
        return best

    def dfs(used: int, chosen: list[CycleBlock]) -> None:
        nonlocal best_blocks, best_count, remaining_distance
        st.nodes += 1
        if st.nodes > node_limit:
            raise SolverError(f"instance solver exceeded node limit {node_limit}")
        target = pick_target()
        if target is None:
            if used < best_count:
                best_count = used
                best_blocks = list(chosen)
            return
        if used + max(1, bound()) >= best_count:
            return
        for blk, edges in per_edge[target]:
            decremented: list[tuple[int, int]] = []
            delta = 0
            for e in edges:
                m = residual.get(e, 0)
                if m > 0:
                    residual[e] = m - 1
                    decremented.append(e)
                    delta += dist[e]
            remaining_distance -= delta
            chosen.append(blk)
            dfs(used + 1, chosen)
            chosen.pop()
            remaining_distance += delta
            for e in decremented:
                residual[e] += 1

    dfs(0, [])
    if best_blocks is None:
        raise SolverError("no covering found (node limit too small?)")
    st.best_value = best_count
    st.proven_optimal = True
    return Covering(n, tuple(best_blocks))
