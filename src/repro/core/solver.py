"""Exact solvers over convex blocks — compatibility façade.

The solver implementations live in :mod:`repro.core.engine`, which
unifies the three historical engines (tight exact decomposition,
min covering of ``K_n``, min covering of an arbitrary instance) over
one shared bitmask kernel with a single counting prune, dihedral
symmetry breaking, and greedy incumbent seeding.  This module keeps the
historical import surface:

* :func:`exact_decomposition` — partition a prescribed edge set into
  *tight* convex blocks, each edge exactly once (used by the pole
  construction's completion step and by tests).
* :func:`solve_min_covering` — branch-and-bound minimum DRC-covering of
  a (small) instance, allowing excess.  This is the independent
  certifier for ρ(n): it knows nothing of the closed forms and explores
  the full block space with counting-bound pruning.
* :func:`solve_min_covering_instance` — the same for arbitrary demand
  (multiplicities supported, e.g. ``λK_n``).
* :func:`solve_min_covering_sharded` — the root-orbit-sharded scale-out
  path of the same certification (PR 2).
"""

from __future__ import annotations

from .engine import (
    SolverEngine,
    SolverStats,
    enumerate_convex_blocks,
    enumerate_tight_blocks,
    exact_decomposition,
    solve_many,
    solve_min_covering,
    solve_min_covering_instance,
    solve_min_covering_sharded,
)

__all__ = [
    "SolverEngine",
    "enumerate_convex_blocks",
    "enumerate_tight_blocks",
    "exact_decomposition",
    "solve_many",
    "solve_min_covering",
    "solve_min_covering_instance",
    "solve_min_covering_sharded",
    "SolverStats",
]
