"""Exact solvers over convex blocks — **deprecated** compatibility façade.

The solver implementations live in :mod:`repro.core.engine`; the
supported way to reach them is the declarative :mod:`repro.api` layer::

    from repro.api import CoverSpec, solve

    solve(CoverSpec.for_ring(9))                                # routed
    solve(CoverSpec.for_ring(9, backend="exact", use_hints=False))  # certify
    solve(CoverSpec.from_instance(inst))                        # λK_n / custom

This module keeps the historical free-function import surface for
out-of-tree callers and old notebooks.  Each call emits a
:class:`DeprecationWarning` naming the replacement spec; behaviour is
otherwise unchanged (the functions delegate to the same engine the API
backends run).  ``SolverEngine``, ``SolverStats``, and the block
enumerators re-export silently — they are the implementation layer the
API wraps, not a deprecated surface.

Deprecation path: the warnings land in this release; the free functions
will be removed once no in-repo caller outside ``repro/api`` remains
(already true) and downstream users have had a release to migrate.
"""

from __future__ import annotations

import warnings

from .engine import (
    SolverEngine,
    SolverStats,
    enumerate_convex_blocks,
    enumerate_tight_blocks,
)
from .engine import exact_decomposition as _exact_decomposition
from .engine import solve_many as _solve_many
from .engine import solve_min_covering as _solve_min_covering
from .engine import solve_min_covering_instance as _solve_min_covering_instance
from .engine import solve_min_covering_sharded as _solve_min_covering_sharded

__all__ = [
    "SolverEngine",
    "enumerate_convex_blocks",
    "enumerate_tight_blocks",
    "exact_decomposition",
    "solve_many",
    "solve_min_covering",
    "solve_min_covering_instance",
    "solve_min_covering_sharded",
    "SolverStats",
]


def _message(name: str, replacement: str) -> str:
    return (
        f"repro.core.solver.{name} is deprecated; use {replacement} "
        "(see repro.api)"
    )


# Each wrapper calls warnings.warn itself with stacklevel=2 — one frame
# up from the wrapper is the *caller's own line*, which is what the
# warning must point at (a shared helper would need a fragile
# stacklevel=3 that breaks the moment anyone adds a frame).


def exact_decomposition(*args, **kwargs):
    """Deprecated alias of :func:`repro.core.engine.exact_decomposition`."""
    warnings.warn(
        _message("exact_decomposition", "repro.core.engine.exact_decomposition"),
        DeprecationWarning,
        stacklevel=2,
    )
    return _exact_decomposition(*args, **kwargs)


def solve_min_covering(*args, **kwargs):
    """Deprecated; use ``api.solve(CoverSpec.for_ring(n, backend='exact'))``."""
    warnings.warn(
        _message(
            "solve_min_covering", "api.solve(CoverSpec.for_ring(n, backend='exact'))"
        ),
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_min_covering(*args, **kwargs)


def solve_min_covering_sharded(*args, **kwargs):
    """Deprecated; use ``api.solve(CoverSpec.for_ring(n, backend='exact_sharded'))``."""
    warnings.warn(
        _message(
            "solve_min_covering_sharded",
            "api.solve(CoverSpec.for_ring(n, backend='exact_sharded'))",
        ),
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_min_covering_sharded(*args, **kwargs)


def solve_min_covering_instance(*args, **kwargs):
    """Deprecated; use ``api.solve(CoverSpec.from_instance(instance))``."""
    warnings.warn(
        _message(
            "solve_min_covering_instance",
            "api.solve(CoverSpec.from_instance(instance, backend='exact'))",
        ),
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_min_covering_instance(*args, **kwargs)


def solve_many(*args, **kwargs):
    """Deprecated; use ``api.solve_batch([CoverSpec.for_ring(n) for n in ns])``."""
    warnings.warn(
        _message("solve_many", "api.solve_batch([CoverSpec.for_ring(n) for n in ns])"),
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_many(*args, **kwargs)
