"""Cycle blocks: the subnetworks ``I_k`` of the paper.

A :class:`CycleBlock` is a cycle in the *logical* graph — an ordered
tuple of distinct vertices; its edges (consecutive pairs, cyclically)
are the requests the subnetwork carries.  On a ring physical network a
block is DRC-routable iff its vertices appear in ring circular order
(see :mod:`repro.core.drc`), in which case we call it *convex*: drawn on
a circle its edges form a convex polygon.

Blocks are value objects: immutable, hashable by canonical rotation, and
cheap to create in bulk (constructions produce ``Θ(n²)`` of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..util import circular
from ..util.errors import InvalidBlockError

__all__ = ["CycleBlock", "triangle", "quad", "convex_block"]


@dataclass(frozen=True)
class CycleBlock:
    """A logical cycle ``(v_0, v_1, ..., v_{k-1})`` with ``k ≥ 3``.

    The vertex order is the cycle order; the block covers the requests
    ``{v_i, v_{i+1 mod k}}``.  Equality and hashing are by canonical
    rotation/reflection, so two blocks describing the same subnetwork
    compare equal regardless of starting vertex or direction.
    """

    vertices: tuple[int, ...]

    def __post_init__(self) -> None:
        vs = tuple(int(v) for v in self.vertices)
        if len(vs) < 3:
            raise InvalidBlockError(f"a cycle block needs ≥ 3 vertices, got {vs!r}")
        if len(set(vs)) != len(vs):
            raise InvalidBlockError(f"cycle block has repeated vertices: {vs!r}")
        if any(v < 0 for v in vs):
            raise InvalidBlockError(f"cycle block has negative vertex ids: {vs!r}")
        object.__setattr__(self, "vertices", vs)

    # -- structure ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def size(self) -> int:
        """Number of vertices = number of requests covered."""
        return len(self.vertices)

    @cached_property
    def canonical(self) -> tuple[int, ...]:
        """Canonical representative under rotation + reflection."""
        return circular.canonical_rotation(self.vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CycleBlock):
            return NotImplemented
        return self.canonical == other.canonical

    def __hash__(self) -> int:
        return hash(self.canonical)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """The requests covered by this subnetwork, as normalised chords."""
        vs = self.vertices
        k = len(vs)
        return tuple(circular.chord(vs[i], vs[(i + 1) % k]) for i in range(k))

    def contains_edge(self, e: tuple[int, int]) -> bool:
        a, b = min(e), max(e)
        return (a, b) in self.edges()

    # -- ring geometry (needs the ring order n) -------------------------

    def gaps(self, n: int) -> list[int]:
        """Clockwise ring gaps between consecutive block vertices."""
        self._check_ring(n)
        return circular.gaps_of_cycle(n, self.vertices)

    def is_convex(self, n: int) -> bool:
        """DRC-feasibility on ``C_n``: vertices in ring circular order."""
        self._check_ring(n)
        return circular.is_circular_order(n, self.vertices)

    def distance_sum(self, n: int) -> int:
        """Sum of ring distances of the covered requests (≤ n for convex
        blocks; = n exactly for *tight* blocks)."""
        self._check_ring(n)
        return sum(circular.chord_distance(n, e) for e in self.edges())

    def is_tight(self, n: int) -> bool:
        """Tight blocks meet the counting lower bound with equality: the
        block is convex and every gap is at most ``⌊n/2⌋``."""
        if not self.is_convex(n):
            return False
        half = n // 2
        gs = self.gaps(n)
        if sum(gs) != n:  # counterclockwise listing: normalise mentally
            gs = [n - g for g in reversed(gs)]
        return all(g <= half for g in gs)

    def oriented(self, n: int) -> "CycleBlock":
        """The same block listed in clockwise circular order (convex
        blocks only) — convenient normal form for routing extraction."""
        if not self.is_convex(n):
            raise InvalidBlockError(f"block {self.vertices!r} is not convex on C_{n}")
        return CycleBlock(tuple(sorted(self.vertices)))

    def _check_ring(self, n: int) -> None:
        if max(self.vertices) >= n:
            raise InvalidBlockError(
                f"block {self.vertices!r} has vertices outside ring of order {n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CycleBlock{self.vertices!r}"


def triangle(a: int, b: int, c: int) -> CycleBlock:
    """A C3 block on three vertices (every triangle is convex)."""
    return CycleBlock((a, b, c))


def quad(a: int, b: int, c: int, d: int) -> CycleBlock:
    """A C4 block in the given cycle order."""
    return CycleBlock((a, b, c, d))


def convex_block(vertices: tuple[int, ...] | list[int]) -> CycleBlock:
    """The unique convex (DRC-routable) block on a vertex set: vertices
    joined in circular order."""
    return CycleBlock(circular.convex_cycle(vertices))
