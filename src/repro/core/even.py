"""Theorem 2 constructions: optimal DRC-coverings of ``K_n``, n even.

Two complementary mechanisms (derived here; the note omits proofs):

* ``n ≡ 2 (mod 4)`` — **pole deletion**.  Take the pole decomposition
  of ``K_{n+1}`` (:mod:`repro.core.pole`), delete the pole: each block
  through the pole loses its two pole edges and leaves a fragment —
  a single chord (from a triangle) or a 2-edge path (from the quad).
  The fragments were engineered nested, so chord pairs merge into
  convex quads (two closing chords each = excess 2) and the path closes
  into a triangle (excess 1).  Counting: ``ρ(n+1) − p + (q+1)
  = ⌈(p²+1)/2⌉`` blocks with mix 2×C3 + (2q²+2q−1)×C4 and total excess
  ``p`` — exactly Theorem 2's statement for ``n = 4q+2``.

* ``n ≡ 0 (mod 4)`` — **clean insertion**.  From the optimal covering
  of ``n−2 ≡ 2 (mod 4)``, insert two antipodal nodes ``x, y``; cover all
  new requests with 2 triangles ``(x, c_i, y)`` and ``p−2`` quads
  ``(x, a, y, b)`` pairing the two arcs.  Only ``{x,y}`` is covered
  twice (once per triangle), so excess grows by exactly 1, giving mix
  4×C3 + (2q²−3)×C4 and excess ``p`` for ``n = 4q`` — again Theorem 2.

* ``n = 4`` — the paper's own example covering
  ``{C4(1,2,3,4), C3(1,2,4), C3(1,3,4)}`` (0-based here).
"""

from __future__ import annotations

from functools import lru_cache

from ..util import circular
from ..util.errors import ConstructionError
from ..util.validation import as_int, check_even
from .blocks import CycleBlock, convex_block
from .covering import Covering
from .formulas import rho
from .pole import POLE, pole_decomposition

__all__ = ["even_covering", "merge_fragments", "pole_fragments"]


def even_covering(n: int) -> Covering:
    """Optimal DRC-covering of ``K_n`` over ``C_n`` for even ``n ≥ 4``."""
    n = check_even(as_int(n, "n"), "n")
    if n < 4:
        raise ConstructionError(f"even construction needs n ≥ 4, got {n}")
    if n == 4:
        return Covering(
            4,
            (
                CycleBlock((0, 1, 2, 3)),
                CycleBlock((0, 1, 3)),
                CycleBlock((0, 2, 3)),
            ),
        )
    if n % 4 == 2:
        return _pole_deletion(n)
    return _clean_insertion(n)


# ---------------------------------------------------------------------------
# n ≡ 2 (mod 4): pole deletion
# ---------------------------------------------------------------------------


def pole_fragments(
    covering: Covering, pole: int
) -> tuple[list[CycleBlock], list[tuple[int, int]], list[tuple[int, ...]]]:
    """Split ``covering`` by deleting vertex ``pole``.

    Returns ``(survivors, single_chords, paths)`` where ``survivors``
    are blocks avoiding the pole, ``single_chords`` are the leftover
    request of each pole triangle, and ``paths`` are the leftover vertex
    paths (in order) of larger pole blocks.
    """
    survivors: list[CycleBlock] = []
    singles: list[tuple[int, int]] = []
    paths: list[tuple[int, ...]] = []
    for blk in covering.blocks:
        if pole not in blk.vertices:
            survivors.append(blk)
            continue
        vs = list(blk.vertices)
        i = vs.index(pole)
        # Rotate so the pole is first; the remaining vertices, in block
        # order, form the fragment path (its edges are the block's edges
        # not incident to the pole).
        path = tuple(vs[i + 1 :] + vs[:i])
        if len(path) == 2:
            singles.append(circular.chord(path[0], path[1]))
        else:
            paths.append(path)
    return survivors, singles, paths


def merge_fragments(n: int, e: tuple[int, int], f: tuple[int, int]) -> CycleBlock | None:
    """Merge two leftover chords into a single convex block covering
    both, or ``None`` when impossible (crossing chords never share a
    convex cycle)."""
    vertices = set(e) | set(f)
    if len(vertices) < 3:
        return None
    blk = convex_block(tuple(vertices))
    edges = blk.edges()
    if tuple(sorted(e)) in edges and tuple(sorted(f)) in edges:
        return blk
    return None


def _match_singles(n: int, singles: list[tuple[int, int]]) -> list[CycleBlock] | None:
    """Pair leftover chords into convex merge blocks (perfect matching
    by backtracking — the pole construction guarantees a nested perfect
    matching exists, but the search keeps this robust to variants)."""
    if len(singles) % 2 != 0:
        return None

    merged: list[CycleBlock] = []
    remaining = sorted(singles)

    def backtrack(pool: list[tuple[int, int]]) -> bool:
        if not pool:
            return True
        first = pool[0]
        for j in range(1, len(pool)):
            blk = merge_fragments(n, first, pool[j])
            if blk is None:
                continue
            merged.append(blk)
            if backtrack(pool[1:j] + pool[j + 1 :]):
                return True
            merged.pop()
        return False

    if not backtrack(remaining):
        return None
    return merged


@lru_cache(maxsize=128)
def _pole_deletion(n: int) -> Covering:
    """Theorem 2 covering for ``n = 4q+2`` via pole deletion."""
    pole_cov = pole_decomposition(n + 1)
    survivors, singles, paths = pole_fragments(pole_cov, POLE)

    merged = _match_singles(n + 1, singles)
    if merged is None:
        raise ConstructionError(
            f"pole fragments for n={n} admit no non-crossing perfect matching"
        )
    closures = [convex_block(path) for path in paths]
    for path, blk in zip(paths, closures):
        # Closing a fragment path must keep all its edges: true whenever
        # the path is monotone on the ring, which pole quads guarantee.
        path_edges = {
            circular.chord(path[i], path[i + 1]) for i in range(len(path) - 1)
        }
        if not path_edges.issubset(set(blk.edges())):
            raise ConstructionError(
                f"fragment path {path} does not close into a convex block"
            )

    blocks = survivors + merged + closures
    # Delete the pole label (0) and shift everything down by one; the
    # relabelling preserves circular order, hence convexity.
    relabelled = tuple(
        CycleBlock(tuple(v - 1 for v in blk.vertices)) for blk in blocks
    )
    covering = Covering(n, relabelled)
    if covering.num_blocks != rho(n):
        raise ConstructionError(
            f"pole deletion produced {covering.num_blocks} blocks for n={n}, "
            f"expected ρ = {rho(n)}"
        )
    return covering


# ---------------------------------------------------------------------------
# n ≡ 0 (mod 4): clean insertion
# ---------------------------------------------------------------------------


def _clean_insertion(n: int) -> Covering:
    """Theorem 2 covering for ``n = 4q`` by inserting two antipodal
    nodes into the optimal covering of ``n−2``."""
    m = n - 2
    base = even_covering(m)
    half = m // 2

    def relabel(v: int) -> int:
        # x takes label 0; old 0..half-1 shift to 1..half (arc A);
        # y takes label half+1; old half..m-1 shift to half+2..n-1.
        return v + 1 if v < half else v + 2

    old_blocks = tuple(
        CycleBlock(tuple(relabel(v) for v in blk.vertices)) for blk in base.blocks
    )

    x, y = 0, half + 1
    side_a = list(range(1, half + 1))          # relabelled old arc A
    side_b = list(range(half + 2, n))          # relabelled old arc B
    c1, c2 = side_a[-1], side_b[-1]
    new_blocks: list[CycleBlock] = [
        CycleBlock((x, c1, y)),
        CycleBlock((x, c2, y)),
    ]
    for a, b in zip(side_a[:-1], side_b[:-1]):
        new_blocks.append(CycleBlock((x, a, y, b)))

    covering = Covering(n, old_blocks + tuple(new_blocks))
    if covering.num_blocks != rho(n):
        raise ConstructionError(
            f"clean insertion produced {covering.num_blocks} blocks for n={n}, "
            f"expected ρ = {rho(n)}"
        )
    return covering
