"""Local-search improvement of DRC coverings.

The exact solver certifies ρ(n) for small n; beyond its reach the repo
previously had only the one-shot greedy baseline.  This module closes
the gap with a deterministic local-search *improver* built on the
O(block) delta machinery of :class:`~repro.core.ledger.CoverageLedger`
(via :meth:`~repro.core.covering.Covering.replace_block` and friends):

* **eject** — drop any block whose removal leaves every demand
  satisfied (:meth:`Covering.is_redundant_block`).
* **merge (2 → 1)** — when the *binding* edges of two blocks (the edges
  only they provide, :meth:`Covering.binding_edges`) fit inside one
  candidate block, replace the pair by it.
* **replace (1 → 1)** — swap a block for a strictly smaller candidate
  that still covers its binding edges, shrinking total slots (excess)
  and unlocking future ejects/merges.
* **ruin & recreate** — deterministically remove a small window of
  blocks, re-cover the violated demand greedily (most residual demand
  first, ties toward lower wasted coverage mass), re-run the cheap
  moves, and keep the result only if it is strictly smaller.

Every accepted move strictly decreases ``(num_blocks, total_slots)``
lexicographically, so the search terminates; all scans run in a fixed
order, so the result is deterministic.  The engine seeds its
branch-and-bound incumbents from :func:`improve_covering` (better
incumbents mean earlier pruning), and for large n (~40) the improver is
the practical tier: it tightens greedy coverings long after exact
certification stops being tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traffic.instances import Instance, all_to_all
from ..util.errors import SolverError
from .covering import Covering
from .engine import BlockTable, SolverEngine, edge_space
from .objective import Objective, resolve_objective

__all__ = ["ImproveStats", "improve_covering", "improved_greedy_covering"]

# Beyond this ring size the full convex pool (Θ(n⁴) blocks) stops paying
# for itself; the tight pool reaches every chord and stays Θ(n³).
AUTO_CONVEX_LIMIT = 12


@dataclass
class ImproveStats:
    """Move counts reported by :func:`improve_covering`."""

    rounds: int = 0
    ejects: int = 0
    merges: int = 0
    replaces: int = 0
    repairs_tried: int = 0
    repairs_accepted: int = 0
    start_blocks: int = 0
    end_blocks: int = 0


def _resolve_pool(n: int, pool: str) -> str:
    if pool == "auto":
        return "convex" if n <= AUTO_CONVEX_LIMIT else "tight"
    if pool not in ("convex", "tight"):
        raise SolverError(f"unknown candidate pool {pool!r}")
    return pool


def _find_covering_candidate(
    table: BlockTable, space, need: tuple[tuple[int, int], ...]
) -> int | None:
    """Smallest candidate block covering every chord in ``need`` (ties
    toward enumeration order); ``None`` when no candidate does."""
    need_mask = 0
    for e in need:
        need_mask |= 1 << space.index[e]
    if need_mask == 0:
        return None
    # Scan the candidate list of the scarcest needed chord only.
    rare = min((space.index[e] for e in need), key=lambda b: len(table.per_edge[b]))
    best: int | None = None
    for i in table.per_edge[rare]:
        if need_mask & ~table.masks[i] == 0:
            if best is None or len(table.blocks[i]) < len(table.blocks[best]):
                best = i
    return best


def _eject_pass(cov: Covering, inst: Instance, st: ImproveStats) -> Covering:
    k = len(cov.blocks) - 1
    while k >= 0:
        if cov.is_redundant_block(k, inst):
            cov = cov.without_block(k)
            st.ejects += 1
        k -= 1
    return cov


def _merge_pass(
    cov: Covering, inst: Instance, table: BlockTable, space, st: ImproveStats
) -> tuple[Covering, bool]:
    """First applicable 2 → 1 merge, scanning pairs in index order."""
    nblocks = len(cov.blocks)
    binding = [cov.binding_edges(i, inst) for i in range(nblocks)]
    pool_max = max((blk.size for blk in table.blocks), default=0)
    for a in range(nblocks):
        if len(binding[a]) >= pool_max:
            continue
        blk_a = cov.blocks[a]
        for b in range(a + 1, nblocks):
            blk_b = cov.blocks[b]
            # Edges that would fall below demand with *both* blocks gone.
            # Scanning every edge of the pair matters: an edge covered
            # exactly twice — once by each block — is binding for
            # neither, yet loses all coverage when both are removed.
            # The single replacement block restores at most one copy per
            # edge, so a shortfall of two (multiplicity-λ demand met by
            # both blocks jointly) makes the pair unmergeable.
            need: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            unmergeable = False
            for e in blk_a.edges() + blk_b.edges():
                if e in seen:
                    continue
                seen.add(e)
                contrib = blk_a.edges().count(e) + blk_b.edges().count(e)
                shortfall = inst.required(e) - (cov.multiplicity(e) - contrib)
                if shortfall >= 2:
                    unmergeable = True
                    break
                if shortfall == 1:
                    need.append(e)
            if unmergeable or len(need) > pool_max:
                continue
            cand = _find_covering_candidate(table, space, tuple(need))
            if cand is None:
                continue
            merged = cov.replace_block(a, table.blocks[cand]).without_block(b)
            st.merges += 1
            return merged, True
    return cov, False


def _replace_pass(
    cov: Covering, inst: Instance, table: BlockTable, space, st: ImproveStats
) -> tuple[Covering, bool]:
    """First slot-shrinking 1 → 1 replacement, in index order."""
    for k in range(len(cov.blocks)):
        need = cov.binding_edges(k, inst)
        cand = _find_covering_candidate(table, space, need)
        if cand is not None and table.blocks[cand].size < cov.blocks[k].size:
            cov = cov.replace_block(k, table.blocks[cand])
            st.replaces += 1
            return cov, True
    return cov, False


def _greedy_repair(
    cov: Covering,
    inst: Instance,
    engine: SolverEngine,
    pool: str,
    allowed_sizes: tuple[int, ...] | None = None,
) -> Covering | None:
    """Extend ``cov`` until it covers ``inst`` again, reusing the
    engine's shared max-coverage greedy kernel on the residual demand.
    ``None`` if the (possibly size-restricted) pool cannot finish the
    repair."""
    residual: dict[tuple[int, int], int] = {}
    for e, m in inst.demand.items():
        short = m - cov.multiplicity(e)
        if short > 0:
            residual[e] = short
    chosen, leftover = engine.greedy_cover_indices(
        residual, pool=pool, allowed_sizes=allowed_sizes
    )
    if leftover:
        return None
    table = engine._table(pool, allowed_sizes)
    return cov.with_blocks(table.blocks[i] for i in chosen)


def improve_covering(
    covering: Covering,
    instance: Instance | None = None,
    *,
    pool: str = "auto",
    max_size: int = 4,
    max_rounds: int = 4,
    ruin_width: int = 2,
    stats: ImproveStats | None = None,
    objective: Objective | str | None = None,
    allowed_sizes: tuple[int, ...] | None = None,
) -> Covering:
    """Tighten ``covering`` for ``instance`` (default All-to-All) by
    deterministic local search; never returns a worse covering (under
    the objective's move-scoring key) and never breaks feasibility.

    ``objective`` supplies the lexicographic acceptance key the search
    minimises (default ``min_blocks``: fewer blocks first, then fewer
    slots — the historical rule); ``allowed_sizes`` restricts every
    candidate the moves may introduce, so a restricted covering stays
    restricted.  ``max_rounds`` bounds the outer ruin-&-recreate rounds
    (the cheap eject/merge/replace moves always run to their fixpoint);
    ``ruin_width`` is the number of consecutive blocks each ruin window
    removes.  Move counts are reported through ``stats``.
    """
    inst = instance if instance is not None else all_to_all(covering.n)
    if inst.n != covering.n:
        raise SolverError(f"instance order {inst.n} ≠ covering order {covering.n}")
    if not covering.covers(inst):
        raise SolverError("improve_covering needs a feasible covering to start from")
    obj = resolve_objective(objective)
    st = stats if stats is not None else ImproveStats()
    st.start_blocks = covering.num_blocks
    pool_name = _resolve_pool(covering.n, pool)
    engine = SolverEngine(covering.n, max_size=max_size)
    table = engine._table(pool_name, allowed_sizes)
    space = edge_space(covering.n)

    def fixpoint(cov: Covering) -> Covering:
        while True:
            cov = _eject_pass(cov, inst, st)
            cov, merged = _merge_pass(cov, inst, table, space, st)
            if merged:
                continue
            cov, replaced = _replace_pass(cov, inst, table, space, st)
            if not replaced:
                return cov

    best = fixpoint(covering)
    for _ in range(max_rounds):
        st.rounds += 1
        improved = False
        width = min(ruin_width, max(1, best.num_blocks - 1))
        for start in range(best.num_blocks - width + 1):
            st.repairs_tried += 1
            ruined = best
            for _k in range(width):
                ruined = ruined.without_block(start)
            repaired = _greedy_repair(ruined, inst, engine, pool_name, allowed_sizes)
            if repaired is None:
                continue
            repaired = fixpoint(repaired)
            # Lexicographic acceptance under the objective's key (for
            # min_blocks: fewer blocks, or the same count with less
            # excess — slot-shaving plateau walks are what later merges
            # feed on); the strict decrease guarantees termination.
            if obj.improvement_key(repaired) < obj.improvement_key(best):
                best = repaired
                st.repairs_accepted += 1
                improved = True
                break
        if not improved:
            break
    st.end_blocks = best.num_blocks
    return best


def improved_greedy_covering(
    n: int,
    instance: Instance | None = None,
    *,
    pool: str = "auto",
    max_size: int = 4,
    max_rounds: int = 4,
    stats: ImproveStats | None = None,
    objective: Objective | str | None = None,
    allowed_sizes: tuple[int, ...] | None = None,
) -> Covering:
    """Greedy covering tightened by :func:`improve_covering` — the
    large-n heuristic tier (greedy is within a few blocks of ρ(n) for
    small n but drifts; local search claws most of that back).
    Objective-generic; a size restriction raises
    :class:`SolverError` when no admitted pool reaches every request."""
    inst = instance if instance is not None else all_to_all(n)
    engine = SolverEngine(n, max_size=max_size)
    pool_name = _resolve_pool(n, pool)
    # Start from the tight-pool greedy (the stronger baseline: tight
    # blocks waste no coverage mass) whenever it reaches every request;
    # the improver may still swap in non-tight pool blocks afterwards.
    # The convex pool is the fallback — it can reach any demand.
    try:
        cov = engine.greedy_cover(inst, pool="tight", allowed_sizes=allowed_sizes)
    except SolverError:
        cov = engine.greedy_cover(inst, pool="convex", allowed_sizes=allowed_sizes)
        pool_name = "convex"
    return improve_covering(
        cov,
        inst,
        pool=pool_name,
        max_size=max_size,
        max_rounds=max_rounds,
        stats=stats,
        objective=objective,
        allowed_sizes=allowed_sizes,
    )
