"""Closed-form values from the paper.

``rho(n)`` is the paper's optimum (Theorems 1 and 2);
``theorem_cycle_mix(n)`` the C3/C4 composition the theorems state;
``optimal_excess(n)`` the total over-coverage of those optimal
coverings; and ``triangle_covering_number(n)`` the non-DRC baseline the
paper cites from Mills–Mullin / Stanton–Rogers.
"""

from __future__ import annotations

from math import ceil

from ..util import circular
from ..util.validation import as_int

__all__ = [
    "rho",
    "theorem_cycle_mix",
    "optimal_excess",
    "counting_bound",
    "triangle_covering_number",
    "cycle_cover_lower_bound",
    "rho_lambda_lower_bound",
]


def rho(n: int) -> int:
    """Minimum number of cycles in a DRC-covering of ``K_n`` over ``C_n``.

    * Theorem 1: ``n = 2p+1 ⇒ ρ = p(p+1)/2``.
    * Theorem 2: ``n = 2p (p ≥ 3) ⇒ ρ = ⌈(p²+1)/2⌉``; the same formula
      happens to hold for ``n = 4`` (ρ = 3, the paper's own example) and
      ``n = 6``.

    Defined for ``n ≥ 3``.
    """
    n = as_int(n, "n")
    if n < 3:
        raise ValueError(f"rho(n) needs n ≥ 3, got {n}")
    p = n // 2
    if n % 2 == 1:
        return p * (p + 1) // 2
    return (p * p + 1 + 1) // 2  # ⌈(p²+1)/2⌉


def theorem_cycle_mix(n: int) -> dict[int, int]:
    """Cycle-length histogram of the theorems' optimal coverings.

    Returns ``{3: #C3, 4: #C4}``:

    * ``n = 2p+1``: ``p`` C3 and ``p(p−1)/2`` C4 (Theorem 1);
    * ``n = 4q (q ≥ 2)``: 4 C3 and ``2q²−3`` C4 (Theorem 2);
    * ``n = 4q+2 (q ≥ 1)``: 2 C3 and ``2q²+2q−1`` C4 (Theorem 2);
    * ``n = 3, 4, 5``: small cases (n=4 is the paper's 1×C4 + 2×C3).
    """
    n = as_int(n, "n")
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    if n == 3:
        return {3: 1, 4: 0}
    if n == 4:
        return {3: 2, 4: 1}
    if n % 2 == 1:
        p = n // 2
        return {3: p, 4: p * (p - 1) // 2}
    if n % 4 == 0:
        q = n // 4
        return {3: 4, 4: 2 * q * q - 3}
    q = (n - 2) // 4
    return {3: 2, 4: 2 * q * q + 2 * q - 1}


def optimal_excess(n: int) -> int:
    """Total over-coverage of the theorems' optimal coverings.

    Odd ``n``: the covering is an exact decomposition (0).  Even
    ``n ≥ 6``: exactly ``p = n/2`` (forced by the stated C3/C4 mix).
    ``n = 4``: 4 — the paper's example covering (1×C4 + 2×C3 has
    3+3+4 = 10 slots over 6 edges; a 3-triangle covering would achieve
    excess 3 but is not the one the paper exhibits).
    """
    n = as_int(n, "n")
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    if n % 2 == 1:
        return 0
    if n == 4:
        return 4
    mix = theorem_cycle_mix(n)
    return 3 * mix[3] + 4 * mix[4] - circular.n_chords(n)


def counting_bound(n: int) -> int:
    """The distance-counting lower bound ``⌈Σ_e dist(e) / n⌉``.

    Every DRC cycle's requests have ring distances summing to at most
    ``n`` (its gaps sum to ``n`` and distance ≤ gap), so at least this
    many cycles are needed.  Tight for odd ``n`` and for ``n ≡ 2 (4)``;
    one short for ``n ≡ 0 (4)`` (parity argument, see ``bounds``).
    """
    n = as_int(n, "n")
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    total = circular.total_chord_distance(n)
    return -(-total // n)


def triangle_covering_number(n: int) -> int:
    """Minimum number of triangles covering the edges of ``K_n`` —
    ``⌈n/3 · ⌈(n−1)/2⌉⌉`` as cited by the paper from [6, 7]
    (Mills–Mullin; Stanton–Rogers).

    This ignores the DRC: it is the paper's reference point showing how
    much the routing constraint costs on a ring.
    """
    n = as_int(n, "n")
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    return ceil(n * ceil((n - 1) / 2) / 3)


def cycle_cover_lower_bound(n: int, k: int) -> int:
    """Schönheim-style lower bound for covering ``K_n`` by cycles of
    length ≤ ``k`` *without* the DRC: every cycle covers ≤ ``k`` edges
    and touches each vertex with ≤ 2 edges.

    ``max(⌈E/k⌉, ⌈n·⌈(n−1)/2⌉/k⌉)`` — used to situate the greedy non-DRC
    baselines of :mod:`repro.baselines.nondrc`.
    """
    n = as_int(n, "n")
    k = as_int(k, "k")
    if k < 3:
        raise ValueError(f"cycles need length ≥ 3, got {k}")
    edges = circular.n_chords(n)
    per_vertex = ceil((n - 1) / 2)  # each cycle uses ≤ 2 edges at a vertex
    return max(ceil(edges / k), ceil(n * per_vertex / k))


def rho_lambda_lower_bound(n: int, lam: int) -> int:
    """Counting lower bound for DRC-covering ``λK_n`` (paper extension):
    ``⌈λ · Σ_e dist(e) / n⌉``."""
    n = as_int(n, "n")
    lam = as_int(lam, "lambda")
    if lam < 1:
        raise ValueError(f"λ ≥ 1 required, got {lam}")
    total = lam * circular.total_chord_distance(n)
    return -(-total // n)
