"""Incremental coverage accounting for coverings.

A :class:`CoverageLedger` is the mutable bookkeeping behind
:class:`~repro.core.covering.Covering`'s coverage queries: chord →
multiplicity counts plus the running slot total.  Derived coverings
(``with_blocks``, ``replace_block``, ``without_block``) copy the parent
ledger (a single C-level ``dict`` copy) and apply per-block deltas in
``O(block size)`` instead of recounting every block from scratch —
the difference between quadratic and incremental behaviour for the
greedy baselines and local-search loops that mutate coverings
thousands of times.

The ledger never stores zero counts, so ``len(counts)`` is always the
number of distinct covered chords; for the All-to-All instance that
makes ``excess`` and ``covers`` O(1) queries
(``excess = total_slots − distinct covered``).
"""

from __future__ import annotations

from collections.abc import Iterable

from .blocks import CycleBlock

__all__ = ["CoverageLedger"]


class CoverageLedger:
    """Chord-multiplicity counts for a family of cycle blocks.

    Invariants: ``counts`` holds strictly positive values only;
    ``total_slots == Σ counts.values()`` (each block contributes one
    slot per edge, and a cycle has as many edges as vertices).
    """

    __slots__ = ("counts", "total_slots")

    def __init__(self, counts: dict[tuple[int, int], int] | None = None, total_slots: int = 0):
        self.counts: dict[tuple[int, int], int] = {} if counts is None else counts
        self.total_slots = total_slots

    @classmethod
    def from_blocks(cls, blocks: Iterable[CycleBlock]) -> "CoverageLedger":
        """Full recount — the O(total slots) fallback for fresh coverings."""
        ledger = cls()
        for blk in blocks:
            ledger.add_block(blk)
        return ledger

    def copy(self) -> "CoverageLedger":
        return CoverageLedger(dict(self.counts), self.total_slots)

    # -- deltas (mutating, O(block size)) --------------------------------

    def add_block(self, blk: CycleBlock) -> None:
        counts = self.counts
        for e in blk.edges():
            counts[e] = counts.get(e, 0) + 1
        self.total_slots += blk.size

    def remove_block(self, blk: CycleBlock) -> None:
        counts = self.counts
        for e in blk.edges():
            c = counts[e]
            if c == 1:
                del counts[e]
            else:
                counts[e] = c - 1
        self.total_slots -= blk.size

    # -- queries ---------------------------------------------------------

    def multiplicity(self, e: tuple[int, int]) -> int:
        return self.counts.get(e, 0)

    @property
    def distinct_covered(self) -> int:
        """Number of distinct chords covered at least once."""
        return len(self.counts)

    def excess_all_to_all(self) -> int:
        """Over-coverage against the All-to-All instance (λ = 1): every
        chord is requested exactly once, so ``Σ_e (c_e − 1) =
        total_slots − distinct covered``."""
        return self.total_slots - len(self.counts)

    # -- local-search queries (the improver's move generators) -----------

    def binding_edges(
        self, blk: CycleBlock, demand: dict[tuple[int, int], int]
    ) -> tuple[tuple[int, int], ...]:
        """Edges of ``blk`` whose demand would become violated if one
        copy of ``blk`` were removed — the edges any replacement block
        must keep covering.  O(block size)."""
        counts = self.counts
        return tuple(
            e for e in blk.edges() if counts.get(e, 0) - 1 < demand.get(e, 0)
        )

    def removable(self, blk: CycleBlock, demand: dict[tuple[int, int], int]) -> bool:
        """True when dropping one copy of ``blk`` leaves every demand
        satisfied (the block is *redundant*).  O(block size)."""
        counts = self.counts
        return all(counts.get(e, 0) - 1 >= demand.get(e, 0) for e in blk.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoverageLedger(distinct={len(self.counts)}, "
            f"total_slots={self.total_slots})"
        )
