"""The Disjoint Routing Constraint (DRC).

The paper requires that for each subnetwork ``I_k`` of the covering
there exist pairwise edge-disjoint routes in the physical graph for all
of ``I_k``'s requests.  On a ring this admits an exact characterisation,
proved here informally and exercised by the test-suite against a
brute-force router:

**Lemma (ring DRC).** A logical cycle ``C = (v_1, …, v_k)`` on ``C_n``
admits an edge-disjoint routing iff the ``v_i`` appear in ring circular
order.  *Sketch:* routing each request picks one of two arcs; the
concatenation of the routes along the cycle is a closed walk on ``C_n``,
whose net winding is the same across every fiber link.  Using every link
at most once forces winding exactly ±1 with every link used exactly
once, i.e. the routes are the arcs between circularly consecutive
vertices — so the cycle visits vertices in circular order.  Conversely a
circular-order cycle routes each request on the arc to its successor:
these arcs partition the ring's links.

Consequently each DRC subnetwork saturates its working wavelength's
capacity on *every* link — the paper's "half capacity for demands, half
for protection" design point.
"""

from __future__ import annotations

from itertools import product

from ..rings.routing import Arc, RingRouting
from ..util import circular
from ..util.errors import RoutingError
from .blocks import CycleBlock

__all__ = [
    "is_drc_routable",
    "route_block",
    "brute_force_routing",
    "paper_example_blocks",
]


def is_drc_routable(n: int, block: CycleBlock) -> bool:
    """Fast DRC test on the ring: block vertices in circular order."""
    return block.is_convex(n)


def route_block(n: int, block: CycleBlock) -> RingRouting:
    """The canonical edge-disjoint routing of a convex block.

    Each request is served by the clockwise arc from a vertex to its
    circular successor *within the block*; the arcs partition the ring's
    links, so the routing is edge-disjoint and saturates the wavelength.

    Raises :class:`~repro.util.errors.RoutingError` for non-convex
    blocks (no edge-disjoint routing exists; see lemma above).
    """
    if not block.is_convex(n):
        raise RoutingError(
            f"block {block.vertices!r} violates the DRC on C_{n}: "
            "its vertices are not in ring circular order"
        )
    ordered = sorted(block.vertices)
    assignment: dict[tuple[int, int], Arc] = {}
    for i, v in enumerate(ordered):
        w = ordered[(i + 1) % len(ordered)]
        assignment[circular.chord(v, w)] = Arc(n, v, w)
    return RingRouting(n, assignment)


def brute_force_routing(n: int, block: CycleBlock) -> RingRouting | None:
    """Exhaustive DRC search: try every orientation combination of the
    block's requests and return the first edge-disjoint routing.

    Exponential in the block size — this is the *independent oracle* the
    property tests compare :func:`is_drc_routable` against, and the only
    correct fallback for non-ring physical graphs of small size.
    """
    edges = block.edges()
    for orientation in product((False, True), repeat=len(edges)):
        arcs = []
        for (a, b), flip in zip(edges, orientation):
            arcs.append(Arc(n, b, a) if flip else Arc(n, a, b))
        used: set[int] = set()
        ok = True
        for arc in arcs:
            for link in arc.links():
                if link in used:
                    ok = False
                    break
                used.add(link)
            if not ok:
                break
        if ok:
            return RingRouting(n, {arc.request: arc for arc in arcs})
    return None


def paper_example_blocks() -> dict[str, tuple[int, CycleBlock]]:
    """The worked example from the paper (§2), in the paper's 1-based
    labels mapped to 0-based: ``G = C4 = (1,2,3,4)``, ``I = K4``.

    * ``bad``: the 4-cycle ``(1,3,4,2)`` → (0,2,3,1): *not* DRC-routable
      (requests (1,3) and (2,4) cannot be made edge-disjoint).
    * ``ring``: the 4-cycle ``(1,2,3,4)`` → (0,1,2,3): routable.
    * ``tri1``/``tri2``: the C3s ``(1,2,4)``/``(1,3,4)`` of the valid
      covering.
    """
    return {
        "ring": (4, CycleBlock((0, 1, 2, 3))),
        "bad": (4, CycleBlock((0, 2, 3, 1))),
        "tri1": (4, CycleBlock((0, 1, 3))),
        "tri2": (4, CycleBlock((0, 2, 3))),
    }
