"""Vectorized search kernel: numpy structure-of-arrays block tables.

The engine's branch-and-bound (:meth:`SolverEngine.min_covering`,
:meth:`SolverEngine.min_covering_instance`) is pure Python; profiling
the n = 10 exhaustion proof shows ~85 % of its time in three per-child
computations — residual-mass candidate scoring, the ΔW/parity
expansion sums, and canonical-mask hashing under the 2n dihedral
symmetries.  This module moves exactly those computations onto numpy
structure-of-arrays tables while keeping the *proof* bit-for-bit the
same:

* :func:`resolve_kernel` — selection.  ``REPRO_KERNEL=python|numpy``
  (or the ``SolverEngine(kernel=...)`` argument) picks the kernel;
  unset means *auto* (numpy when importable).  Requesting ``numpy``
  without numpy installed silently falls back to ``python`` — the
  pure-Python path is always present and always the reference
  implementation.
* :class:`KnTables` — the SoA form of a :class:`BlockTable`: the
  block/chord incidence matrix, per-chord pre-gathered candidate rows
  (the branching tie-break order, preserved exactly), fused
  distance/weight/count columns for one-matmul frame evaluation, the
  chord-endpoint incidence used for parity toggles, and the dihedral
  power tables that compute all 2n canonical images of every child in
  one integer matmul.
* :func:`numpy_covering_search` — a drop-in replacement for the
  engine's ``_covering_search`` loop.  When a frame is created, one
  array pass scores and bounds *all* its children (masses → stable
  argsort, ΔW, residual counts, packing bounds); the expensive
  expansion data (child bit vectors, canonical masks, parity
  toggles) is computed only for the *hot* children that pass the
  bound — typically ~10 % of the frontier.  The loop then scans each
  frame's precomputed bound column to bulk-count bound-pruned
  children and only drops into Python for the children that pass the
  bound or complete a covering.
* :class:`InstanceOrder` — the vectorized candidate scoring used by
  ``min_covering_instance`` (the rest of the instance loop stays in
  Python: its mutable residual vector and ``decremented`` bookkeeping
  are already cheap and serialization-ordered).

Byte-identity is a design invariant, not an aspiration: candidate
order comes from ``argsort(kind="stable")`` over the same keys the
Python ``sorted`` uses, node counting attributes exactly one node to
every expanded child (bulk-pruned spans are counted in one addition),
the memo sees the same keys in the same insertion order (FIFO
eviction included), and every value entering a frame, the memo, or a
:class:`SearchCheckpoint` is converted back to a plain Python int.
Checkpoints therefore carry no kernel marker at all — a proof
preempted under one kernel resumes under the other (the per-frame
arrays are rebuilt from the serialized frames) and finishes with the
identical envelope.  ``tests/core/test_kernel_parity.py`` pins all of
this differentially.

The deliberate behavioural latitude: deadline/preempt polling and
periodic checkpoint flushes fire on *crossing* each boundary rather
than on exact multiples (bulk node accounting can jump over one), so
a preemption or flush may capture a checkpoint at a slightly
different node count than the Python kernel would — the resumed
final envelope is still identical, which is the guarantee every
caller relies on.  Node-*limit* raises get no such latitude: bulk
advances are clamped at the limit boundary, so the raise fires at
exactly ``node_limit + 1`` with the reference's mid-span cursor and a
bit-identical checkpoint.
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..util.errors import SolverError, SolverPreempted
from .checkpoint import KIND_KN, CappedMemo, SearchCheckpoint, memo_cap

__all__ = [
    "KERNEL_ENV",
    "KERNELS",
    "NO_NUMPY_ENV",
    "available_kernels",
    "numpy_available",
    "resolve_kernel",
    "numpy_covering_search",
    "InstanceOrder",
]

#: Environment variable selecting the kernel (``python``/``numpy``;
#: unset or ``auto`` picks numpy when importable).
KERNEL_ENV = "REPRO_KERNEL"

#: Kernels a :class:`SolverEngine` can resolve to.
KERNELS = ("python", "numpy")

#: Set (to any non-empty value) to make the probe report numpy as
#: absent.  CI's kernel-fallback job uses it to prove the python
#: kernel still certifies everywhere the numpy kernel would have run,
#: without uninstalling numpy out from under the rest of the package
#: (the geometry helpers import it unconditionally).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

_UNRESOLVED = object()
_numpy_module = _UNRESOLVED


def _numpy():
    """The numpy module, or ``None`` when not installed (cached);
    ``REPRO_NO_NUMPY`` forces ``None``."""
    if os.environ.get(NO_NUMPY_ENV):
        return None
    global _numpy_module
    if _numpy_module is _UNRESOLVED:
        try:
            import numpy

            _numpy_module = numpy
        except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
            _numpy_module = None
    return _numpy_module


def numpy_available() -> bool:
    return _numpy() is not None


def available_kernels() -> tuple[str, ...]:
    """The kernels runnable in this process (``python`` always is)."""
    return KERNELS if numpy_available() else ("python",)


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve a kernel request to a runnable kernel name.

    ``kernel`` wins over ``REPRO_KERNEL``; ``None``/``"auto"``/empty
    mean numpy-when-available.  An explicit ``"numpy"`` without numpy
    installed falls back to ``"python"`` (the reference path is the
    fallback by contract); anything else raises.
    """
    raw = kernel if kernel is not None else os.environ.get(KERNEL_ENV, "auto")
    name = str(raw).strip().lower() or "auto"
    if name not in KERNELS and name != "auto":
        raise SolverError(
            f"unknown kernel {raw!r} (expected one of {KERNELS + ('auto',)})"
        )
    if name == "python":
        return "python"
    return "numpy" if numpy_available() else "python"


# ---------------------------------------------------------------------------
# Structure-of-arrays tables
# ---------------------------------------------------------------------------


class KnTables:
    """Numpy SoA image of one ``BlockTable`` over one edge space."""

    def __init__(self, n: int, table):
        from .engine import edge_space

        np = _numpy()
        space = edge_space(n)
        nbits = len(space.edges)
        nblocks = len(table.blocks)
        self.np = np
        self.n = n
        self.nbits = nbits
        self.nbytes = (nbits + 7) // 8

        # Block/chord incidence, int64 for matmuls and uint8 for mask
        # algebra on bit vectors.
        inc = np.zeros((nblocks, nbits), dtype=np.int64)
        for i, bits in enumerate(table.bit_lists):
            inc[i, list(bits)] = 1
        self.inc = inc
        self.inc8 = inc.astype(np.uint8)
        self.ninc8 = self.inc8 ^ 1  # complement rows: child_u = u & ninc8[i]

        # Fused evaluation columns: for an uncovered-bit vector ``u``,
        # ``cand_inc @ (u[:, None] * dwo)`` yields each candidate's
        # [negated residual mass, ΔW, newly-covered count] in one
        # matmul.  The mass column is stored negated so a stable
        # *ascending* argsort of it reproduces the reference
        # ``sorted(key=-mass)`` order with no per-frame negation.
        dwo = np.empty((nbits, 3), dtype=np.int64)
        dwo[:, 0] = space.dist
        dwo[:, 0] *= -1
        dwo[:, 1] = table.chord_weights
        dwo[:, 2] = 1
        self.dwo = dwo

        # Per-chord candidate indices and their pre-gathered incidence
        # rows — per_edge order is the scoring tie-break, kept verbatim.
        self.cand_arr = [np.asarray(c, dtype=np.int64) for c in table.per_edge]
        self.cand_inc = [inc[a] for a in self.cand_arr]

        # Chord-endpoint incidence (parity toggles) and vertex powers
        # (packing a toggle row back into the frame's ``odd`` int).
        ep = np.zeros((nbits, n), dtype=np.int64)
        for b, (a, c) in enumerate(space.edges):
            ep[b, a] = 1
            ep[b, c] = 1
        self.ep = ep
        self.vpow = np.int64(1) << np.arange(n, dtype=np.int64)

    def bitvec(self, mask: int, nbits: int | None = None):
        """A mask as a little-endian 0/1 uint8 vector."""
        np = self.np
        bits = self.nbits if nbits is None else nbits
        nbytes = (bits + 7) // 8
        return np.unpackbits(
            np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8),
            bitorder="little",
            count=bits,
        )


@lru_cache(maxsize=32)
def _kn_tables(n: int, max_size: int, allowed_sizes: tuple[int, ...] | None) -> KnTables:
    from .engine import convex_block_table, restricted_block_table

    if allowed_sizes is not None:
        table = restricted_block_table(n, max_size, allowed_sizes, "convex")
    else:
        table = convex_block_table(n, max_size)
    return KnTables(n, table)


@lru_cache(maxsize=32)
def _canon_tables(n: int):
    """Dihedral power tables: ``pow_lo[b, p] = 2**perm_p(b)`` (uint64,
    split into two 64-bit lanes past 64 chord bits).  Because each
    permutation is a bijection on bits, a child's uncovered vector
    matmul'd against a lane sums *distinct* powers of two — i.e. it is
    the OR the Python :func:`_canonical_mask` computes, with no carry
    and no overflow — so one ``(children × nbits) @ (nbits × 2n)``
    product evaluates every dihedral image of every child at once.
    """
    from .engine import dihedral_bit_perms

    np = _numpy()
    perms = dihedral_bit_perms(n)
    nbits = len(perms[0])
    nperms = len(perms)
    pow_lo = np.zeros((nbits, nperms), dtype=np.uint64)
    pow_hi = np.zeros((nbits, nperms), dtype=np.uint64) if nbits > 64 else None
    for p, perm in enumerate(perms):
        for b, tgt in enumerate(perm):
            if tgt < 64:
                pow_lo[b, p] = np.uint64(1) << np.uint64(tgt)
            else:
                pow_hi[b, p] = np.uint64(1) << np.uint64(tgt - 64)
    return pow_lo, pow_hi


def batch_canonical_masks(n: int, child_vecs) -> list[int]:
    """Canonical dihedral masks for a batch of uncovered-bit vectors
    (rows of ``child_vecs``), as plain Python ints — exactly
    ``_canonical_mask`` applied to each row's packed mask."""
    pow_lo, pow_hi = _canon_tables(n)
    cu = child_vecs.astype(pow_lo.dtype)
    imgs_lo = cu @ pow_lo
    if pow_hi is None:
        return imgs_lo.min(axis=1).tolist()
    imgs_hi = cu @ pow_hi
    los = imgs_lo.tolist()
    his = imgs_hi.tolist()
    return [
        min((h << 64) | l for h, l in zip(hrow, lrow))
        for hrow, lrow in zip(his, los)
    ]


# ---------------------------------------------------------------------------
# Instance-search candidate scoring
# ---------------------------------------------------------------------------


class InstanceOrder:
    """Vectorized residual-mass candidate ordering for the instance
    search: ``argsort(kind="stable")`` over the same key the Python
    ``sorted`` uses, so the returned list (plain ints — it is
    checkpoint-serialized verbatim) is identical."""

    def __init__(self, n: int, max_size: int):
        tables = _kn_tables(n, max_size, None)
        np = tables.np
        from .engine import edge_space

        self.np = np
        # (inc * dist) rows: a block's row dotted with the residual
        # positivity vector is its residual coverage mass.
        self.mass_rows = tables.inc * np.asarray(
            edge_space(n).dist, dtype=np.int64
        )
        # Candidate lists (per_bit entries, the root orbit slice) are
        # stable list objects for the lifetime of one search, so their
        # gathered rows are cached by identity.
        self._rows: dict[int, tuple] = {}

    def order(self, cands: list[int], residual_counts: list[int]) -> list[int]:
        np = self.np
        cached = self._rows.get(id(cands))
        if cached is None:
            arr = np.asarray(cands, dtype=np.int64)
            cached = (arr, self.mass_rows[arr])
            self._rows[id(cands)] = cached
        arr, rows = cached
        pos = (np.asarray(residual_counts, dtype=np.int64) > 0).astype(np.int64)
        masses = rows @ pos
        return arr[np.argsort(-masses, kind="stable")].tolist()


# ---------------------------------------------------------------------------
# The batched K_n search
# ---------------------------------------------------------------------------

# Per-frame cache record layout (a list, not a dict: the scan loop
# indexes these thousands of times per second).
C_R = 0  # sorted [−mass, ΔW, newly-covered] columns
C_USED = 1  # child cost-so-far: aligned array, or a plain int when uniform
C_HOT = 2  # {child index: (u_row, odd_row, canonical, toggle)} for hot children
C_BPU = 3  # bound-plus-used column
C_LEAF = 4  # completed-covering column
C_STOPS = 5  # sorted child indices where leaf | (bpu < best) — the scan list
C_BEST0 = 6  # the best value C_STOPS was computed against
C_SPTR = 7  # scan position in C_STOPS


def numpy_covering_search(
    engine,
    *,
    root_cands: list[int],
    best_count: int,
    best_blocks,
    node_limit: int,
    st,
    order: list[int],
    use_memo: bool = True,
    deadline: float | None = None,
    objective=None,
    allowed_sizes: tuple[int, ...] | None = None,
    branching: str = "lex",
    checkpoint: SearchCheckpoint | None = None,
    checkpoint_every: int | None = None,
    on_checkpoint=None,
    preempt=None,
):
    """The numpy-kernel twin of ``SolverEngine._covering_search``.

    Same contract, same frames, same checkpoints, same node counts —
    see the module docstring for how the identity is maintained.
    """
    import time

    from .engine import (
        DEADLINE_POLL_MASK,
        _canonical_mask,
        dihedral_bit_perms,
        edge_space,
    )
    from .objective import resolve_objective

    np = _numpy()
    n = engine.n
    obj = resolve_objective(objective)
    space = edge_space(n)
    table = engine._table("convex", allowed_sizes)
    tk = _kn_tables(
        n, engine.max_size, tuple(allowed_sizes) if allowed_sizes is not None else None
    )
    full_mask = space.full_mask
    masks = table.masks
    blocks = table.blocks
    max_cover = min(engine.max_size, max((blk.size for blk in blocks), default=1))
    costs = np.asarray([obj.block_cost(blk) for blk in blocks], dtype=np.int64)
    min_cost = int(costs.min()) if len(blocks) else 1
    # Uniform block cost (min_blocks): ``used + cost[child]`` collapses
    # to one Python int per frame instead of a gather-and-add.
    unit_cost = (
        int(costs[0]) if len(blocks) and bool((costs == costs[0]).all()) else None
    )
    denom = table.weight_denom
    track_parity = obj.track_parity
    perms = dihedral_bit_perms(n) if use_memo else ()
    memo = CappedMemo(memo_cap())
    lex = order == list(range(len(space.edges)))
    W_root = sum(table.chord_weights)
    odd_root = ((1 << n) - 1) if (track_parity and (n - 1) % 2) else 0

    best: list = [best_count, best_blocks]
    chosen: list = []
    frames: list[list] = []
    # One batch record per frame, parallel to ``frames`` — derived data
    # only, never serialized, rebuilt on resume.
    caches: list[dict] = []

    # ``min_blocks`` (the default objective, and the one every
    # exhaustion proof runs under) gets its bound fused in-place below;
    # the exact-type check keeps subclasses on their own hooks.
    from .objective import MinBlocksObjective

    fast_minblocks = type(obj) is MinBlocksObjective
    dwo = tk.dwo
    inc8 = tk.inc8
    ninc8 = tk.ninc8
    if use_memo:
        pow_lo, pow_hi = _canon_tables(n)
        uint64 = np.uint64

    def make_cache(unc: int, used: int, W: int, u, odd_vec, cand_arr, cand_inc):
        """Evaluate every child of a frame in one array pass.  Returns
        (scored_list, cache); ``cand_arr``/``cand_inc`` rows are in
        pre-sort (tie-break) order unless already scored."""
        X = u[:, None] * dwo
        R = cand_inc @ X  # columns: -residual mass, ΔW, newly covered
        sort = R[:, 0].argsort(kind="stable")
        sel = cand_arr[sort]
        R = R[sort]
        return sel.tolist(), finish_cache(unc, used, W, u, odd_vec, sel, R)

    def finish_cache(unc: int, used: int, W: int, u, odd_vec, sel, R):
        """Bound/leaf columns for every child; expansion data (child
        bit vector, canonical mask, parity toggle) only for the *hot*
        children — the ones that pass the bound at frame creation.
        ``best`` only ever decreases, so the hot set computed here is a
        superset of the children the loop will ever expand."""
        unc_count = unc.bit_count()
        leaf = R[:, 2] == unc_count
        if unit_cost is not None:
            child_used = used + unit_cost
        else:
            child_used = used + costs[sel]
        if track_parity:
            bsel = inc8[sel]
            toggles = ((u[None, :] & bsel).astype(np.int64) @ tk.ep) & 1
            child_odd_vec = odd_vec[None, :] ^ toggles
            odd_counts = child_odd_vec.sum(axis=1)
        else:
            odd_counts = 0
        if fast_minblocks:
            # max(⌈(W−ΔW)/denom⌉, ⌈resid/max_cover⌉), the ceil offsets
            # folded into scalar constants and the divisions in place.
            # The reference's max(bound, min_cost) clamp is a no-op
            # here: min_cost == 1 for min_blocks and every non-leaf row
            # has ⌈resid/max_cover⌉ ≥ 1, while leaf rows stop
            # regardless of their bpu entry.
            bpu = (W + denom - 1) - R[:, 1]
            bpu //= denom
            card = (unc_count + max_cover - 1) - R[:, 2]
            card //= max_cover
            np.maximum(bpu, card, out=bpu)
            if min_cost > 1:  # pragma: no cover - min_blocks costs are 1
                np.maximum(bpu, min_cost, out=bpu)
        else:
            bounds = obj.node_bound_batch(
                frac_units=W - R[:, 1],
                frac_denom=denom,
                residual_requests=unc_count - R[:, 2],
                max_cover=max_cover,
                min_cost=min_cost,
                odd_vertices=odd_counts,
            )
            if type(bounds) is not np.ndarray:
                bounds = np.asarray(bounds, dtype=np.int64)
            bpu = np.maximum(bounds, min_cost)
        bpu += child_used
        bound_ok = bpu < best[0]
        hot_idx = (bound_ok > leaf).nonzero()[0]  # bound-ok and not leaf
        hot: dict[int, tuple] = {}
        if hot_idx.size:
            u_hot = u[None, :] & ninc8[sel[hot_idx]]
            if not use_memo:
                canon = None
            elif pow_hi is None:
                # single-lane canonical hashing, tables pre-bound
                canon = (u_hot.astype(uint64) @ pow_lo).min(axis=1).tolist()
            else:
                canon = batch_canonical_masks(n, u_hot)
            if track_parity:
                odd_hot = child_odd_vec[hot_idx]
                tog_hot = (toggles[hot_idx] @ tk.vpow).tolist()
            for j, k in enumerate(hot_idx.tolist()):
                hot[k] = (
                    u_hot[j],
                    odd_hot[j] if track_parity else None,
                    canon[j] if use_memo else None,
                    tog_hot[j] if track_parity else 0,
                )
        bound_ok |= leaf  # bound_ok is dead; reuse it as the stops column
        stops = bound_ok.nonzero()[0].tolist()
        return [R, child_used, hot, bpu, leaf, stops, best[0], 0]

    def frame_context(covered: int):
        """(cand_arr, cand_inc) for the branching target of a frame's
        child — per-chord rows are pre-gathered in the tables."""
        unc = full_mask & ~covered
        if lex:
            target = (unc & -unc).bit_length() - 1
        else:
            target = next(e for e in order if (unc >> e) & 1)
        return tk.cand_arr[target], tk.cand_inc[target]

    def capture() -> SearchCheckpoint:
        return SearchCheckpoint(
            kind=KIND_KN,
            n=n,
            max_size=engine.max_size,
            objective=obj.name,
            branching=branching,
            use_memo=use_memo,
            allowed_sizes=(
                tuple(allowed_sizes) if allowed_sizes is not None else None
            ),
            nodes=st.nodes,
            best_value=best[0],
            best_blocks=(
                tuple(blk.vertices for blk in best[1])
                if best[1] is not None
                else None
            ),
            frames=[[fr[0], fr[1], fr[2], fr[3], list(fr[4]), fr[5]] for fr in frames],
            memo=list(memo.items()),
            resumes=(checkpoint.resumes + 1) if checkpoint is not None else 0,
        )

    if checkpoint is not None:
        checkpoint.check_compatible(
            kind=KIND_KN,
            n=n,
            max_size=engine.max_size,
            objective=obj.name,
            branching=branching,
            use_memo=use_memo,
            allowed_sizes=(
                tuple(allowed_sizes) if allowed_sizes is not None else None
            ),
        )
        st.nodes = checkpoint.nodes
        best[0] = checkpoint.best_value
        if checkpoint.best_blocks is not None:
            from .blocks import CycleBlock

            best[1] = [CycleBlock(tuple(vs)) for vs in checkpoint.best_blocks]
        else:
            best[1] = None
        for key, value in checkpoint.memo:
            memo.store(key, value)
        frames = [
            [covered, used, W, odd, list(scored), cursor]
            for covered, used, W, odd, scored, cursor in checkpoint.frames
        ]
        for k in range(len(frames) - 1):
            fr = frames[k]
            chosen.append(blocks[fr[4][fr[5] - 1]])
        # Rebuild the per-frame batch records from the serialized state
        # (a kernel-agnostic checkpoint: the arrays are derived data).
        for fr in frames:
            covered, used, W, odd = fr[0], fr[1], fr[2], fr[3]
            unc = full_mask & ~covered
            u = tk.bitvec(unc)
            odd_vec = tk.bitvec(odd, n) if track_parity else None
            sel = np.asarray(fr[4], dtype=np.int64)
            R = tk.inc[sel] @ (u[:, None] * tk.dwo)
            caches.append(finish_cache(unc, used, W, u, odd_vec, sel, R))
    else:
        # Root node, mirroring the reference ``visit(0, 0, W_root, ...)``.
        st.nodes += 1
        bound0 = obj.node_bound(
            frac_units=W_root,
            frac_denom=denom,
            residual_requests=full_mask.bit_count(),
            max_cover=max_cover,
            min_cost=min_cost,
            odd_vertices=odd_root.bit_count(),
        )
        expand_root = (bound0 if bound0 > min_cost else min_cost) < best[0]
        if expand_root and use_memo:
            key0 = _canonical_mask(full_mask, perms)
            prev = memo.get(key0)
            if prev is not None and prev <= 0:
                expand_root = False
            else:
                memo.store(key0, 0)
        if expand_root:
            u0 = tk.bitvec(full_mask)
            odd_vec0 = tk.bitvec(odd_root, n) if track_parity else None
            root_arr = np.asarray(root_cands, dtype=np.int64)
            scored0, cache0 = make_cache(
                full_mask, 0, W_root, u0, odd_vec0, root_arr, tk.inc[root_arr]
            )
            frames.append([0, 0, W_root, odd_root, scored0, 0])
            caches.append(cache0)

    # ``st.nodes`` lives in the local ``nodes`` inside the loop (synced
    # back on every slow-path entry and at exit); the three rare checks
    # (node limit, deadline/preempt poll, checkpoint flush) collapse
    # into one threshold comparison per iteration.  Polls fire on
    # *crossing* each DEADLINE_POLL_MASK+1 boundary (bulk node
    # accounting can step over an exact multiple).
    nodes = st.nodes
    next_poll = (nodes | DEADLINE_POLL_MASK) + 1
    next_flush = (
        nodes + checkpoint_every
        if checkpoint_every and on_checkpoint is not None
        else None
    )
    memo_get = memo.get
    memo_store = memo.store

    def slow_threshold() -> int:
        t = node_limit + 1 if node_limit + 1 < next_poll else next_poll
        if next_flush is not None and next_flush < t:
            t = next_flush
        return t

    slow_at = slow_threshold()

    while frames:
        if nodes >= slow_at:
            st.nodes = nodes
            if nodes > node_limit:
                raise SolverError(
                    f"solver exceeded node limit {node_limit} for n={n}",
                    checkpoint=capture(),
                    best_blocks=list(best[1]) if best[1] is not None else None,
                    best_value=best[0],
                    stats=st,
                )
            if nodes >= next_poll:
                next_poll = (nodes | DEADLINE_POLL_MASK) + 1
                if deadline is not None and time.time() > deadline:
                    raise SolverPreempted(
                        f"solver exceeded its time budget for n={n}",
                        checkpoint=capture(),
                        best_blocks=(
                            list(best[1]) if best[1] is not None else None
                        ),
                        best_value=best[0],
                        stats=st,
                    )
                if preempt is not None and preempt(st):
                    raise SolverPreempted(
                        f"solver preempted at {nodes} nodes for n={n}",
                        checkpoint=capture(),
                        best_blocks=(
                            list(best[1]) if best[1] is not None else None
                        ),
                        best_value=best[0],
                        stats=st,
                    )
            if next_flush is not None and nodes >= next_flush:
                on_checkpoint(capture())
                next_flush = nodes + checkpoint_every
            slow_at = slow_threshold()
        fr = frames[-1]
        cache = caches[-1]
        scored = fr[4]
        cursor = fr[5]
        m = len(scored)
        if cursor >= m:
            frames.pop()
            caches.pop()
            if frames:
                chosen.pop()
            continue
        if cache[C_BEST0] != best[0]:
            stops_arr = cache[C_LEAF] | (cache[C_BPU] < best[0])
            cache[C_STOPS] = stops_arr.nonzero()[0].tolist()
            cache[C_SPTR] = 0
            cache[C_BEST0] = best[0]
        stop_list = cache[C_STOPS]
        ptr = cache[C_SPTR]
        ns = len(stop_list)
        # ``cursor`` only moves forward and the stop set only shrinks
        # (``best`` only decreases), so the pointer walk is amortized
        # O(1); it only has catching up to do right after a refresh.
        while ptr < ns and stop_list[ptr] < cursor:
            ptr += 1
        if ptr == ns:
            # Every remaining child is bound-pruned: count each one —
            # clamped at the node limit so the limit raise happens at
            # exactly limit + 1 with the reference's mid-span cursor.
            cache[C_SPTR] = ptr
            span = m - cursor
            if nodes + span > node_limit:
                take = node_limit + 1 - nodes
                nodes += take
                fr[5] = cursor + take
                continue
            nodes += span
            fr[5] = m
            continue
        k = stop_list[ptr]
        span = k - cursor  # the bound-pruned children skipped over
        if nodes + span > node_limit:
            take = node_limit + 1 - nodes
            nodes += take
            fr[5] = cursor + take
            continue
        cache[C_SPTR] = ptr + 1
        nodes += span + 1  # the pruned span, plus the stop child itself
        fr[5] = k + 1
        i = scored[k]
        cu = cache[C_USED]
        child_used = cu if type(cu) is int else int(cu[k])
        if cache[C_LEAF][k]:
            if child_used < best[0]:
                best[0] = child_used
                best[1] = list(chosen) + [blocks[i]]
            continue
        hot = cache[C_HOT][k]
        if use_memo:
            key = hot[2]
            prev = memo_get(key)
            if prev is not None and prev <= child_used:
                continue
            memo_store(key, child_used)
        covered, used, W, odd = fr[0], fr[1], fr[2], fr[3]
        child_covered = covered | masks[i]
        child_W = W - int(cache[C_R][k, 1])
        child_odd = odd ^ hot[3] if track_parity else 0
        cand_arr, cand_inc = frame_context(child_covered)
        child_scored, child_cache = make_cache(
            full_mask & ~child_covered,
            child_used,
            child_W,
            hot[0],
            hot[1],
            cand_arr,
            cand_inc,
        )
        chosen.append(blocks[i])
        frames.append([child_covered, child_used, child_W, child_odd, child_scored, 0])
        caches.append(child_cache)
    st.nodes = nodes
    return best[0], best[1]
