"""The paper's contribution: DRC cycle coverings of ``K_n`` over ``C_n``."""

from .blocks import CycleBlock, convex_block, quad, triangle
from .bounds import (
    LowerBoundCertificate,
    instance_lower_bound,
    lower_bound,
    total_size_lower_bound,
)
from .construction import fast_covering, optimal_covering, optimality_gap
from .covering import Covering
from .drc import brute_force_routing, is_drc_routable, paper_example_blocks, route_block
from .even import even_covering
from .formulas import (
    counting_bound,
    cycle_cover_lower_bound,
    optimal_excess,
    rho,
    rho_lambda_lower_bound,
    theorem_cycle_mix,
    triangle_covering_number,
)
# The engine exports (not the repro.core.solver façade): the top-level
# surface stays warning-free; DeprecationWarnings fire only for callers
# importing through repro.core.solver itself.
from .checkpoint import CappedMemo, SearchCheckpoint
from .engine import (
    SolverEngine,
    SolverStats,
    dihedral_canonical,
    dominated_candidates,
    enumerate_convex_blocks,
    enumerate_tight_blocks,
    exact_decomposition,
    solve_many,
    solve_min_covering,
    solve_min_covering_instance,
    solve_min_covering_sharded,
)
from .improve import ImproveStats, improve_covering, improved_greedy_covering
from .ladder import ladder_decomposition
from .ledger import CoverageLedger
from .objective import (
    Objective,
    available_objectives,
    get_objective,
    register_objective,
)
from .pole import pole_decomposition
from .transforms import (
    canonical_covering_key,
    coverings_equivalent,
    dihedral_orbit,
    reflect_covering,
    rotate_covering,
)
from .verify import VerificationReport, assert_valid_covering, verify_covering

__all__ = [
    "canonical_covering_key",
    "coverings_equivalent",
    "dihedral_orbit",
    "reflect_covering",
    "rotate_covering",
    "solve_min_covering_instance",
    "CappedMemo",
    "CoverageLedger",
    "CycleBlock",
    "Covering",
    "SearchCheckpoint",
    "LowerBoundCertificate",
    "ImproveStats",
    "Objective",
    "available_objectives",
    "get_objective",
    "register_objective",
    "total_size_lower_bound",
    "SolverEngine",
    "SolverStats",
    "dihedral_canonical",
    "dominated_candidates",
    "improve_covering",
    "improved_greedy_covering",
    "solve_many",
    "solve_min_covering_sharded",
    "VerificationReport",
    "assert_valid_covering",
    "brute_force_routing",
    "convex_block",
    "counting_bound",
    "cycle_cover_lower_bound",
    "enumerate_convex_blocks",
    "enumerate_tight_blocks",
    "even_covering",
    "exact_decomposition",
    "fast_covering",
    "instance_lower_bound",
    "is_drc_routable",
    "ladder_decomposition",
    "lower_bound",
    "optimal_covering",
    "optimal_excess",
    "optimality_gap",
    "paper_example_blocks",
    "pole_decomposition",
    "quad",
    "rho",
    "rho_lambda_lower_bound",
    "route_block",
    "solve_min_covering",
    "theorem_cycle_mix",
    "triangle",
    "triangle_covering_number",
    "verify_covering",
]
