"""Symmetry transforms of blocks and coverings.

The ring ``C_n`` has the dihedral symmetry group ``D_n`` (rotations +
reflections); DRC-coverings map to DRC-coverings under it (circular
order is preserved, possibly reversed).  These transforms are used by
tests (constructions should stay valid under every symmetry), by the
canonicalisation utilities (comparing coverings up to symmetry), and by
construction internals (placing patterns at chosen offsets).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..util.validation import check_vertex
from .blocks import CycleBlock
from .covering import Covering

__all__ = [
    "rotate_block",
    "reflect_block",
    "relabel_block",
    "rotate_covering",
    "reflect_covering",
    "relabel_covering",
    "canonical_covering_key",
    "coverings_equivalent",
    "dihedral_orbit",
]


def relabel_block(block: CycleBlock, mapping: Callable[[int], int]) -> CycleBlock:
    """Apply a vertex relabelling to one block."""
    return CycleBlock(tuple(mapping(v) for v in block.vertices))


def rotate_block(n: int, block: CycleBlock, shift: int) -> CycleBlock:
    """Rotate a block by ``shift`` positions around ``C_n``."""
    return relabel_block(block, lambda v: (v + shift) % n)


def reflect_block(n: int, block: CycleBlock, axis: int = 0) -> CycleBlock:
    """Reflect a block across the axis through vertex ``axis``."""
    check_vertex(axis, n)
    return relabel_block(block, lambda v: (2 * axis - v) % n)


def relabel_covering(covering: Covering, mapping: Callable[[int], int]) -> Covering:
    """Apply a vertex bijection to every block (caller guarantees the
    mapping is a bijection of ``0..n-1``; validity is re-checkable via
    the verifier)."""
    return Covering(
        covering.n,
        tuple(relabel_block(blk, mapping) for blk in covering.blocks),
    )


def rotate_covering(covering: Covering, shift: int) -> Covering:
    """Rotate a whole covering; DRC-validity is preserved."""
    n = covering.n
    return relabel_covering(covering, lambda v: (v + shift) % n)


def reflect_covering(covering: Covering, axis: int = 0) -> Covering:
    """Reflect a whole covering; DRC-validity is preserved."""
    n = covering.n
    check_vertex(axis, n)
    return relabel_covering(covering, lambda v: (2 * axis - v) % n)


def canonical_covering_key(covering: Covering) -> tuple:
    """A canonical key identifying a covering as a *multiset* of
    subnetworks (block order is presentation, not substance)."""
    return tuple(sorted(blk.canonical for blk in covering.blocks))


def coverings_equivalent(a: Covering, b: Covering, *, up_to_symmetry: bool = False) -> bool:
    """Equality as block multisets, optionally modulo ring symmetry.

    ``up_to_symmetry=True`` quotients by the dihedral group ``D_n``
    (2n transforms) — O(n · blocks · log) and exact.
    """
    if a.n != b.n:
        return False
    if canonical_covering_key(a) == canonical_covering_key(b):
        return True
    if not up_to_symmetry:
        return False
    target = canonical_covering_key(b)
    for transformed in dihedral_orbit(a):
        if canonical_covering_key(transformed) == target:
            return True
    return False


def dihedral_orbit(covering: Covering) -> Iterable[Covering]:
    """All 2n dihedral images of a covering (rotations, then reflected
    rotations); yields lazily."""
    n = covering.n
    for shift in range(n):
        yield rotate_covering(covering, shift)
    reflected = reflect_covering(covering, 0)
    for shift in range(n):
        yield rotate_covering(reflected, shift)
