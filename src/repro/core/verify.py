"""Independent verification of coverings.

The constructions in :mod:`repro.core` are nontrivial (the paper omits
its proofs), so every construction output is re-checked here through a
*different* code path:

* DRC feasibility is established by exhibiting an actual edge-disjoint
  routing (an :class:`~repro.rings.routing.RingRouting`, whose
  constructor independently re-validates link-disjointness), not by
  trusting the circular-order predicate;
* coverage is recounted from scratch against the instance;
* optimality claims are compared against the closed forms *and* the
  lower-bound certificates of :mod:`repro.core.bounds`.

``verify_covering`` returns a :class:`VerificationReport`;
``assert_valid_covering`` raises with a precise diagnosis, and is used
liberally in tests and at the end of each construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rings.routing import Arc, RingRouting
from ..traffic.instances import Instance, all_to_all
from ..util import circular
from ..util.errors import InvalidCoveringError, RoutingError
from .bounds import lower_bound
from .covering import Covering
from .formulas import optimal_excess, rho, theorem_cycle_mix

__all__ = ["VerificationReport", "verify_covering", "assert_valid_covering", "routing_for_block"]


@dataclass
class VerificationReport:
    """Outcome of a covering verification: validity plus diagnostics.

    ``objective``/``objective_value``/``objective_bound`` are filled
    when the caller names an objective: the value is recomputed from
    the covering and checked against that objective's own admissible
    lower bound, so a claimed optimum below its certificate trips
    ``valid=False`` for any registered objective, not just the paper's
    block count."""

    n: int
    valid: bool
    drc_ok: bool
    coverage_ok: bool
    num_blocks: int
    excess: int
    size_histogram: dict[int, int]
    problems: list[str] = field(default_factory=list)
    optimal: bool | None = None
    lower_bound_value: int | None = None
    objective: str | None = None
    objective_value: int | None = None
    objective_bound: int | None = None

    def summary(self) -> str:
        status = "VALID" if self.valid else "INVALID"
        opt = ""
        if self.optimal is not None:
            opt = ", optimal" if self.optimal else ", NOT optimal"
        return (
            f"{status}: n={self.n}, {self.num_blocks} blocks "
            f"{self.size_histogram}, excess={self.excess}{opt}"
        )


def routing_for_block(n: int, vertices: tuple[int, ...]) -> RingRouting:
    """Build the candidate routing of a block *without* assuming it is
    convex: route each request to its successor in the block's own cycle
    order and let :class:`RingRouting` decide edge-disjointness.

    For a block in circular order the arcs tile the ring exactly; any
    other order reuses some link and the constructor raises
    :class:`~repro.util.errors.RoutingError`.  This is the verifier's
    independent DRC oracle.
    """
    k = len(vertices)
    assignment: dict[tuple[int, int], Arc] = {}
    for i, v in enumerate(vertices):
        w = vertices[(i + 1) % k]
        arc = Arc(n, v, w)
        # Between the two candidate arcs for {v, w}, a circular-order
        # traversal uses the forward one; try forward first, fall back to
        # the reverse so reflected listings verify too.
        assignment[circular.chord(v, w)] = arc
    try:
        return RingRouting(n, assignment)
    except RoutingError:
        reversed_assignment = {
            e: arc.reversed_arc() for e, arc in assignment.items()
        }
        return RingRouting(n, reversed_assignment)


def verify_covering(
    covering: Covering,
    instance: Instance | None = None,
    *,
    expect_optimal: bool = False,
    expect_exact: bool = False,
    expect_theorem_mix: bool = False,
    objective: str | None = None,
    allowed_sizes: tuple[int, ...] | None = None,
) -> VerificationReport:
    """Re-derive every property of ``covering`` from first principles.

    ``objective`` names a registered objective to re-score the covering
    under (value recomputed, compared against that objective's own
    lower-bound certificate); ``allowed_sizes`` re-checks Manthey-style
    admissibility — a block whose cycle length falls outside the set
    invalidates the covering."""
    inst = instance if instance is not None else all_to_all(covering.n)
    n = covering.n
    problems: list[str] = []

    # --- size restriction (restricted covers) --------------------------
    restriction_ok = True
    if allowed_sizes is not None:
        allowed = set(allowed_sizes)
        for idx, blk in enumerate(covering.blocks):
            if blk.size not in allowed:
                restriction_ok = False
                problems.append(
                    f"block #{idx} has size {blk.size}, outside the allowed "
                    f"sizes {tuple(sorted(allowed))}"
                )

    # --- DRC: exhibit an edge-disjoint routing per block ---------------
    drc_ok = True
    for idx, blk in enumerate(covering.blocks):
        try:
            routing = routing_for_block(n, blk.vertices)
        except RoutingError:
            drc_ok = False
            problems.append(f"block #{idx} {blk.vertices!r} admits no edge-disjoint routing")
            continue
        if not routing.uses_all_links():
            # Cannot happen for a valid cycle (arcs of a closed walk with
            # winding 1 tile the ring) — guards internal inconsistencies.
            drc_ok = False
            problems.append(f"block #{idx} {blk.vertices!r}: routing does not tile the ring")

    # --- coverage -------------------------------------------------------
    missing = covering.uncovered(inst)
    coverage_ok = not missing
    if missing:
        shown = ", ".join(map(str, missing[:8]))
        more = "" if len(missing) <= 8 else f" (+{len(missing) - 8} more)"
        problems.append(f"uncovered requests: {shown}{more}")

    excess = covering.excess(inst)
    valid = drc_ok and coverage_ok and restriction_ok

    # --- objective re-scoring ------------------------------------------
    objective_name: str | None = None
    objective_value: int | None = None
    objective_bound: int | None = None
    if objective is not None:
        from .objective import resolve_objective

        obj = resolve_objective(objective)
        objective_name = obj.name
        objective_value = obj.covering_value(covering)
        objective_bound = obj.instance_certificate(inst).value
        if valid and objective_value < objective_bound:
            valid = False
            problems.append(
                f"{obj.name} value {objective_value} is below the proven "
                f"lower bound {objective_bound} — the covering cannot be valid"
            )

    # --- optimality (All-to-All only) ------------------------------------
    optimal: bool | None = None
    lb_value: int | None = None
    if inst.is_all_to_all() and inst.max_multiplicity == 1:
        cert = lower_bound(n)
        lb_value = cert.value
        optimal = valid and covering.num_blocks == rho(n)
        if covering.num_blocks < cert.value:
            valid = False
            optimal = False
            problems.append(
                f"block count {covering.num_blocks} is below the proven lower "
                f"bound {cert.value} — the covering cannot be valid"
            )
        if expect_optimal and covering.num_blocks != rho(n):
            valid = False
            problems.append(
                f"expected ρ({n}) = {rho(n)} blocks, found {covering.num_blocks}"
            )
        if expect_exact and excess != 0:
            valid = False
            problems.append(f"expected an exact decomposition, excess = {excess}")
        if expect_theorem_mix:
            want = theorem_cycle_mix(n)
            got = {3: covering.num_triangles, 4: covering.num_quads}
            other = covering.num_blocks - got[3] - got[4]
            if got != {k: v for k, v in want.items()} or other:
                valid = False
                problems.append(f"cycle mix {got} (+{other} other) differs from theorem {want}")
            if n % 2 == 0 and n >= 6 and excess != optimal_excess(n):
                valid = False
                problems.append(
                    f"excess {excess} differs from the theorem covering's {optimal_excess(n)}"
                )

    return VerificationReport(
        n=n,
        valid=valid,
        drc_ok=drc_ok,
        coverage_ok=coverage_ok,
        num_blocks=covering.num_blocks,
        excess=excess,
        size_histogram=covering.size_histogram,
        problems=problems,
        optimal=optimal,
        lower_bound_value=lb_value,
        objective=objective_name,
        objective_value=objective_value,
        objective_bound=objective_bound,
    )


def assert_valid_covering(
    covering: Covering,
    instance: Instance | None = None,
    **expectations: bool,
) -> VerificationReport:
    """Verify and raise :class:`InvalidCoveringError` on any problem."""
    report = verify_covering(covering, instance, **expectations)
    if not report.valid:
        raise InvalidCoveringError(
            f"covering verification failed for n={covering.n}: "
            + "; ".join(report.problems)
        )
    return report
