"""First-class covering objectives: the :class:`Objective` protocol and
registry.

``CoverSpec.objective`` used to be a string validated against a frozen
one-element set while the engine, the packing bounds, the improver, and
every backend hard-coded block cardinality.  This module makes the
objective a real axis: an :class:`Objective` supplies

* the **cost model** — the additive cost of using a candidate block
  (:meth:`Objective.block_cost`) and the value of a complete covering
  (:meth:`Objective.covering_value`);
* the **engine pruning hook** — an admissible lower bound on the
  remaining cost of a partial covering
  (:meth:`Objective.node_bound`), generalising the
  fractional/cardinality packing bounds (which are exactly the
  ``min_blocks`` instance of the hook);
* **candidate admissibility** — whether a block may appear at all
  under a Manthey-style size restriction
  (:meth:`Objective.admits`, driven by ``CoverSpec.allowed_sizes``);
  the engine filters block tables with it the way dominance filtering
  prunes restricted instances;
* **improver move scoring** — the lexicographic acceptance key the
  :mod:`repro.core.improve` local search minimises
  (:meth:`Objective.improvement_key`);
* **certificates** — the human-readable lower-bound certificate each
  backend tier attaches to its envelopes
  (:meth:`Objective.certificate`, :meth:`Objective.instance_certificate`).

Two objectives ship by default:

``min_blocks``
    The paper's ρ(n): fewest cycles.  Every cost is 1, the node bound
    is the engine's historical fractional/cardinality packing maximum,
    and the certificates are the counting/diameter/parity arguments of
    :mod:`repro.core.bounds` (λ-repetition bound for the formula tier).

``min_total_size``
    The ring-size-sum (total ADM count) objective of the paper's
    refs [3]/[4] (Eilam–Moran–Zaks; Gerstel–Lin–Sasaki): minimise
    ``Σ_k |I_k|``.  A block of size ``s`` costs ``s``; the node bound
    counts residual request slots plus the end-parity surplus (every
    block contributes an even number of edge-ends per vertex, so
    odd-residual-degree vertices force extra slots); the certificate is
    the exact All-to-All bound ``|E| + p·[n even]`` generalised to any
    instance (:func:`repro.core.bounds.total_size_lower_bound`).

Out-of-tree objectives register with :func:`register_objective`;
``CoverSpec`` validation, the router, the backends, and the CLI all
consult :func:`available_objectives` — nothing else needs touching for
the in-process tiers.  **Cross-process caveat:** objectives travel by
registry *name* over every process boundary (sharded shard workers,
``python -m repro worker`` subprocess/spool fleets), so a custom
objective must be registered in the worker process too — i.e. its
defining module must be imported there (fork-based sharding inherits
the parent's registry; spawn-based sharding and remote workers do
not).  The built-in objectives are registered at import time and are
immune.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from typing import TYPE_CHECKING

from ..util.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover
    from ..traffic.instances import Instance
    from .blocks import CycleBlock
    from .bounds import LowerBoundCertificate
    from .covering import Covering

__all__ = [
    "Objective",
    "MinBlocksObjective",
    "MinTotalSizeObjective",
    "available_objectives",
    "get_objective",
    "register_objective",
    "resolve_objective",
]

#: Backend tiers an objective issues certificates for (the spelling the
#: :mod:`repro.api` backends pass to :meth:`Objective.certificate`).
CERTIFICATE_TIERS = ("closed_form", "exact", "heuristic")


class Objective(ABC):
    """One way of scoring a covering — see the module docstring.

    Costs are additive over blocks: the engine's branch-and-bound
    accumulates :meth:`block_cost` along a branch and prunes with
    :meth:`node_bound`, so both must agree that
    ``covering_value == Σ block_cost(blk)``.  ``track_parity`` opts the
    search into maintaining per-vertex residual-degree parity (an
    ``O(block)`` increment) for bounds that need it.
    """

    #: Registry key, ``CoverSpec.objective`` value, and CLI spelling.
    name: str = ""
    #: One-line human description (the CLI ``objectives`` listing).
    description: str = ""
    #: Ask the engine to maintain the residual odd-degree vertex count
    #: (``odd_vertices`` in :meth:`node_bound`).
    track_parity: bool = False

    # -- cost model ------------------------------------------------------

    @abstractmethod
    def block_cost(self, block: "CycleBlock") -> int:
        """Additive cost of using ``block`` in a covering."""

    def covering_value(self, covering: "Covering") -> int:
        """Objective value of a complete covering (Σ block costs)."""
        return sum(self.block_cost(blk) for blk in covering.blocks)

    # -- engine hooks ----------------------------------------------------

    @abstractmethod
    def node_bound(
        self,
        *,
        frac_units: int,
        frac_denom: int,
        residual_requests: int,
        max_cover: int,
        min_cost: int,
        odd_vertices: int,
    ) -> int:
        """Admissible lower bound on the *remaining* cost of a partial
        covering.

        ``frac_units``/``frac_denom`` are the engine's running
        fractional packing totals (``⌈frac_units/frac_denom⌉`` blocks
        are still needed); ``residual_requests`` the number of
        still-unmet requests; ``max_cover`` the most requests any
        candidate retires; ``min_cost`` the cheapest candidate's block
        cost; ``odd_vertices`` the number of vertices with odd residual
        demand degree (0 unless ``track_parity``).  Never overestimate —
        the branch-and-bound prunes with this.
        """

    def node_bound_batch(
        self,
        *,
        frac_units,
        frac_denom: int,
        residual_requests,
        max_cover: int,
        min_cost: int,
        odd_vertices,
    ):
        """Vectorized :meth:`node_bound` over aligned per-child arrays
        (the numpy kernel evaluates a whole frontier slice at once).

        ``frac_units``/``residual_requests`` are integer arrays of
        equal length; ``odd_vertices`` is an aligned array, or the
        plain int ``0`` when the objective does not track parity; the
        scalars mean what they mean in :meth:`node_bound`.  Must return a sequence elementwise
        equal to the scalar hook — the kernel-parity harness enforces
        this for the built-ins.  The default loops over the scalar
        hook, so custom objectives are correct (if unvectorized) with
        no extra work; overrides may assume numpy is importable (the
        numpy kernel is the only caller).
        """
        from itertools import repeat

        odds = repeat(odd_vertices) if isinstance(odd_vertices, int) else odd_vertices
        return [
            self.node_bound(
                frac_units=int(w),
                frac_denom=frac_denom,
                residual_requests=int(r),
                max_cover=max_cover,
                min_cost=min_cost,
                odd_vertices=int(o),
            )
            for w, r, o in zip(frac_units, residual_requests, odds)
        ]

    # -- candidate admissibility ----------------------------------------

    def admits(
        self, block: "CycleBlock", allowed_sizes: tuple[int, ...] | None
    ) -> bool:
        """May ``block`` appear in a covering under the spec's size
        restriction?  The default is the Manthey-style rule — the cycle
        length must lie in ``allowed_sizes`` (``None`` admits all)."""
        return allowed_sizes is None or block.size in allowed_sizes

    # -- certificates ----------------------------------------------------

    @abstractmethod
    def instance_certificate(self, instance: "Instance") -> "LowerBoundCertificate":
        """Admissible lower bound on this objective's optimum for an
        arbitrary instance (the verifier's oracle)."""

    def certificate(self, spec, tier: str) -> "LowerBoundCertificate":
        """Certificate a backend tier attaches to its envelope.

        ``spec`` is duck-typed (anything with ``n``, ``lam``,
        ``is_all_to_all`` and ``instance()`` — a
        :class:`repro.api.spec.CoverSpec` in practice); ``tier`` is one
        of :data:`CERTIFICATE_TIERS`.  The default ignores the tier and
        bounds the materialised instance; objectives with stronger
        uniform-demand arguments override per tier.
        """
        return self.instance_certificate(spec.instance())

    # -- improver --------------------------------------------------------

    def improvement_key(self, covering: "Covering") -> tuple[int, int]:
        """Lexicographic quantity the local-search improver minimises.
        Every accepted move must strictly decrease it (termination)."""
        return (self.covering_value(covering), covering.num_blocks)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Objective {self.name}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


_REGISTRY: dict[str, Objective] = {}


def register_objective(objective: Objective, *, replace: bool = False) -> Objective:
    """Register ``objective`` under ``objective.name``; refuses to
    shadow an existing name unless ``replace=True``."""
    name = objective.name
    if not name or not isinstance(name, str):
        raise SolverError(f"objective must carry a non-empty string name, got {name!r}")
    if not replace and name in _REGISTRY:
        raise SolverError(f"objective {name!r} is already registered")
    _REGISTRY[name] = objective
    return objective


def get_objective(name: str) -> Objective:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown objective {name!r} (registered: "
            f"{', '.join(available_objectives())})"
        ) from None


def available_objectives() -> tuple[str, ...]:
    """Registered objective names, in registration order."""
    return tuple(_REGISTRY)


def resolve_objective(objective: "Objective | str | None") -> Objective:
    """Coerce an engine-level objective argument: ``None`` means the
    historical ``min_blocks`` behaviour, a string is looked up in the
    registry, an :class:`Objective` passes through."""
    if objective is None:
        return MIN_BLOCKS
    if isinstance(objective, str):
        return get_objective(objective)
    return objective


# ---------------------------------------------------------------------------
# min_blocks — the paper's ρ(n)
# ---------------------------------------------------------------------------


class MinBlocksObjective(Objective):
    """Fewest cycles (the paper's ρ).  Every block costs 1; the node
    bound is the engine's historical fractional/cardinality packing
    maximum, byte-for-byte."""

    name = "min_blocks"
    description = "fewest cycles (the paper's rho(n))"

    def block_cost(self, block: "CycleBlock") -> int:
        return 1

    def covering_value(self, covering: "Covering") -> int:
        return covering.num_blocks

    def node_bound(
        self,
        *,
        frac_units: int,
        frac_denom: int,
        residual_requests: int,
        max_cover: int,
        min_cost: int,
        odd_vertices: int,
    ) -> int:
        bound = -(-frac_units // frac_denom)
        card = -(-residual_requests // max_cover)
        return card if card > bound else bound

    def node_bound_batch(
        self,
        *,
        frac_units,
        frac_denom: int,
        residual_requests,
        max_cover: int,
        min_cost: int,
        odd_vertices,
    ):
        import numpy as np

        # ``(x + d - 1) // d`` is ``ceil(x / d)`` for d > 0, same as the
        # scalar hook's ``-(-x // d)`` but one array temporary cheaper.
        return np.maximum(
            (frac_units + (frac_denom - 1)) // frac_denom,
            (residual_requests + (max_cover - 1)) // max_cover,
        )

    def instance_certificate(self, instance: "Instance") -> "LowerBoundCertificate":
        from .bounds import instance_lower_bound

        return instance_lower_bound(instance)

    def certificate(self, spec, tier: str) -> "LowerBoundCertificate":
        """The historical per-tier certificates: the formula tier uses
        the full counting/diameter/parity arguments (λ-repetition bound
        for λ > 1), the exact tier those same arguments for uniform
        ``K_n`` and the counting bound otherwise, the heuristic tier
        always the instance counting bound."""
        from .bounds import instance_lower_bound, lower_bound

        if tier == "closed_form":
            if spec.lam == 1:
                return lower_bound(spec.n)
            from ..extensions.lambda_fold import lambda_lower_bound

            return lambda_lower_bound(spec.n, spec.lam)
        if tier == "exact" and spec.is_all_to_all and spec.lam == 1:
            return lower_bound(spec.n)
        return instance_lower_bound(spec.instance())

    def improvement_key(self, covering: "Covering") -> tuple[int, int]:
        # Fewer blocks first; slot-shaving plateau walks feed later
        # merges (the improver's historical acceptance rule).
        return (covering.num_blocks, covering.total_slots)


# ---------------------------------------------------------------------------
# min_total_size — refs [3]/[4], Σ|I_k|
# ---------------------------------------------------------------------------


class MinTotalSizeObjective(Objective):
    """Minimum total ring size ``Σ_k |I_k|`` (total ADM count).

    A block of size ``s`` provides exactly ``s`` request slots, so the
    objective equals total covered slots; the remaining cost of a
    partial covering is at least the number of unmet requests, plus one
    extra slot per two odd-residual-degree vertices (every block
    contributes an even number of edge-ends at each vertex), plus the
    packing bound's block count times the cheapest block.
    """

    name = "min_total_size"
    description = "smallest total ring size sum |I_k| (ADM count, refs [3]/[4])"
    track_parity = True

    def block_cost(self, block: "CycleBlock") -> int:
        return block.size

    def covering_value(self, covering: "Covering") -> int:
        return covering.total_slots

    def node_bound(
        self,
        *,
        frac_units: int,
        frac_denom: int,
        residual_requests: int,
        max_cover: int,
        min_cost: int,
        odd_vertices: int,
    ) -> int:
        slots = residual_requests + odd_vertices // 2
        blocks_needed = -(-frac_units // frac_denom)
        card = -(-residual_requests // max_cover)
        if card > blocks_needed:
            blocks_needed = card
        packed = min_cost * blocks_needed
        return packed if packed > slots else slots

    def node_bound_batch(
        self,
        *,
        frac_units,
        frac_denom: int,
        residual_requests,
        max_cover: int,
        min_cost: int,
        odd_vertices,
    ):
        import numpy as np

        slots = residual_requests + odd_vertices // 2
        blocks_needed = np.maximum(
            (frac_units + (frac_denom - 1)) // frac_denom,
            (residual_requests + (max_cover - 1)) // max_cover,
        )
        return np.maximum(min_cost * blocks_needed, slots)

    def instance_certificate(self, instance: "Instance") -> "LowerBoundCertificate":
        from .bounds import total_size_lower_bound

        return total_size_lower_bound(instance)


MIN_BLOCKS = register_objective(MinBlocksObjective())
MIN_TOTAL_SIZE = register_objective(MinTotalSizeObjective())
