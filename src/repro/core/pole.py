"""Pole decompositions of ``K_{n'}``, ``n' ≡ 3 (mod 4)`` — the odd-side
scaffold of the Theorem 2 construction for ``n ≡ 2 (mod 4)``.

For ``n = 4q+2`` we build an optimal decomposition of ``K_{n+1}``
(``n' = 4q+3``, ``p = 2q+1``) in which the *pole* vertex 0 lies in
``2q`` triangles and exactly one quad, arranged so that deleting the
pole leaves mergeable fragments:

* triangles, for ``k = 1..q``::

      inner_k = (0, 2k+1, 2k+2q)      outer_k = (0, 2k, 2k+2q+1)

  Each is tight, and the leftover chords ``{2k+1, 2k+2q}`` ⊂
  ``{2k, 2k+2q+1}`` are *nested*, so after deleting the pole each pair
  merges into the convex quad ``(2k, 2k+1, 2k+2q, 2k+2q+1)``.
* the pole quad ``(0, 1, w, n'-1)`` with ``w ∈ {2q+1, 2q+2}`` — its
  fragment is the 2-edge path ``1 – w – (n'-1)``, closed into one
  triangle.

These forced blocks cover the pole's star plus ``2q+2`` other chords;
the *completion* — partitioning the remaining chords into one tight
triangle and ``2q²+q−1`` tight quads — is found by the exact-cover
engine and cached per ``n'``.  The full pole decomposition is an
optimal ``K_{n'}`` decomposition (same count/mix as the ladder's), just
with a differently-structured neighbourhood of vertex 0.
"""

from __future__ import annotations

from functools import lru_cache

from ..util import circular
from ..util.errors import ConstructionError
from ..util.validation import as_int
from .blocks import CycleBlock
from .covering import Covering
from .formulas import rho
from .engine import enumerate_tight_blocks, exact_decomposition

__all__ = ["pole_decomposition", "pole_forced_blocks", "POLE"]

POLE = 0  # The vertex deleted when deriving the even covering.


def pole_forced_blocks(n_prime: int, w: int) -> list[CycleBlock]:
    """The forced blocks through the pole for ``K_{n'}`` (see module
    docstring); ``w`` is the pole quad's interior vertex."""
    q = (n_prime - 3) // 4
    blocks: list[CycleBlock] = []
    for k in range(1, q + 1):
        blocks.append(CycleBlock((0, 2 * k + 1, 2 * k + 2 * q)))      # inner_k
        blocks.append(CycleBlock((0, 2 * k, 2 * k + 2 * q + 1)))      # outer_k
    blocks.append(CycleBlock((0, 1, w, n_prime - 1)))
    return blocks


@lru_cache(maxsize=128)
def pole_decomposition(n_prime: int) -> Covering:
    """Optimal decomposition of ``K_{n'}`` (``n' ≡ 3 mod 4``, ``n' ≥ 7``)
    with the pole structure at vertex 0.  Cached per ``n'``.
    """
    n_prime = as_int(n_prime, "n_prime")
    if n_prime < 7 or n_prime % 4 != 3:
        raise ConstructionError(
            f"pole decomposition needs n' ≡ 3 (mod 4), n' ≥ 7; got {n_prime}"
        )
    q = (n_prime - 3) // 4

    last_error: Exception | None = None
    for w in (2 * q + 2, 2 * q + 1):
        forced = pole_forced_blocks(n_prime, w)
        covered: set[tuple[int, int]] = set()
        ok = True
        for blk in forced:
            for e in blk.edges():
                if e in covered:
                    ok = False  # forced blocks collide for this w
                    break
                covered.add(e)
            if not ok:
                break
        if not ok:
            continue

        remaining = frozenset(
            e
            for e in circular.all_chords(n_prime)
            if 0 not in e and e not in covered
        )
        try:
            completion = exact_decomposition(
                n_prime,
                remaining,
                max_triangles=1,
                candidates=enumerate_tight_blocks(n_prime),
            )
        except Exception as exc:  # node-limit blowups fall through to next w
            last_error = exc
            completion = None
        if completion is None:
            continue

        covering = Covering(n_prime, tuple(forced) + tuple(completion))
        if covering.num_blocks != rho(n_prime):
            raise ConstructionError(
                f"pole decomposition of K_{n_prime} has {covering.num_blocks} "
                f"blocks, expected ρ = {rho(n_prime)}"
            )
        return covering

    raise ConstructionError(
        f"no pole completion found for n' = {n_prime}"
        + (f" (last error: {last_error})" if last_error else "")
    )
