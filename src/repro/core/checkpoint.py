"""Serializable branch-and-bound search state: :class:`SearchCheckpoint`.

The engine's two exact searches (:meth:`SolverEngine.min_covering` over
``K_n`` and :meth:`SolverEngine.min_covering_instance` over arbitrary
demand) run as explicit-stack loops whose entire mutable state — the
incumbent, the accumulated objective cost per frame, each frame's
candidate cursor, the transposition memo, and the unexplored root-orbit
frontier (the root frame's remaining candidates) — fits in one
:class:`SearchCheckpoint`.  A checkpoint captured at any loop boundary
and resumed later continues the *same* deterministic node sequence, so
the final covering, node count, and serialized envelope are
byte-identical to an uninterrupted run.

Serialization is JSON (schema-versioned through :mod:`repro.io`'s
``format``/``version`` convention, format tag ``repro-checkpoint``).
Chord bitmasks exceed 64 bits from ``n = 12`` on, so masks are encoded
as hex strings; everything else is plain JSON scalars.  Payloads are
deterministic: ``to_json`` sorts keys and preserves memo insertion
order (which the capped memo's FIFO eviction depends on).

:class:`CappedMemo` is the size-capped transposition memo (satellite of
the same PR): a ``dict`` in insertion order whose :meth:`~CappedMemo.store`
evicts the *oldest* entry when a new key would exceed the cap — a
deterministic, count-based policy controlled by the ``REPRO_MEMO_CAP``
environment variable (``0`` disables the cap).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

from ..util.errors import SolverError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_MAJOR",
    "CappedMemo",
    "DEFAULT_MEMO_CAP",
    "KIND_INSTANCE",
    "KIND_KN",
    "KIND_SAT",
    "MEMO_CAP_ENV",
    "SearchCheckpoint",
    "memo_cap",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_SCHEMA_MAJOR = 1
# Minor 1 added the ``sat`` kind: the SAT certification backend's walk
# state (no frames/memo — its resumable unit is the per-k boundary).
_CHECKPOINT_SCHEMA_MINOR = 1

KIND_KN = "kn"
KIND_INSTANCE = "instance"
KIND_SAT = "sat"

MEMO_CAP_ENV = "REPRO_MEMO_CAP"
DEFAULT_MEMO_CAP = 2_000_000


def memo_cap() -> int:
    """The transposition-memo entry cap from ``REPRO_MEMO_CAP``.

    Unset/empty means :data:`DEFAULT_MEMO_CAP`; ``0`` means unbounded.
    Read per search call, so tests (and long-running workers) can
    adjust it without re-importing the engine.
    """
    raw = os.environ.get(MEMO_CAP_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_MEMO_CAP
    try:
        cap = int(raw)
    except ValueError:
        raise SolverError(
            f"{MEMO_CAP_ENV} must be a non-negative integer, got {raw!r}"
        ) from None
    if cap < 0:
        raise SolverError(
            f"{MEMO_CAP_ENV} must be a non-negative integer, got {raw!r}"
        )
    return cap


class CappedMemo(dict):
    """Insertion-ordered transposition memo with deterministic FIFO
    eviction: storing a *new* key at capacity evicts the oldest entry
    first.  Updating an existing key keeps its insertion slot, so the
    eviction order — and therefore the serialized checkpoint — depends
    only on the search's visit sequence, never on hashing or timing.

    A cap of ``0`` (or any falsy value) disables eviction entirely.
    """

    def __init__(self, cap: int = 0, items: Any = ()) -> None:
        super().__init__(items)
        self.cap = cap

    def store(self, key: Any, value: Any) -> None:
        if self.cap and len(self) >= self.cap and key not in self:
            del self[next(iter(self))]
        self[key] = value


def _frames_payload(kind: str, frames: list[list[Any]]) -> list[list[Any]]:
    if kind == KIND_KN:
        # [covered, used, W, odd, scored, cursor] with masks as hex
        return [
            [hex(covered), used, w, odd, list(scored), cursor]
            for covered, used, w, odd, scored, cursor in frames
        ]
    # [used, remaining, W, odd, scored, cursor, decremented]
    return [
        [used, remaining, w, odd, list(scored), cursor, list(dec)]
        for used, remaining, w, odd, scored, cursor, dec in frames
    ]


def _frames_from_payload(kind: str, raw: Any) -> list[list[Any]]:
    frames: list[list[Any]] = []
    for entry in raw:
        if kind == KIND_KN:
            covered, used, w, odd, scored, cursor = entry
            frames.append(
                [int(covered, 16), int(used), int(w), int(odd),
                 [int(i) for i in scored], int(cursor)]
            )
        else:
            used, remaining, w, odd, scored, cursor, dec = entry
            frames.append(
                [int(used), int(remaining), int(w), int(odd),
                 [int(i) for i in scored], int(cursor), [int(b) for b in dec]]
            )
    return frames


@dataclass
class SearchCheckpoint:
    """A resumable snapshot of one branch-and-bound search.

    ``kind`` selects the search family (:data:`KIND_KN` for the
    all-to-all ``K_n`` covering search, :data:`KIND_INSTANCE` for the
    demand-instance search) and fixes the frame layout:

    * ``kn`` frames are ``[covered_mask, used_cost, W, odd_mask,
      scored_candidates, cursor]``;
    * ``instance`` frames are ``[used_cost, remaining_requests, W,
      odd_mask, scored_candidates, cursor, decremented_bits]`` and the
      snapshot additionally carries the mutable ``residual_counts``
      vector plus a ``demand`` fingerprint validated on resume;
    * ``sat`` checkpoints carry no frames or memo at all — the SAT
      backend's resumable unit is the boundary between ``k`` steps of
      its downward cardinality walk, and everything it needs (the
      engine name, ``k_start``, the next ``k``, per-``k`` statistics)
      lives in the ``sat_state`` dict.  Each ``k`` step runs on a
      fresh solver, so a resume reproduces the identical per-``k``
      statistics and final envelope.

    The chosen-block path is *not* stored: frame ``k``'s active child
    is always ``scored[cursor - 1]``, so the path is reconstructed from
    the frames on resume.  ``memo`` preserves insertion order (the
    capped memo's eviction order).  ``resumes`` counts how many times
    this lineage has been resumed — runtime provenance only, never part
    of a result envelope.
    """

    kind: str
    n: int
    max_size: int
    objective: str
    nodes: int
    best_value: int
    best_blocks: tuple[tuple[int, ...], ...] | None
    frames: list[list[Any]]
    memo: list[tuple[Any, int]]
    branching: str = "lex"  # kn only
    use_memo: bool = True  # kn only (the instance search always memoizes)
    dominance: bool = True  # instance only
    allowed_sizes: tuple[int, ...] | None = None
    residual_counts: list[int] | None = None  # instance only
    demand: list[list[int]] | None = None  # instance fingerprint [[a, b, m], ...]
    sat_state: dict[str, Any] | None = None  # sat only (walk progress)
    resumes: int = 0

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        from ..io import schema_version_field

        payload: dict[str, Any] = {
            "format": CHECKPOINT_FORMAT,
            "version": schema_version_field(
                CHECKPOINT_SCHEMA_MAJOR, _CHECKPOINT_SCHEMA_MINOR
            ),
            "kind": self.kind,
            "n": self.n,
            "max_size": self.max_size,
            "objective": self.objective,
            "branching": self.branching,
            "use_memo": self.use_memo,
            "dominance": self.dominance,
            "allowed_sizes": (
                list(self.allowed_sizes) if self.allowed_sizes is not None else None
            ),
            "nodes": self.nodes,
            "best_value": self.best_value,
            "best_blocks": (
                [list(vs) for vs in self.best_blocks]
                if self.best_blocks is not None
                else None
            ),
            "frames": _frames_payload(self.kind, self.frames),
            "resumes": self.resumes,
        }
        if self.kind == KIND_SAT:
            payload["memo"] = []
            payload["sat_state"] = self.sat_state
        elif self.kind == KIND_KN:
            payload["memo"] = [[hex(key), used] for key, used in self.memo]
        else:
            payload["memo"] = [[list(key), used] for key, used in self.memo]
            payload["residual_counts"] = (
                list(self.residual_counts)
                if self.residual_counts is not None
                else None
            )
            payload["demand"] = (
                [list(entry) for entry in self.demand]
                if self.demand is not None
                else None
            )
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "SearchCheckpoint":
        from ..io import require_schema
        from ..util.errors import InvalidCoveringError

        try:
            require_schema(payload, CHECKPOINT_FORMAT, CHECKPOINT_SCHEMA_MAJOR)
        except InvalidCoveringError as exc:
            raise SolverError(f"bad checkpoint payload: {exc}") from None
        kind = payload.get("kind")
        if kind not in (KIND_KN, KIND_INSTANCE, KIND_SAT):
            raise SolverError(f"bad checkpoint payload: unknown kind {kind!r}")
        try:
            sat_state = None
            if kind == KIND_SAT:
                memo = []
                residual_counts = None
                demand = None
                sat_state = payload.get("sat_state")
                if not isinstance(sat_state, dict):
                    raise SolverError(
                        "bad checkpoint payload: sat checkpoint without sat_state"
                    )
            elif kind == KIND_KN:
                memo = [(int(key, 16), int(used)) for key, used in payload["memo"]]
                residual_counts = None
                demand = None
            else:
                memo = [
                    (tuple(int(c) for c in key), int(used))
                    for key, used in payload["memo"]
                ]
                raw_residual = payload.get("residual_counts")
                residual_counts = (
                    [int(c) for c in raw_residual]
                    if raw_residual is not None
                    else None
                )
                raw_demand = payload.get("demand")
                demand = (
                    [[int(x) for x in entry] for entry in raw_demand]
                    if raw_demand is not None
                    else None
                )
            raw_sizes = payload.get("allowed_sizes")
            raw_best = payload.get("best_blocks")
            return cls(
                kind=kind,
                n=int(payload["n"]),
                max_size=int(payload["max_size"]),
                objective=str(payload["objective"]),
                branching=str(payload.get("branching", "lex")),
                use_memo=bool(payload.get("use_memo", True)),
                dominance=bool(payload.get("dominance", True)),
                allowed_sizes=(
                    tuple(int(s) for s in raw_sizes)
                    if raw_sizes is not None
                    else None
                ),
                nodes=int(payload["nodes"]),
                best_value=int(payload["best_value"]),
                best_blocks=(
                    tuple(tuple(int(v) for v in vs) for vs in raw_best)
                    if raw_best is not None
                    else None
                ),
                frames=_frames_from_payload(kind, payload["frames"]),
                memo=memo,
                residual_counts=residual_counts,
                demand=demand,
                sat_state=sat_state,
                resumes=int(payload.get("resumes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SolverError(f"bad checkpoint payload: {exc!r}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SolverError(f"bad checkpoint payload: {exc}") from None
        return cls.from_payload(payload)

    # -- resume validation ----------------------------------------------

    def check_compatible(self, **expected: Any) -> None:
        """Refuse to resume into a differently-configured search: every
        keyword is compared against the corresponding checkpoint field
        and all mismatches are reported at once."""
        mismatches = [
            f"{name}: checkpoint has {getattr(self, name)!r}, search has {want!r}"
            for name, want in sorted(expected.items())
            if getattr(self, name) != want
        ]
        if mismatches:
            raise SolverError(
                "checkpoint is not resumable under this search configuration "
                f"({'; '.join(mismatches)})"
            )
