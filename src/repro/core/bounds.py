"""Lower bounds on ρ(n) with human-readable certificates.

The note states its theorems without proof; this module reconstructs the
matching lower bounds so that the reproduction can *certify* optimality
of the constructions instead of trusting the formulas:

1. **Counting bound** — each DRC cycle covers requests whose ring
   distances sum to ≤ n (its clockwise gaps sum to exactly n and each
   distance is at most its gap), so ``ρ ≥ ⌈Σ_e dist(e)/n⌉``.
2. **Diameter bound** (even n) — a DRC cycle contains at most one
   diameter request: two antipodal pairs cannot both appear consecutively
   in one circular-order cycle.  With ``n/2`` diameters, ``ρ ≥ n/2``.
3. **Parity bound** (n = 2p, p even) — if ``ρ = p²/2`` every cycle would
   be tight and every request covered exactly once, i.e. the blocks would
   decompose ``K_n`` into cycles; impossible because vertex degrees
   ``n−1`` are odd.  Hence ``ρ ≥ p²/2 + 1``.

Together these meet the constructions for every ``n``, proving
``ρ(n)`` equals the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traffic.instances import Instance
from ..util import circular
from ..util.validation import as_int
from .formulas import counting_bound

__all__ = [
    "BoundArgument",
    "LowerBoundCertificate",
    "lower_bound",
    "instance_lower_bound",
    "total_size_lower_bound",
]


@dataclass(frozen=True)
class BoundArgument:
    """One lower-bound argument: its name, value, and justification."""

    name: str
    value: int
    reason: str


@dataclass(frozen=True)
class LowerBoundCertificate:
    """The combined lower bound and the arguments supporting it."""

    n: int
    value: int
    arguments: tuple[BoundArgument, ...]

    def best_argument(self) -> BoundArgument:
        return max(self.arguments, key=lambda a: a.value)

    def explain(self) -> str:
        lines = [f"ρ({self.n}) ≥ {self.value}:"]
        for arg in self.arguments:
            marker = "*" if arg.value == self.value else " "
            lines.append(f" {marker} [{arg.name}] ≥ {arg.value}: {arg.reason}")
        return "\n".join(lines)


def lower_bound(n: int) -> LowerBoundCertificate:
    """Best proven lower bound on ρ(n) for All-to-All traffic on ``C_n``."""
    n = as_int(n, "n")
    if n < 3:
        raise ValueError(f"n ≥ 3 required, got {n}")
    args: list[BoundArgument] = []

    total = circular.total_chord_distance(n)
    cb = counting_bound(n)
    args.append(
        BoundArgument(
            "counting",
            cb,
            f"Σ distances = {total}; each DRC cycle accounts for ≤ {n} "
            f"distance units, so ≥ ⌈{total}/{n}⌉ cycles",
        )
    )

    if n % 2 == 0:
        p = n // 2
        args.append(
            BoundArgument(
                "diameter",
                p,
                f"{p} diameter requests, and a circular-order cycle can "
                "contain at most one antipodal pair as an edge",
            )
        )
        if p % 2 == 0:
            args.append(
                BoundArgument(
                    "parity",
                    p * p // 2 + 1,
                    f"ρ = p²/2 = {p * p // 2} would force an exact cycle "
                    f"decomposition of K_{n}, impossible with odd vertex "
                    f"degree {n - 1}",
                )
            )

    value = max(arg.value for arg in args)
    return LowerBoundCertificate(n=n, value=value, arguments=tuple(args))


def instance_lower_bound(instance: Instance) -> LowerBoundCertificate:
    """Counting lower bound generalised to an arbitrary instance on
    ``C_n``: ``ρ(I) ≥ ⌈Σ_e m_e·dist(e)/n⌉`` — used for λK_n and custom
    logical graphs in the extensions."""
    n = instance.n
    total = instance.total_distance
    value = -(-total // n) if total else 0
    arg = BoundArgument(
        "counting",
        value,
        f"Σ weighted distances = {total}; each DRC cycle accounts for ≤ {n}",
    )
    return LowerBoundCertificate(n=n, value=value, arguments=(arg,))


def total_size_lower_bound(instance: Instance) -> LowerBoundCertificate:
    """Exact lower bound for the ring-size-sum objective ``Σ_k |I_k|``
    (paper refs [3]/[4]: Eilam–Moran–Zaks, Gerstel–Lin–Sasaki).

    A block of size ``s`` provides exactly ``s`` request slots, so
    ``Σ|I_k|`` is the total number of covered slots:

    1. **Slot counting** — every request needs its own slot, so
       ``Σ|I_k| ≥ Σ_e m_e``.
    2. **End parity** — a cycle through vertex ``v`` covers exactly two
       chord-ends at ``v``, so the covered ends at every vertex are
       even; a vertex of odd demand degree therefore carries at least
       one surplus end, and with ``d`` odd-degree vertices (``d`` is
       even by handshake) at least ``d/2`` surplus slots exist:
       ``Σ|I_k| ≥ Σ_e m_e + d/2``.

    For All-to-All demand this is the exact ``|E(K_n)| + p·[n even]``
    of the literature (degrees ``n − 1`` are odd exactly for even
    ``n``), attained by the Theorem 1/2 coverings for every ``n``
    except ``n = 4`` (where 8 slots would need two DRC quads, which
    cannot reach the diagonals — the optimum is 9).
    """
    n = instance.n
    total = sum(instance.demand.values())
    args = [
        BoundArgument(
            "slot_counting",
            total,
            f"Σ multiplicities = {total}; every request occupies one ring slot",
        )
    ]
    degree = [0] * n
    for (a, b), m in instance.demand.items():
        degree[a] += m
        degree[b] += m
    odd = sum(1 for d in degree if d % 2)
    value = total
    if odd:
        value = total + odd // 2
        args.append(
            BoundArgument(
                "end_parity",
                value,
                f"{odd} vertices have odd demand degree; covered chord-ends "
                "per vertex are even, so each pair of odd vertices forces "
                "one surplus slot",
            )
        )
    return LowerBoundCertificate(n=n, value=value, arguments=tuple(args))
