"""Traffic instances: the logical graph ``I`` of the paper.

An :class:`Instance` is a multiset of symmetric requests (chords) over
``n`` nodes.  The paper's headline case is All-to-All (``I = K_n``); the
future-work section motivates ``λK_n`` (every pair requested ``λ``
times) and arbitrary logical graphs — all are represented here
uniformly as a chord → multiplicity mapping.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from functools import cached_property

import networkx as nx

from ..util import circular
from ..util.validation import check_positive, check_vertex

__all__ = ["Instance", "all_to_all", "lambda_all_to_all", "from_requests", "ring_instance"]


@dataclass(frozen=True)
class Instance:
    """A symmetric traffic instance on nodes ``0..n-1``.

    ``demand`` maps normalised chords to positive multiplicities.  The
    instance is immutable; construction normalises and validates.
    """

    n: int
    demand: Mapping[tuple[int, int], int] = field(default_factory=dict)
    name: str = "custom"

    def __post_init__(self) -> None:
        check_positive(self.n, "n")
        normalised: dict[tuple[int, int], int] = {}
        for (a, b), m in dict(self.demand).items():
            check_vertex(a, self.n)
            check_vertex(b, self.n)
            if m <= 0:
                raise ValueError(f"request multiplicity must be positive, got {m} for {(a, b)}")
            e = circular.chord(a, b)
            normalised[e] = normalised.get(e, 0) + int(m)
        object.__setattr__(self, "demand", normalised)

    # -- queries --------------------------------------------------------

    def requests(self) -> Iterable[tuple[int, int]]:
        """Distinct requested chords (ignoring multiplicity)."""
        return self.demand.keys()

    def required(self, e: tuple[int, int]) -> int:
        """Multiplicity required for chord ``e`` (0 when not requested)."""
        a, b = min(e), max(e)
        return self.demand.get((a, b), 0)

    @cached_property
    def total_requests(self) -> int:
        """Total request count, multiplicities included."""
        return sum(self.demand.values())

    @cached_property
    def max_multiplicity(self) -> int:
        return max(self.demand.values(), default=0)

    def degree(self, v: int) -> int:
        """Weighted degree of node ``v`` in the logical graph."""
        check_vertex(v, self.n)
        return sum(m for (a, b), m in self.demand.items() if v in (a, b))

    @cached_property
    def total_distance(self) -> int:
        """``Σ_e multiplicity(e)·dist(e)`` — numerator of the counting
        lower bound for this instance on the ring ``C_n``."""
        return sum(m * circular.chord_distance(self.n, e) for e, m in self.demand.items())

    def is_all_to_all(self) -> bool:
        lam = self.max_multiplicity
        return (
            lam >= 1
            and len(self.demand) == circular.n_chords(self.n)
            and all(m == lam for m in self.demand.values())
        )

    def as_graph(self) -> nx.MultiGraph:
        """The logical multigraph (one parallel edge per request unit)."""
        g = nx.MultiGraph()
        g.add_nodes_from(range(self.n))
        for (a, b), m in self.demand.items():
            for _ in range(m):
                g.add_edge(a, b)
        return g

    def scaled(self, factor: int) -> "Instance":
        """The instance with every multiplicity multiplied by ``factor``."""
        check_positive(factor, "factor")
        return Instance(
            self.n,
            {e: m * factor for e, m in self.demand.items()},
            name=f"{self.name}×{factor}",
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Instance(n={self.n}, name={self.name!r}, requests={self.total_requests})"


def all_to_all(n: int) -> Instance:
    """The All-to-All (total exchange) instance: ``I = K_n``."""
    check_positive(n, "n")
    if n < 2:
        return Instance(n, {}, name="all-to-all")
    return Instance(n, {e: 1 for e in circular.all_chords(n)}, name="all-to-all")


def lambda_all_to_all(n: int, lam: int) -> Instance:
    """The ``λK_n`` instance from the paper's extensions section."""
    check_positive(lam, "lambda")
    return Instance(
        n, {e: lam for e in circular.all_chords(n)}, name=f"{lam}·all-to-all"
    )


def from_requests(n: int, requests: Iterable[tuple[int, int]], name: str = "custom") -> Instance:
    """An instance from an explicit request list (repeats accumulate)."""
    demand: dict[tuple[int, int], int] = {}
    for a, b in requests:
        e = circular.chord(a, b)
        demand[e] = demand.get(e, 0) + 1
    return Instance(n, demand, name=name)


def ring_instance(n: int) -> Instance:
    """Adjacent-neighbour traffic (a ring logical graph) — a degenerate
    instance useful in tests: one convex n-cycle covers it."""
    check_positive(n, "n")
    if n < 3:
        return Instance(n, {}, name="ring")
    return from_requests(n, [(i, (i + 1) % n) for i in range(n)], name="ring")
