"""Traffic (logical layer) instances."""

from .instances import Instance, all_to_all, from_requests, lambda_all_to_all, ring_instance

__all__ = ["Instance", "all_to_all", "from_requests", "lambda_all_to_all", "ring_instance"]
