"""repro — reproduction of "A Note on Cycle Covering" (SPAA 2001).

Survivable WDM ring design via DRC cycle coverings: cover the All-to-All
logical graph ``K_n`` by small cycles, each independently routable with
edge-disjoint paths on the physical ring ``C_n``.

Quickstart::

    from repro.api import CoverSpec, solve

    result = solve(CoverSpec.for_ring(11))   # routed: closed_form, ρ(11)=15
    result.status, result.num_blocks

    from repro import optimal_covering, rho, verify_covering

    cov = optimal_covering(11)          # Theorem 1 object: 15 cycles
    assert cov.num_blocks == rho(11)
    print(verify_covering(cov, expect_optimal=True).summary())

Package map
-----------
``repro.api``            declarative front door: CoverSpec → backend → Result
``repro.core``           the paper's contribution (coverings, bounds, theorems)
``repro.rings``          physical ring substrate (topology, arcs, capacities)
``repro.traffic``        logical instances (All-to-All, λK_n, custom)
``repro.wdm``            optical layer: wavelengths, ADMs, cost model
``repro.survivability``  failure simulation & automatic protection switching
``repro.baselines``      non-DRC covers, greedy coverings (count and ADM flavours)
``repro.extensions``     the paper's future work: λK_n, trees of rings, grid, torus
``repro.analysis``       experiment harness regenerating every paper table
"""

from .core import (
    Covering,
    CycleBlock,
    SolverEngine,
    assert_valid_covering,
    counting_bound,
    even_covering,
    fast_covering,
    is_drc_routable,
    ladder_decomposition,
    lower_bound,
    optimal_covering,
    optimal_excess,
    optimality_gap,
    improve_covering,
    improved_greedy_covering,
    rho,
    route_block,
    solve_many,
    solve_min_covering,
    solve_min_covering_sharded,
    theorem_cycle_mix,
    triangle_covering_number,
    verify_covering,
)
from .traffic import Instance, all_to_all, lambda_all_to_all

__version__ = "1.1.0"

from . import api
from .api import CoverSpec, Result, solve, solve_batch

__all__ = [
    "CoverSpec",
    "Result",
    "api",
    "solve",
    "solve_batch",
    "Covering",
    "CycleBlock",
    "Instance",
    "SolverEngine",
    "improve_covering",
    "improved_greedy_covering",
    "solve_many",
    "solve_min_covering_sharded",
    "all_to_all",
    "assert_valid_covering",
    "counting_bound",
    "even_covering",
    "fast_covering",
    "is_drc_routable",
    "ladder_decomposition",
    "lambda_all_to_all",
    "lower_bound",
    "optimal_covering",
    "optimal_excess",
    "optimality_gap",
    "rho",
    "route_block",
    "solve_min_covering",
    "theorem_cycle_mix",
    "triangle_covering_number",
    "verify_covering",
    "__version__",
]
