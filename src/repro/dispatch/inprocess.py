"""In-process transport: a thin wrapper over :mod:`repro.util.parallel`.

With one worker the jobs run serially in schedule order — this is the
only transport that honours the sweep-budget ``admit`` gate *between*
jobs, which is what E10's ``time_budget`` semantics need.  With more
workers the batch fans out through
:func:`~repro.util.parallel.parallel_map` in weight-balanced LPT bins
(:func:`~repro.util.parallel.weighted_chunks`), exactly like the
engine's own batched sweeps.

No retries and no per-job deadlines here: the pool is this process's
children and :class:`ProcessPoolExecutor` already surfaces their
failures as exceptions.  The ``on_exhausted`` degradation hook *is*
honoured — a deterministically failing job (routing error, oversized
exact instance) is offered to it instead of aborting the batch, so
``degrade="heuristic"`` works identically on every transport.  Per-job
seconds are exact on the serial path; on the pooled path every job
reports the batch's wall-clock (the pool does not expose per-item
timings).
"""

from __future__ import annotations

from collections.abc import Sequence
from time import perf_counter

from ..api.result import Result
from ..api.spec import CoverSpec
from ..util.errors import ReproError
from ..util.parallel import parallel_map, resolve_workers
from .base import (
    Admit,
    Job,
    OnExhausted,
    OnResult,
    RetryPolicy,
    Transport,
    TransportOutcome,
)

__all__ = ["InProcessTransport"]


def _solve_in_process(spec: CoverSpec) -> Result:
    """Module-level (picklable) worker body: one uncached solve."""
    from ..api.service import solve

    return solve(spec, cache=None)


def _solve_capturing(spec: CoverSpec):
    """Picklable pooled-path body when a degradation hook is armed:
    solver failures come back as values instead of poisoning the pool."""
    try:
        return ("ok", _solve_in_process(spec))
    except ReproError as exc:
        return ("err", exc)


class InProcessTransport(Transport):
    name = "inproc"

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
        policy: RetryPolicy | None = None,
        on_exhausted: OnExhausted | None = None,
    ) -> TransportOutcome:
        outcome = TransportOutcome()
        nworkers = resolve_workers(workers)
        if nworkers == 1:
            for pos, job in enumerate(jobs):
                if admit is not None and not admit():
                    outcome.skipped.extend(jobs[pos:])
                    break
                t0 = perf_counter()
                try:
                    result = _solve_in_process(job.spec)
                except ReproError as exc:
                    if on_exhausted is not None and on_exhausted(job, exc):
                        outcome.degraded.append(job)
                        continue
                    raise
                on_result(job, result, perf_counter() - t0, "local")
            return outcome
        if admit is not None and not admit():
            outcome.skipped.extend(jobs)
            return outcome
        t0 = perf_counter()
        if on_exhausted is None:
            results = parallel_map(
                _solve_in_process,
                [job.spec for job in jobs],
                workers=nworkers,
                weights=[job.weight for job in jobs],
            )
            elapsed = perf_counter() - t0
            for job, result in zip(jobs, results):
                on_result(job, result, elapsed, "pool")
            return outcome
        captured = parallel_map(
            _solve_capturing,
            [job.spec for job in jobs],
            workers=nworkers,
            weights=[job.weight for job in jobs],
        )
        elapsed = perf_counter() - t0
        for job, (tag, value) in zip(jobs, captured):
            if tag == "ok":
                on_result(job, value, elapsed, "pool")
            elif on_exhausted(job, value):
                outcome.degraded.append(job)
            else:
                raise value
        return outcome
