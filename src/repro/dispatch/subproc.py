"""Subprocess transport: a pool of ``python -m repro worker`` processes.

Each worker slot owns one child process speaking the stdio line
protocol (:mod:`repro.dispatch.worker`): the dispatcher writes one
compact spec-JSON job line, the worker answers with one envelope line.
Scheduling, per-job deadlines, and retry-with-exclusion come from the
shared :class:`~repro.dispatch.base.QueueRunner`; this module only
knows how to spawn a worker, feed it, and kill it.

Death detection is the pipe itself: a worker that crashes (or is
killed by the deadline timer) closes its stdout, the pending ``readline``
returns empty, and the runner re-queues the job on a replacement
worker with the dead one excluded.

The job deadline is preempt-then-kill: at ``job_timeout`` the worker is
first *asked* to stop (a ``{"preempt": true}`` control line); a healthy
worker flushes a search checkpoint, answers with it, and exits, and the
runner resumes the proof on a replacement worker — work migration, not
retry-from-scratch.  Only a worker that ignores the request for
``preempt_grace`` more seconds (hung, stalled) is killed the old way.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
import threading
from collections.abc import Sequence
from pathlib import Path

from ..api.result import Result
from ..api.spec import CoverSpec
from .base import (
    Admit,
    Job,
    JobError,
    OnExhausted,
    OnResult,
    QueueRunner,
    QueueWorker,
    RetryPolicy,
    Transport,
    TransportOutcome,
    WorkerDeath,
    WorkerPreempted,
)

__all__ = ["SubprocessTransport", "worker_command", "worker_env"]


def worker_command(python: str | None = None) -> list[str]:
    return [python or sys.executable, "-m", "repro", "worker"]


def worker_env(extra_env: dict[str, str] | None = None) -> dict[str, str]:
    """The child's environment: the parent's, with this repro package's
    root prepended to PYTHONPATH so ``-m repro`` resolves to the same
    library even when the parent runs from a source tree."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    if extra_env:
        env.update(extra_env)
    return env


class _SubprocessWorker(QueueWorker):
    def __init__(
        self,
        worker_id: str,
        *,
        python: str | None = None,
        extra_env: dict[str, str] | None = None,
        extra_args: Sequence[str] = (),
        preempt_grace: float = 5.0,
    ) -> None:
        self.id = worker_id
        self.preempt_grace = preempt_grace
        self.proc = subprocess.Popen(
            worker_command(python) + list(extra_args),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=worker_env(extra_env),
        )
        self._deadline_fired = False

    def solve(
        self,
        spec: CoverSpec,
        timeout: float | None,
        checkpoint: dict | None = None,
    ) -> Result:
        job: dict = {"spec": spec.to_payload()}
        if checkpoint is not None:
            job["checkpoint"] = checkpoint
        request = json.dumps(job, sort_keys=True, separators=(",", ":"))
        try:
            assert self.proc.stdin is not None
            self.proc.stdin.write(request + "\n")
            self.proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise WorkerDeath(f"worker {self.id}: stdin pipe closed ({exc})") from exc
        timers: list[threading.Timer] = []
        self._deadline_fired = False
        if timeout is not None:
            # Ask first, kill later: the preempt request lets a healthy
            # worker checkpoint and bow out; the grace timer reaps one
            # that cannot answer (hung, stalled, dead).
            timers = [
                threading.Timer(timeout, self._request_preempt),
                threading.Timer(timeout + self.preempt_grace, self._kill_on_deadline),
            ]
            for timer in timers:
                timer.daemon = True
                timer.start()
        try:
            assert self.proc.stdout is not None
            raw = self.proc.stdout.readline()
        finally:
            for timer in timers:
                timer.cancel()
        if not raw:
            if self._deadline_fired:
                raise WorkerDeath(
                    f"worker {self.id} blew the {timeout}s job deadline "
                    f"on {spec.spec_hash[:12]} and was killed",
                    timed_out=True,
                )
            raise WorkerDeath(
                f"worker {self.id} died mid-job (exit {self.proc.poll()})"
            )
        try:
            reply = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise WorkerDeath(f"worker {self.id} emitted garbage: {exc}") from exc
        if not reply.get("ok"):
            if reply.get("kind") == "Preempted":
                raise WorkerPreempted(
                    f"worker {self.id} preempted on {spec.spec_hash[:12]} "
                    f"at the {timeout}s deadline",
                    spec_hash=reply.get("spec_hash"),
                    checkpoint=reply.get("checkpoint"),
                )
            raise JobError(
                f"job {spec.spec_hash[:12]} failed on worker {self.id}: "
                f"[{reply.get('kind', '?')}] {reply.get('error', 'unknown error')}"
            )
        try:
            return Result.from_payload(reply.get("result"))
        except Exception as exc:
            # A malformed envelope from an otherwise-alive worker: treat
            # as untrustworthy and retry the job elsewhere.
            raise WorkerDeath(
                f"worker {self.id} returned an unparsable envelope: {exc}"
            ) from exc

    def _request_preempt(self) -> None:
        try:
            assert self.proc.stdin is not None
            self.proc.stdin.write('{"preempt": true}\n')
            self.proc.stdin.flush()
        except (OSError, ValueError, AssertionError):
            pass  # already dead; the grace timer handles the rest

    def _kill_on_deadline(self) -> None:
        self._deadline_fired = True
        try:
            self.proc.kill()
        except OSError:
            pass

    def close(self) -> None:
        try:
            if self.proc.stdin is not None:
                self.proc.stdin.close()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=5)


class SubprocessTransport(Transport):
    name = "subprocess"

    def __init__(
        self,
        *,
        python: str | None = None,
        extra_env: dict[str, str] | None = None,
        extra_args: Sequence[str] = (),
        preempt_grace: float = 5.0,
    ) -> None:
        """``extra_args`` rides along on every worker command line
        (e.g. ``--checkpoint-every 512``); ``preempt_grace`` is how long
        a worker gets to answer a deadline preempt request before it is
        killed outright."""
        self.python = python
        self.extra_env = extra_env
        self.extra_args = tuple(extra_args)
        self.preempt_grace = preempt_grace

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
        policy: RetryPolicy | None = None,
        on_exhausted: OnExhausted | None = None,
    ) -> TransportOutcome:
        counter = itertools.count(1)

        def make_worker() -> _SubprocessWorker:
            return _SubprocessWorker(
                f"sub{next(counter)}",
                python=self.python,
                extra_env=self.extra_env,
                extra_args=self.extra_args,
                preempt_grace=self.preempt_grace,
            )

        runner = QueueRunner(
            make_worker,
            jobs,
            workers=workers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            on_result=on_result,
            admit=admit,
            policy=policy,
            on_exhausted=on_exhausted,
        )
        return runner.run()
