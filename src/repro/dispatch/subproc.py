"""Subprocess transport: a pool of ``python -m repro worker`` processes.

Each worker slot owns one child process speaking the stdio line
protocol (:mod:`repro.dispatch.worker`): the dispatcher writes one
compact spec-JSON job line, the worker answers with one envelope line.
Scheduling, per-job deadlines, and retry-with-exclusion come from the
shared :class:`~repro.dispatch.base.QueueRunner`; this module only
knows how to spawn a worker, feed it, and kill it.

Death detection is the pipe itself: a worker that crashes (or is
killed by the deadline timer) closes its stdout, the pending ``readline``
returns empty, and the runner re-queues the job on a replacement
worker with the dead one excluded.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
import threading
from collections.abc import Sequence
from pathlib import Path

from ..api.result import Result
from ..api.spec import CoverSpec
from .base import (
    Admit,
    Job,
    JobError,
    OnResult,
    QueueRunner,
    QueueWorker,
    Transport,
    TransportOutcome,
    WorkerDeath,
)

__all__ = ["SubprocessTransport", "worker_command", "worker_env"]


def worker_command(python: str | None = None) -> list[str]:
    return [python or sys.executable, "-m", "repro", "worker"]


def worker_env(extra_env: dict[str, str] | None = None) -> dict[str, str]:
    """The child's environment: the parent's, with this repro package's
    root prepended to PYTHONPATH so ``-m repro`` resolves to the same
    library even when the parent runs from a source tree."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    if extra_env:
        env.update(extra_env)
    return env


class _SubprocessWorker(QueueWorker):
    def __init__(
        self,
        worker_id: str,
        *,
        python: str | None = None,
        extra_env: dict[str, str] | None = None,
    ) -> None:
        self.id = worker_id
        self.proc = subprocess.Popen(
            worker_command(python),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=worker_env(extra_env),
        )
        self._deadline_fired = False

    def solve(self, spec: CoverSpec, timeout: float | None) -> Result:
        request = json.dumps(
            {"spec": spec.to_payload()}, sort_keys=True, separators=(",", ":")
        )
        try:
            assert self.proc.stdin is not None
            self.proc.stdin.write(request + "\n")
            self.proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise WorkerDeath(f"worker {self.id}: stdin pipe closed ({exc})") from exc
        timer: threading.Timer | None = None
        self._deadline_fired = False
        if timeout is not None:
            timer = threading.Timer(timeout, self._kill_on_deadline)
            timer.daemon = True
            timer.start()
        try:
            assert self.proc.stdout is not None
            raw = self.proc.stdout.readline()
        finally:
            if timer is not None:
                timer.cancel()
        if not raw:
            if self._deadline_fired:
                raise WorkerDeath(
                    f"worker {self.id} blew the {timeout}s job deadline "
                    f"on {spec.spec_hash[:12]} and was killed",
                    timed_out=True,
                )
            raise WorkerDeath(
                f"worker {self.id} died mid-job (exit {self.proc.poll()})"
            )
        try:
            reply = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise WorkerDeath(f"worker {self.id} emitted garbage: {exc}") from exc
        if not reply.get("ok"):
            raise JobError(
                f"job {spec.spec_hash[:12]} failed on worker {self.id}: "
                f"[{reply.get('kind', '?')}] {reply.get('error', 'unknown error')}"
            )
        try:
            return Result.from_payload(reply.get("result"))
        except Exception as exc:
            # A malformed envelope from an otherwise-alive worker: treat
            # as untrustworthy and retry the job elsewhere.
            raise WorkerDeath(
                f"worker {self.id} returned an unparsable envelope: {exc}"
            ) from exc

    def _kill_on_deadline(self) -> None:
        self._deadline_fired = True
        try:
            self.proc.kill()
        except OSError:
            pass

    def close(self) -> None:
        try:
            if self.proc.stdin is not None:
                self.proc.stdin.close()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=5)


class SubprocessTransport(Transport):
    name = "subprocess"

    def __init__(
        self,
        *,
        python: str | None = None,
        extra_env: dict[str, str] | None = None,
    ) -> None:
        self.python = python
        self.extra_env = extra_env

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
    ) -> TransportOutcome:
        counter = itertools.count(1)

        def make_worker() -> _SubprocessWorker:
            return _SubprocessWorker(
                f"sub{next(counter)}", python=self.python, extra_env=self.extra_env
            )

        runner = QueueRunner(
            make_worker,
            jobs,
            workers=workers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            on_result=on_result,
            admit=admit,
        )
        return runner.run()
