"""repro.dispatch — the distributed CoverSpec dispatcher.

Fan a batch of :class:`~repro.api.spec.CoverSpec` jobs out to a pool of
workers over a pluggable transport, and get back the same deterministic
:class:`~repro.api.result.Result` envelopes an in-process
:func:`repro.api.solve` would have produced — byte-identical, validated,
cache-written-through, in the caller's order::

    from repro.api import CoverSpec
    from repro.dispatch import dispatch_batch

    specs = [CoverSpec.for_ring(n, backend="exact", use_hints=False)
             for n in range(4, 12)]
    report = dispatch_batch(specs, transport="subprocess", workers=4,
                            cache="~/.cache/repro")
    [r.num_blocks for r in report.results]       # ρ(4)..ρ(11)
    report.summary()                             # retries, deaths, cache hits

Layers:

* :mod:`~repro.dispatch.base` — the :class:`Transport` contract,
  :class:`Job`, and the shared retry-with-exclusion queue runner;
* :mod:`~repro.dispatch.inprocess` /
  :mod:`~repro.dispatch.subproc` /
  :mod:`~repro.dispatch.spool` — the three stock transports;
* :mod:`~repro.dispatch.worker` — the worker-side loops behind
  ``python -m repro worker`` (stdio protocol, spool polling, heartbeat
  leases);
* :mod:`~repro.dispatch.faults` — the seeded fault-injection harness
  (:class:`FaultPlan`) the chaos suite and CI drive workers with;
* :mod:`~repro.dispatch.dispatcher` — :func:`dispatch_batch`,
  scheduling, cache resume, validation, graceful degradation,
  deterministic merge.

``repro.api.solve_batch(specs, transport=...)`` is the friendly front
door; this package is the machinery.
"""

from __future__ import annotations

from .base import (
    DispatchError,
    EnvelopeError,
    Job,
    JobError,
    RetryPolicy,
    Transport,
    TransportOutcome,
    WorkerDeath,
    WorkerPreempted,
)
from .dispatcher import (
    DEGRADE_POLICIES,
    TRANSPORTS,
    DispatchReport,
    cost_weight,
    dispatch_batch,
    make_transport,
)
from .faults import (
    FAULT_EXIT_CODE,
    FAULT_PLAN_ENV,
    Fault,
    FaultInjector,
    FaultPlan,
)
from .inprocess import InProcessTransport
from .spool import SpoolTransport
from .subproc import SubprocessTransport
from .worker import (
    parse_preempt_after,
    spool_worker_loop,
    stdio_worker_loop,
)

__all__ = [
    "DEGRADE_POLICIES",
    "DispatchError",
    "DispatchReport",
    "EnvelopeError",
    "FAULT_EXIT_CODE",
    "FAULT_PLAN_ENV",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InProcessTransport",
    "Job",
    "JobError",
    "RetryPolicy",
    "SpoolTransport",
    "SubprocessTransport",
    "TRANSPORTS",
    "Transport",
    "TransportOutcome",
    "WorkerDeath",
    "WorkerPreempted",
    "cost_weight",
    "dispatch_batch",
    "make_transport",
    "parse_preempt_after",
    "spool_worker_loop",
    "stdio_worker_loop",
]
