"""Structured, seeded fault injection for the dispatch fleet.

The chaos suite needs every failure mode the fleet defends against —
crash, mid-proof crash, stall, corrupt result, dropped heartbeat,
refused preemption — to fire *deterministically*: exactly once per
armed fault, on exactly one worker, reproducible from a seed.  One
declarative, JSON-round-trippable :class:`FaultPlan` is injected per
worker through a single environment variable (or ``--fault-plan`` on
the worker/sweep command lines).  (The ad-hoc ``REPRO_CHAOS_*``
variables of earlier releases are gone — their one-release deprecation
shim was removed on schedule; an environment still carrying them is
silently ignored.)

Determinism is token-based, as before: each fault names a token file,
and the first worker to *win* the token (atomic ``os.unlink``) owns the
fault — every other worker sees nothing.  :meth:`FaultPlan.arm` creates
the token files for a plan (names derived from the seed, so two armed
plans never collide), which is what the CLI and CI smoke do; tests that
want to place tokens by hand still can.  A fault with no token fires on
*every* job of *every* worker carrying the plan — useful for
single-worker protocol tests, ruinous for a fleet, so ``arm`` first.

Fault kinds (the matrix README.md documents):

``crash``
    ``os._exit(FAULT_EXIT_CODE)`` at job start — claim left dangling.
``crash_at_node``
    The same hard exit, but only once the search passes ``at_node``
    nodes — *after* any checkpoint flushes below that mark, killing a
    worker mid-proof with resumable state already on disk.  The token
    is consumed at the node threshold, not at job start, so the fault
    waits for a proof actually long enough to reach it.
``stall``
    A dead ``time.sleep`` (default long enough to blow any deadline):
    the worker stops heartbeating and ignores preempt requests — what a
    livelocked or SIGSTOPped process looks like from outside.
``slow``
    Sleeps ``seconds`` *while staying alive*: the heartbeat callback
    keeps firing throughout, so a lease-respecting dispatcher must NOT
    reclaim the claim — the regression test for the double-solve bug.
``corrupt_result``
    The worker solves normally but truncates the result it writes —
    the torn-write shape the quarantine machinery must catch.
``drop_heartbeat``
    The worker solves normally but stops renewing its lease for this
    job: from outside, indistinguishable from a dead worker, so the
    job is reclaimed; the straggler's eventual (atomic, byte-identical)
    result write is benign.
``refuse_preempt``
    The worker ignores preempt requests for this job — the deadline's
    grace-kill path must reap it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from ..api.spec import SpecError

__all__ = [
    "FAULT_EXIT_CODE",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_PLAN_FORMAT",
    "Fault",
    "FaultInjector",
    "FaultPlan",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_PLAN_FORMAT = "repro-fault-plan"
_FAULT_PLAN_MAJOR = 1

# Kept equal to the historical chaos exit code so existing exit-status
# assertions (and anyone pattern-matching worker exits) keep working.
FAULT_EXIT_CODE = 23

FAULT_KINDS = (
    "crash",
    "crash_at_node",
    "stall",
    "slow",
    "corrupt_result",
    "drop_heartbeat",
    "refuse_preempt",
)

_STALL_SECONDS_DEFAULT = 300.0
_SLOW_SECONDS_DEFAULT = 1.0


@dataclass(frozen=True)
class Fault:
    """One injectable fault.  ``token`` names the file whose atomic
    unlink elects the single worker that fires it; ``None`` means fire
    unconditionally (every job, every worker)."""

    kind: str
    token: str | None = None
    at_node: int | None = None  # crash_at_node threshold
    seconds: float | None = None  # stall / slow duration

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecError(
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if self.kind == "crash_at_node":
            if self.at_node is None or int(self.at_node) <= 0:
                raise SpecError(
                    f"crash_at_node needs a positive at_node, got {self.at_node!r}"
                )
        if self.seconds is not None and float(self.seconds) <= 0:
            raise SpecError(f"fault seconds must be positive, got {self.seconds!r}")

    def to_payload(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind}
        if self.token is not None:
            doc["token"] = self.token
        if self.at_node is not None:
            doc["at_node"] = int(self.at_node)
        if self.seconds is not None:
            doc["seconds"] = float(self.seconds)
        return doc

    @classmethod
    def from_payload(cls, payload: Any) -> "Fault":
        if not isinstance(payload, dict):
            raise SpecError(f"malformed fault payload: {payload!r}")
        return cls(
            kind=payload.get("kind"),
            token=payload.get("token"),
            at_node=payload.get("at_node"),
            seconds=payload.get("seconds"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults plus the seed that names its armed
    token files.  Serialises to the schema-tagged JSON the
    ``REPRO_FAULT_PLAN`` environment variable (or a ``@file`` it points
    at) carries into every worker."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError(f"fault plan seed must be an int, got {self.seed!r}")

    # -- serialisation ---------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        from ..io import schema_version_field

        return {
            "format": FAULT_PLAN_FORMAT,
            "version": schema_version_field(_FAULT_PLAN_MAJOR, 0),
            "seed": self.seed,
            "faults": [fault.to_payload() for fault in self.faults],
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "FaultPlan":
        from ..io import require_schema
        from ..util.errors import InvalidCoveringError

        try:
            require_schema(payload, FAULT_PLAN_FORMAT, _FAULT_PLAN_MAJOR)
        except InvalidCoveringError as exc:
            raise SpecError(str(exc)) from None
        raw = payload.get("faults")
        if not isinstance(raw, (list, tuple)):
            raise SpecError(f"malformed fault plan faults: {raw!r}")
        seed = payload.get("seed", 0)
        return cls(faults=tuple(Fault.from_payload(f) for f in raw), seed=seed)

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_payload(payload)

    # -- arming ----------------------------------------------------------

    def arm(self, directory: Path | str) -> "FaultPlan":
        """Create a token file (seed-derived name) for every token-less
        fault and return the armed plan: each fault then fires exactly
        once across the fleet."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        armed = []
        for i, fault in enumerate(self.faults):
            if fault.token is None:
                token = directory / f"fault-{self.seed:08d}-{i:02d}-{fault.kind}.token"
                token.touch()
                fault = replace(fault, token=str(token))
            armed.append(fault)
        return FaultPlan(faults=tuple(armed), seed=self.seed)

    def env(self) -> dict[str, str]:
        """The environment fragment that carries this plan to workers."""
        return {FAULT_PLAN_ENV: self.to_json()}


def _load_plan_text(raw: str) -> FaultPlan:
    """Parse a fault-plan argument: inline JSON, or ``@path`` reading
    the plan from a file."""
    if raw.startswith("@"):
        try:
            raw = Path(raw[1:]).read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read fault plan file: {exc}") from None
    return FaultPlan.from_json(raw)


class FaultInjector:
    """Worker-side fault executor: per-job arming in :meth:`begin_job`,
    node-threshold hooks via :meth:`wrap_preempt`, result tampering via
    :meth:`corrupt`.  All flags reset per job — a fault describes one
    injected incident, not a permanently broken worker (quarantine and
    respawn caps handle those)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.heartbeats_dropped = False
        self._refuse_preempt = False
        self._corrupt_next = False
        self._crash_at_faults: list[Fault] = []

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "FaultInjector | None":
        """Build an injector from the worker's environment: the
        structured ``REPRO_FAULT_PLAN`` variable carries the plan as
        inline JSON or an ``@path`` reference.  ``None`` when nothing
        is armed."""
        env = os.environ if environ is None else environ
        raw = env.get(FAULT_PLAN_ENV)
        if not raw:
            return None
        plan = _load_plan_text(raw)
        if not plan.faults:
            return None
        return cls(plan)

    # -- token election --------------------------------------------------

    @staticmethod
    def _win(fault: Fault) -> bool:
        """True when this process owns the fault: token-less faults fire
        unconditionally; token faults are won by atomic unlink, exactly
        once across the fleet."""
        if fault.token is None:
            return True
        try:
            os.unlink(fault.token)
        except OSError:
            return False
        return True

    # -- per-job hooks ---------------------------------------------------

    def begin_job(self, heartbeat: Callable[[], None] | None = None) -> None:
        """Fire job-start faults and arm the per-job flags.  ``crash``
        exits hard; ``stall`` sleeps dead (no heartbeat); ``slow``
        sleeps alive, renewing ``heartbeat`` throughout."""
        self.heartbeats_dropped = False
        self._refuse_preempt = False
        self._corrupt_next = False
        self._crash_at_faults = [
            f for f in self.plan.faults if f.kind == "crash_at_node"
        ]
        for fault in self.plan.faults:
            if fault.kind == "crash_at_node":
                continue  # token consumed at the node threshold instead
            if not self._win(fault):
                continue
            if fault.kind == "crash":
                os._exit(FAULT_EXIT_CODE)
            elif fault.kind == "stall":
                time.sleep(fault.seconds or _STALL_SECONDS_DEFAULT)
            elif fault.kind == "slow":
                self._sleep_alive(fault.seconds or _SLOW_SECONDS_DEFAULT, heartbeat)
            elif fault.kind == "corrupt_result":
                self._corrupt_next = True
            elif fault.kind == "drop_heartbeat":
                self.heartbeats_dropped = True
            elif fault.kind == "refuse_preempt":
                self._refuse_preempt = True

    @staticmethod
    def _sleep_alive(seconds: float, heartbeat: Callable[[], None] | None) -> None:
        """Sleep in small slices, heartbeating between them — a slow but
        demonstrably alive worker."""
        deadline = time.monotonic() + seconds
        while True:
            if heartbeat is not None:
                heartbeat()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(0.05, remaining))

    def wrap_preempt(self, preempt: Callable | None) -> Callable | None:
        """Wrap the engine's preempt callback with the in-search faults:
        ``crash_at_node`` hard-exits once the node threshold is passed
        (winning its token at that moment), ``refuse_preempt`` masks any
        real preempt request."""
        crash_at = list(self._crash_at_faults)
        refuse = self._refuse_preempt
        if not crash_at and not refuse:
            return preempt

        def wrapped(st) -> bool:
            for fault in crash_at:
                if st.nodes >= fault.at_node and self._win(fault):
                    os._exit(FAULT_EXIT_CODE)
            if refuse:
                return False
            return preempt(st) if preempt is not None else False

        return wrapped

    def corrupt(self, text: str) -> str:
        """Apply (and consume) a pending ``corrupt_result`` fault: the
        returned text is truncated the way a torn write would be."""
        if not self._corrupt_next:
            return text
        self._corrupt_next = False
        return text[: max(1, len(text) // 3)]
