"""Worker-side loops behind ``python -m repro worker``.

Two modes, one job shape (the canonical
:class:`~repro.api.spec.CoverSpec` JSON payload), one answer shape (the
deterministic :class:`~repro.api.result.Result` envelope):

stdio mode (the ``subprocess`` transport)
    One request per line on stdin — ``{"spec": {...}}`` — answered by
    one line on stdout::

        {"ok": true,  "spec_hash": H, "result": {...envelope...}}
        {"ok": false, "spec_hash": H, "error": "...", "kind": "..."}

    EOF on stdin ends the worker.  Nothing else is ever written to
    stdout, so the dispatcher can treat a short read as worker death.

spool mode (the ``spool`` transport; ``--spool DIR``)
    Poll ``DIR/jobs/`` for ``<spec-hash>.json`` job documents, claim
    one by atomically renaming it into ``DIR/claims/``, solve, write
    ``DIR/results/<spec-hash>.result.json`` atomically (temp file +
    rename — a reader never sees a partial envelope), delete the
    claim.  A job document's ``excluded`` list names worker ids that
    must not take it (retry-with-exclusion after a death); a ``STOP``
    file in the spool root shuts every polling worker down.

Jobs are solved through :func:`repro.api.solve` with **no cache**, so
the envelope a worker emits is byte-identical to what an in-process
solve of the same spec produces — the differential harness pins this.

Chaos hooks (test-only, armed by environment variables naming a token
file): ``REPRO_DISPATCH_CHAOS`` makes the first worker that wins the
token (atomic unlink) die abruptly mid-job; ``REPRO_DISPATCH_STALL``
makes it hang long enough to blow any job deadline.  Exactly one
worker across the fleet triggers per token — the retry then runs on a
worker that finds no token.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, TextIO

from ..api.spec import CoverSpec, SpecError
from ..util.errors import ReproError

__all__ = [
    "CHAOS_EXIT_ENV",
    "CHAOS_STALL_ENV",
    "SPOOL_ERROR_FORMAT",
    "SPOOL_JOB_FORMAT",
    "spool_worker_loop",
    "stdio_worker_loop",
]

CHAOS_EXIT_ENV = "REPRO_DISPATCH_CHAOS"
CHAOS_STALL_ENV = "REPRO_DISPATCH_STALL"
_CHAOS_EXIT_CODE = 23
_CHAOS_STALL_SECONDS = 300.0

SPOOL_JOB_FORMAT = "repro-spool-job"
SPOOL_ERROR_FORMAT = "repro-spool-error"


def _chaos(env: str) -> bool:
    """True when this process won the chaos token named by ``env`` —
    the unlink is atomic, so exactly one worker per token triggers."""
    token = os.environ.get(env)
    if not token:
        return False
    try:
        os.unlink(token)
    except OSError:
        return False
    return True


def _chaos_hooks() -> None:
    if _chaos(CHAOS_EXIT_ENV):
        os._exit(_CHAOS_EXIT_CODE)  # simulate a hard crash mid-job
    if _chaos(CHAOS_STALL_ENV):
        time.sleep(_CHAOS_STALL_SECONDS)  # simulate a hung worker


def _solve_payload(payload: Any) -> "tuple[CoverSpec, Any]":
    """Parse and solve one job payload (the spec dict).  Raises
    SpecError/ReproError with the worker loops deciding how to report."""
    from ..api.service import solve

    spec = CoverSpec.from_payload(payload)
    _chaos_hooks()
    result = solve(spec, cache=None)
    return spec, result.to_payload()


# ---------------------------------------------------------------------------
# stdio mode
# ---------------------------------------------------------------------------


def _stdio_reply(line: str) -> dict[str, Any]:
    try:
        request = json.loads(line)
        raw_spec = request["spec"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        return {
            "ok": False,
            "spec_hash": None,
            "error": f"malformed job line: {exc}",
            "kind": type(exc).__name__,
        }
    try:
        spec, payload = _solve_payload(raw_spec)
    except SpecError as exc:
        return {"ok": False, "spec_hash": None, "error": str(exc), "kind": "SpecError"}
    except ReproError as exc:
        return {
            "ok": False,
            "spec_hash": CoverSpec.from_payload(raw_spec).spec_hash,
            "error": str(exc),
            "kind": type(exc).__name__,
        }
    return {"ok": True, "spec_hash": spec.spec_hash, "result": payload}


def stdio_worker_loop(stdin: TextIO | None = None, stdout: TextIO | None = None) -> int:
    """Serve jobs line-by-line until EOF (the subprocess transport's
    worker body)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        reply = _stdio_reply(line)
        stdout.write(json.dumps(reply, sort_keys=True, separators=(",", ":")) + "\n")
        stdout.flush()
    return 0


# ---------------------------------------------------------------------------
# spool mode
# ---------------------------------------------------------------------------


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _claim_one(root: Path, worker_id: str) -> "tuple[str, dict, Path] | None":
    """Claim the first eligible job via atomic rename; losers of the
    rename race simply move on to the next file.  Job files are named
    ``<seq>-<spec-hash>.json`` with ``<seq>`` the dispatcher's schedule
    position, so sorted directory order *is* the LPT heaviest-first
    plan."""
    jobs_dir = root / "jobs"
    try:
        candidates = sorted(jobs_dir.glob("*.json"))
    except OSError:
        return None
    for job_file in candidates:
        try:
            doc = json.loads(job_file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # mid-write or already claimed — not ours to judge
        if doc.get("format") != SPOOL_JOB_FORMAT:
            continue
        if worker_id in doc.get("excluded", ()):
            continue
        prefix, sep, rest = job_file.stem.partition("-")
        spec_hash = rest if sep else prefix
        claim = root / "claims" / f"{spec_hash}.{worker_id}.json"
        try:
            os.replace(job_file, claim)
        except (OSError, ValueError):
            continue  # another worker won the claim
        return spec_hash, doc, claim
    return None


def _run_spool_job(root: Path, spec_hash: str, doc: dict) -> None:
    result_file = root / "results" / f"{spec_hash}.result.json"
    try:
        spec, payload = _solve_payload(doc.get("spec"))
        if spec.spec_hash != spec_hash:
            raise SpecError(
                f"job file named {spec_hash[:12]} holds a spec hashing to "
                f"{spec.spec_hash[:12]}"
            )
        text = json.dumps(payload, indent=2, sort_keys=True)
    except ReproError as exc:
        text = json.dumps(
            {
                "format": SPOOL_ERROR_FORMAT,
                "spec_hash": spec_hash,
                "error": str(exc),
                "kind": type(exc).__name__,
            },
            indent=2,
            sort_keys=True,
        )
    _atomic_write(result_file, text)


def spool_worker_loop(
    root: Path | str,
    *,
    poll: float = 0.05,
    exit_when_idle: bool = False,
    max_jobs: int | None = None,
    worker_id: str | None = None,
) -> int:
    """Poll a spool directory for jobs until STOP (or idleness, with
    ``exit_when_idle``).  Safe to run many copies against one spool —
    claims are atomic renames, results are atomic writes."""
    root = Path(root)
    wid = worker_id or f"w{os.getpid()}"
    for sub in ("jobs", "claims", "results"):
        (root / sub).mkdir(parents=True, exist_ok=True)
    done = 0
    while True:
        if (root / "STOP").exists():
            return 0
        claimed = _claim_one(root, wid)
        if claimed is None:
            if exit_when_idle:
                return 0
            time.sleep(poll)
            continue
        spec_hash, doc, claim = claimed
        _run_spool_job(root, spec_hash, doc)
        claim.unlink(missing_ok=True)
        done += 1
        if max_jobs is not None and done >= max_jobs:
            return 0
