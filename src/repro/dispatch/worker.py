"""Worker-side loops behind ``python -m repro worker``.

Two modes, one job shape (the canonical
:class:`~repro.api.spec.CoverSpec` JSON payload), one answer shape (the
deterministic :class:`~repro.api.result.Result` envelope):

stdio mode (the ``subprocess`` transport)
    One request per line on stdin — ``{"spec": {...}}``, optionally
    carrying a ``"checkpoint"`` payload to resume from — answered by
    one line on stdout::

        {"ok": true,  "spec_hash": H, "result": {...envelope...}}
        {"ok": false, "spec_hash": H, "error": "...", "kind": "..."}
        {"ok": false, "spec_hash": H, "kind": "Preempted",
         "checkpoint": {...resumable search state...}, "error": "..."}

    A ``{"preempt": true}`` control line arriving *mid-job* makes the
    solver flush its state and answer with the ``Preempted`` reply,
    after which the worker exits — the transport hands the checkpoint
    to a replacement worker, which resumes the proof instead of
    restarting it.  EOF on stdin ends the worker.  Nothing else is ever
    written to stdout, so the dispatcher can treat a short read as
    worker death.

spool mode (the ``spool`` transport; ``--spool DIR``)
    Poll ``DIR/jobs/`` for ``<spec-hash>.json`` job documents, claim
    one by atomically renaming it into ``DIR/claims/``, solve, write
    ``DIR/results/<spec-hash>.result.json`` atomically (temp file +
    rename — a reader never sees a partial envelope), delete the
    claim.  While solving, a checkpoint is flushed to
    ``DIR/checkpoints/<spec-hash>.ckpt.json`` every
    ``checkpoint_every`` nodes, so a worker killed mid-proof strands at
    most one flush interval of work: whoever claims the reclaimed job
    next resumes from the checkpoint.  ``preempt_after`` makes the
    worker bow out of long proofs voluntarily (flush, restore the job
    file, keep polling).  A job document's ``excluded`` list names
    worker ids that must not take it (retry-with-exclusion after a
    death); a ``STOP`` file in the spool root shuts every polling
    worker down.

Jobs are solved through :func:`repro.api.solve` with **no cache**, so
the envelope a worker emits is byte-identical to what an in-process
solve of the same spec produces — the differential harness pins this,
and checkpoint/resume history never changes envelope bytes.

Chaos hooks (test-only, armed by environment variables naming a token
file): ``REPRO_DISPATCH_CHAOS`` makes the first worker that wins the
token (atomic unlink) die abruptly mid-job; ``REPRO_DISPATCH_STALL``
makes it hang long enough to blow any job deadline;
``REPRO_DISPATCH_CHAOS_NODES`` (``<token>:<nodes>``) makes it die
abruptly once the search passes ``<nodes>`` nodes — *after* any
checkpoint flushes below that mark, which is the point: it kills a
worker mid-proof with resumable state already on disk.  Exactly one
worker across the fleet triggers per token — the retry then runs on a
worker that finds no token.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, TextIO

from ..api.checkpoints import CheckpointStore, MemoryCheckpointStore
from ..api.spec import CoverSpec, SpecError
from ..core.checkpoint import SearchCheckpoint
from ..util.errors import ReproError, SolverPreempted

__all__ = [
    "CHAOS_EXIT_ENV",
    "CHAOS_EXIT_NODES_ENV",
    "CHAOS_STALL_ENV",
    "SPOOL_CHECKPOINT_EVERY_DEFAULT",
    "SPOOL_ERROR_FORMAT",
    "SPOOL_JOB_FORMAT",
    "parse_preempt_after",
    "spool_worker_loop",
    "stdio_worker_loop",
]

CHAOS_EXIT_ENV = "REPRO_DISPATCH_CHAOS"
CHAOS_STALL_ENV = "REPRO_DISPATCH_STALL"
CHAOS_EXIT_NODES_ENV = "REPRO_DISPATCH_CHAOS_NODES"
_CHAOS_EXIT_CODE = 23
_CHAOS_STALL_SECONDS = 300.0

SPOOL_JOB_FORMAT = "repro-spool-job"
SPOOL_ERROR_FORMAT = "repro-spool-error"
# Spool workers flush search state every this-many nodes by default, so
# a worker killed mid-proof strands at most one interval of work.
SPOOL_CHECKPOINT_EVERY_DEFAULT = 2048


def parse_preempt_after(text: str) -> "tuple[str, float]":
    """Parse a ``--preempt-after`` budget: ``"800n"`` means 800 search
    nodes (deterministic — what the CI smoke uses), a bare number means
    that many wall-clock seconds.  Returns ``("nodes", 800.0)`` or
    ``("seconds", 2.5)``."""
    raw = str(text).strip().lower()
    try:
        if raw.endswith("n"):
            nodes = int(raw[:-1])
            if nodes <= 0:
                raise ValueError(raw)
            return ("nodes", float(nodes))
        seconds = float(raw)
        if seconds <= 0:
            raise ValueError(raw)
        return ("seconds", seconds)
    except ValueError:
        raise SpecError(
            f"bad preempt-after value {text!r} "
            "(expected a node count like '800n' or seconds like '2.5')"
        ) from None


def _chaos(env: str) -> bool:
    """True when this process won the chaos token named by ``env`` —
    the unlink is atomic, so exactly one worker per token triggers."""
    token = os.environ.get(env)
    if not token:
        return False
    try:
        os.unlink(token)
    except OSError:
        return False
    return True


def _chaos_hooks() -> None:
    if _chaos(CHAOS_EXIT_ENV):
        os._exit(_CHAOS_EXIT_CODE)  # simulate a hard crash mid-job
    if _chaos(CHAOS_STALL_ENV):
        time.sleep(_CHAOS_STALL_SECONDS)  # simulate a hung worker


def _chaos_nodes() -> int | None:
    """The node threshold for the mid-proof chaos kill when this
    process wins the ``<token>:<nodes>`` token, else ``None``."""
    raw = os.environ.get(CHAOS_EXIT_NODES_ENV)
    if not raw:
        return None
    token, sep, nodes = raw.rpartition(":")
    if not sep or not token:
        return None
    try:
        threshold = int(nodes)
    except ValueError:
        return None
    try:
        os.unlink(token)
    except OSError:
        return None
    return threshold


def _solve_payload(
    payload: Any,
    *,
    checkpoints: CheckpointStore | None = None,
    checkpoint_every: int | None = None,
    preempt=None,
) -> "tuple[CoverSpec, Any]":
    """Parse and solve one job payload (the spec dict).  Raises
    SpecError/ReproError with the worker loops deciding how to report."""
    from ..api.service import solve

    spec = CoverSpec.from_payload(payload)
    _chaos_hooks()
    chaos_nodes = _chaos_nodes()
    if chaos_nodes is not None:
        wrapped = preempt

        def preempt(st, _base=wrapped, _cap=chaos_nodes):
            if st.nodes >= _cap:
                os._exit(_CHAOS_EXIT_CODE)  # hard crash mid-proof
            return _base(st) if _base is not None else False

    if checkpoints is None and checkpoint_every is None and preempt is None:
        result = solve(spec, cache=None)
    else:
        result = solve(
            spec,
            cache=None,
            checkpoints=checkpoints,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
        )
    return spec, result.to_payload()


# ---------------------------------------------------------------------------
# stdio mode
# ---------------------------------------------------------------------------


def _is_preempt_control(line: str) -> bool:
    if '"preempt"' not in line:
        return False
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(doc, dict) and bool(doc.get("preempt")) and "spec" not in doc


def _stdio_reply(
    line: str,
    *,
    preempt=None,
    checkpoint_every: int | None = None,
) -> dict[str, Any]:
    try:
        request = json.loads(line)
        raw_spec = request["spec"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        return {
            "ok": False,
            "spec_hash": None,
            "error": f"malformed job line: {exc}",
            "kind": type(exc).__name__,
        }
    store: MemoryCheckpointStore | None = None
    if preempt is not None or request.get("checkpoint") is not None:
        store = MemoryCheckpointStore()
        raw_ckpt = request.get("checkpoint")
        if raw_ckpt is not None:
            try:
                ckpt = SearchCheckpoint.from_payload(raw_ckpt)
                store.save(CoverSpec.from_payload(raw_spec).spec_hash, ckpt)
            except ReproError:
                pass  # corrupt wire checkpoint: degrade to solving fresh
    try:
        spec, payload = _solve_payload(
            raw_spec,
            checkpoints=store,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
        )
    except SolverPreempted as exc:
        spec_hash = CoverSpec.from_payload(raw_spec).spec_hash
        ckpt = store.load(spec_hash) if store is not None else exc.checkpoint
        return {
            "ok": False,
            "spec_hash": spec_hash,
            "error": str(exc),
            "kind": "Preempted",
            "checkpoint": ckpt.to_payload() if ckpt is not None else None,
        }
    except SpecError as exc:
        return {"ok": False, "spec_hash": None, "error": str(exc), "kind": "SpecError"}
    except ReproError as exc:
        return {
            "ok": False,
            "spec_hash": CoverSpec.from_payload(raw_spec).spec_hash,
            "error": str(exc),
            "kind": type(exc).__name__,
        }
    return {"ok": True, "spec_hash": spec.spec_hash, "result": payload}


def stdio_worker_loop(
    stdin: TextIO | None = None,
    stdout: TextIO | None = None,
    *,
    checkpoint_every: int | None = None,
) -> int:
    """Serve jobs line-by-line until EOF (the subprocess transport's
    worker body).

    A reader thread pumps stdin into a queue so the solver can notice a
    ``{"preempt": true}`` control line *mid-proof* (the engine polls a
    preempt callback between nodes).  On preemption the worker answers
    with the checkpoint payload and exits; the transport's replacement
    worker resumes from it.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    lines: "queue.Queue[str]" = queue.Queue()
    eof = threading.Event()

    def _pump() -> None:
        try:
            for raw in stdin:
                lines.put(raw)
        finally:
            eof.set()

    threading.Thread(target=_pump, daemon=True, name="repro-stdin-pump").start()

    jobs: deque[str] = deque()
    preempt_flag = threading.Event()

    def _drain() -> None:
        """Move buffered lines into the job deque, consuming preempt
        control lines into the flag as they pass."""
        while True:
            try:
                raw = lines.get_nowait()
            except queue.Empty:
                return
            stripped = raw.strip()
            if not stripped:
                continue
            if _is_preempt_control(stripped):
                preempt_flag.set()
            else:
                jobs.append(stripped)

    def _preempt(st) -> bool:
        _drain()
        return preempt_flag.is_set()

    while True:
        _drain()
        if jobs:
            line = jobs.popleft()
        elif eof.is_set() and lines.empty():
            return 0
        else:
            try:
                raw = lines.get(timeout=0.05)
            except queue.Empty:
                continue
            line = raw.strip()
            if not line:
                continue
            if _is_preempt_control(line):
                continue  # stray control with no job in flight
        preempt_flag.clear()
        reply = _stdio_reply(line, preempt=_preempt, checkpoint_every=checkpoint_every)
        try:
            stdout.write(
                json.dumps(reply, sort_keys=True, separators=(",", ":")) + "\n"
            )
            stdout.flush()
        except (OSError, ValueError):
            return 0  # parent hung up; nobody is left to read the reply
        if reply.get("kind") == "Preempted":
            # The contract with the transport: one preempt reply, then a
            # clean exit — the checkpoint travels in the reply.
            return 0


# ---------------------------------------------------------------------------
# spool mode
# ---------------------------------------------------------------------------


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _claim_one(root: Path, worker_id: str) -> "tuple[str, dict, Path] | None":
    """Claim the first eligible job via atomic rename; losers of the
    rename race simply move on to the next file.  Job files are named
    ``<seq>-<spec-hash>.json`` with ``<seq>`` the dispatcher's schedule
    position, so sorted directory order *is* the LPT heaviest-first
    plan."""
    jobs_dir = root / "jobs"
    try:
        candidates = sorted(jobs_dir.glob("*.json"))
    except OSError:
        return None
    for job_file in candidates:
        try:
            doc = json.loads(job_file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # mid-write or already claimed — not ours to judge
        if doc.get("format") != SPOOL_JOB_FORMAT:
            continue
        if worker_id in doc.get("excluded", ()):
            continue
        prefix, sep, rest = job_file.stem.partition("-")
        spec_hash = rest if sep else prefix
        claim = root / "claims" / f"{spec_hash}.{worker_id}.json"
        try:
            os.replace(job_file, claim)
        except (OSError, ValueError):
            continue  # another worker won the claim
        return spec_hash, doc, claim
    return None


def _restore_spool_job(root: Path, spec_hash: str, doc: dict) -> None:
    """Put a self-preempted job back into ``jobs/`` under its original
    schedule position, so any worker (this one included) can claim and
    resume it from the persisted checkpoint."""
    try:
        seq = int(doc.get("seq", 999999))
    except (TypeError, ValueError):
        seq = 999999
    _atomic_write(
        root / "jobs" / f"{seq:06d}-{spec_hash}.json",
        json.dumps(doc, sort_keys=True),
    )


def _run_spool_job(
    root: Path,
    spec_hash: str,
    doc: dict,
    *,
    checkpoints: CheckpointStore | None = None,
    checkpoint_every: int | None = None,
    preempt=None,
) -> bool:
    """Solve one claimed job.  Returns ``False`` when the solve was
    preempted — the checkpoint is already persisted and the caller owes
    a job-file restore — and ``True`` when a result (or a deterministic
    error document) was written."""
    result_file = root / "results" / f"{spec_hash}.result.json"
    try:
        spec, payload = _solve_payload(
            doc.get("spec"),
            checkpoints=checkpoints,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
        )
        if spec.spec_hash != spec_hash:
            raise SpecError(
                f"job file named {spec_hash[:12]} holds a spec hashing to "
                f"{spec.spec_hash[:12]}"
            )
        text = json.dumps(payload, indent=2, sort_keys=True)
    except SolverPreempted:
        return False  # the backend flushed the checkpoint on the way out
    except ReproError as exc:
        text = json.dumps(
            {
                "format": SPOOL_ERROR_FORMAT,
                "spec_hash": spec_hash,
                "error": str(exc),
                "kind": type(exc).__name__,
            },
            indent=2,
            sort_keys=True,
        )
    _atomic_write(result_file, text)
    return True


def _spool_preempt(budget, store: CheckpointStore, spec_hash: str):
    """The per-claim preempt callback for a ``preempt_after`` budget:
    node budgets count from the resumed checkpoint's floor (so every
    claim advances the proof by the full budget), second budgets count
    from claim time."""
    if budget is None:
        return None
    unit, amount = budget
    if unit == "nodes":
        prior = store.load(spec_hash)
        ceiling = (prior.nodes if prior is not None else 0) + int(amount)
        return lambda st: st.nodes >= ceiling
    deadline = time.monotonic() + amount
    return lambda st: time.monotonic() >= deadline


def spool_worker_loop(
    root: Path | str,
    *,
    poll: float = 0.05,
    exit_when_idle: bool = False,
    max_jobs: int | None = None,
    worker_id: str | None = None,
    checkpoint_every: int | None = SPOOL_CHECKPOINT_EVERY_DEFAULT,
    preempt_after: str | None = None,
) -> int:
    """Poll a spool directory for jobs until STOP (or idleness, with
    ``exit_when_idle``).  Safe to run many copies against one spool —
    claims are atomic renames, results are atomic writes.

    Search state is checkpointed to ``checkpoints/`` every
    ``checkpoint_every`` nodes, so a worker killed mid-proof leaves
    resumable state behind.  ``preempt_after`` (``"800n"`` nodes or
    seconds) makes the worker bow out of long proofs voluntarily: flush
    a checkpoint, restore the job file, release the claim, and keep
    polling — real work migration, not retry-from-scratch."""
    root = Path(root)
    wid = worker_id or f"w{os.getpid()}"
    for sub in ("jobs", "claims", "results", "checkpoints"):
        (root / sub).mkdir(parents=True, exist_ok=True)
    store = CheckpointStore(root / "checkpoints")
    budget = parse_preempt_after(preempt_after) if preempt_after is not None else None
    done = 0
    while True:
        if (root / "STOP").exists():
            return 0
        claimed = _claim_one(root, wid)
        if claimed is None:
            if exit_when_idle:
                return 0
            time.sleep(poll)
            continue
        spec_hash, doc, claim = claimed
        finished = _run_spool_job(
            root,
            spec_hash,
            doc,
            checkpoints=store,
            checkpoint_every=checkpoint_every,
            preempt=_spool_preempt(budget, store, spec_hash),
        )
        if not finished:
            # Self-preempted: hand the job back with its checkpoint on
            # disk and keep polling — whoever claims it next resumes.
            _restore_spool_job(root, spec_hash, doc)
            claim.unlink(missing_ok=True)
            continue
        claim.unlink(missing_ok=True)
        done += 1
        if max_jobs is not None and done >= max_jobs:
            return 0
