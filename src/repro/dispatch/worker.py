"""Worker-side loops behind ``python -m repro worker``.

Two modes, one job shape (the canonical
:class:`~repro.api.spec.CoverSpec` JSON payload), one answer shape (the
deterministic :class:`~repro.api.result.Result` envelope):

stdio mode (the ``subprocess`` transport)
    One request per line on stdin — ``{"spec": {...}}``, optionally
    carrying a ``"checkpoint"`` payload to resume from — answered by
    one line on stdout::

        {"ok": true,  "spec_hash": H, "result": {...envelope...}}
        {"ok": false, "spec_hash": H, "error": "...", "kind": "..."}
        {"ok": false, "spec_hash": H, "kind": "Preempted",
         "checkpoint": {...resumable search state...}, "error": "..."}

    A ``{"preempt": true}`` control line arriving *mid-job* makes the
    solver flush its state and answer with the ``Preempted`` reply,
    after which the worker exits — the transport hands the checkpoint
    to a replacement worker, which resumes the proof instead of
    restarting it.  EOF on stdin ends the worker.  Nothing else is ever
    written to stdout, so the dispatcher can treat a short read as
    worker death.

spool mode (the ``spool`` transport; ``--spool DIR``)
    Poll ``DIR/jobs/`` for ``<spec-hash>.json`` job documents, claim
    one by atomically renaming it into ``DIR/claims/``, solve, write
    ``DIR/results/<spec-hash>.result.json`` atomically (temp file +
    rename — a reader never sees a partial envelope), delete the
    claim.  While solving, a checkpoint is flushed to
    ``DIR/checkpoints/<spec-hash>.ckpt.json`` every
    ``checkpoint_every`` nodes, so a worker killed mid-proof strands at
    most one flush interval of work: whoever claims the reclaimed job
    next resumes from the checkpoint.  ``preempt_after`` makes the
    worker bow out of long proofs voluntarily (flush, restore the job
    file, keep polling).  A job document's ``excluded`` list names
    worker ids that must not take it (retry-with-exclusion after a
    death); a ``STOP`` file in the spool root shuts every polling
    worker down.  An idle worker backs its polling interval off toward
    a cap (and snaps back on the first claim), so a parked fleet burns
    no CPU.

Heartbeat leases: a spool worker writes
``DIR/leases/<spec-hash>.<worker-id>.json`` the moment it claims a job
and *renews* it (bumping a monotone ``beat`` counter) at most every
``heartbeat_every`` seconds, piggybacked on the engine's preempt-poll
cadence — zero extra engine hooks.  The dispatcher reclaims a claim
only when its lease goes stale (the beat stops moving), never while
the worker is demonstrably alive — which is what decouples reclaim
from the job deadline and closes the duplicate-solve window a
deadline-only reclaim had for slow-but-healthy workers.

Jobs are solved through :func:`repro.api.solve` with **no cache**, so
the envelope a worker emits is byte-identical to what an in-process
solve of the same spec produces — the differential harness pins this,
and checkpoint/resume history never changes envelope bytes.

Fault injection (test/CI-only) is served by
:mod:`repro.dispatch.faults`: a structured, seeded
:class:`~repro.dispatch.faults.FaultPlan` arrives through the
``REPRO_FAULT_PLAN`` environment variable (or ``--fault-plan``) and
drives crash, mid-proof crash, stall, slow-but-alive, corrupt-result,
dropped-heartbeat, and refused-preempt faults deterministically — at
most one worker per armed fault.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, TextIO

from ..api.checkpoints import CheckpointStore, MemoryCheckpointStore
from ..api.spec import CoverSpec, SpecError
from ..core.checkpoint import SearchCheckpoint
from ..util.errors import ReproError, SolverPreempted
from .base import RetryPolicy
from .faults import FaultInjector

__all__ = [
    "HEARTBEAT_EVERY_DEFAULT",
    "SPOOL_CHECKPOINT_EVERY_DEFAULT",
    "SPOOL_ERROR_FORMAT",
    "SPOOL_JOB_FORMAT",
    "parse_preempt_after",
    "spool_worker_loop",
    "stdio_worker_loop",
]

SPOOL_JOB_FORMAT = "repro-spool-job"
SPOOL_ERROR_FORMAT = "repro-spool-error"
# Spool workers flush search state every this-many nodes by default, so
# a worker killed mid-proof strands at most one interval of work.
SPOOL_CHECKPOINT_EVERY_DEFAULT = 2048
# Lease renewal cadence: the beat is bumped at most every this-many
# seconds (renewals ride the engine's preempt polls, which fire far
# more often on any proof long enough to matter).
HEARTBEAT_EVERY_DEFAULT = 0.5
# Adaptive idle polling backs off toward this ceiling while the spool
# stays empty, and snaps back to the base interval on the first claim.
SPOOL_IDLE_POLL_CAP = 0.5


def parse_preempt_after(text: str) -> "tuple[str, float]":
    """Parse a ``--preempt-after`` budget: ``"800n"`` means 800 search
    nodes (deterministic — what the CI smoke uses), a bare number means
    that many wall-clock seconds.  Returns ``("nodes", 800.0)`` or
    ``("seconds", 2.5)``."""
    raw = str(text).strip().lower()
    try:
        if raw.endswith("n"):
            nodes = int(raw[:-1])
            if nodes <= 0:
                raise ValueError(raw)
            return ("nodes", float(nodes))
        seconds = float(raw)
        if seconds <= 0:
            raise ValueError(raw)
        return ("seconds", seconds)
    except ValueError:
        raise SpecError(
            f"bad preempt-after value {text!r} "
            "(expected a node count like '800n' or seconds like '2.5')"
        ) from None


def _solve_payload(
    payload: Any,
    *,
    checkpoints: CheckpointStore | None = None,
    checkpoint_every: int | None = None,
    preempt=None,
    injector: FaultInjector | None = None,
    heartbeat=None,
) -> "tuple[CoverSpec, Any]":
    """Parse and solve one job payload (the spec dict).  Raises
    SpecError/ReproError with the worker loops deciding how to report.

    ``injector`` arms any per-job faults (and wraps the preempt
    callback with the in-search ones); ``heartbeat`` is called on every
    engine preempt poll so the worker's lease keeps renewing for
    exactly as long as the search is making progress."""
    from ..api.service import solve

    spec = CoverSpec.from_payload(payload)
    if injector is not None:
        injector.begin_job(heartbeat)
        preempt = injector.wrap_preempt(preempt)
    if heartbeat is not None:
        inner = preempt

        def preempt(st, _inner=inner):
            heartbeat()
            return _inner(st) if _inner is not None else False

    if checkpoints is None and checkpoint_every is None and preempt is None:
        result = solve(spec, cache=None)
    else:
        result = solve(
            spec,
            cache=None,
            checkpoints=checkpoints,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
        )
    return spec, result.to_payload()


# ---------------------------------------------------------------------------
# stdio mode
# ---------------------------------------------------------------------------


def _is_preempt_control(line: str) -> bool:
    if '"preempt"' not in line:
        return False
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(doc, dict) and bool(doc.get("preempt")) and "spec" not in doc


def _stdio_reply(
    line: str,
    *,
    preempt=None,
    checkpoint_every: int | None = None,
    injector: FaultInjector | None = None,
) -> dict[str, Any]:
    try:
        request = json.loads(line)
        raw_spec = request["spec"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        return {
            "ok": False,
            "spec_hash": None,
            "error": f"malformed job line: {exc}",
            "kind": type(exc).__name__,
        }
    store: MemoryCheckpointStore | None = None
    if preempt is not None or request.get("checkpoint") is not None:
        store = MemoryCheckpointStore()
        raw_ckpt = request.get("checkpoint")
        if raw_ckpt is not None:
            try:
                ckpt = SearchCheckpoint.from_payload(raw_ckpt)
                store.save(CoverSpec.from_payload(raw_spec).spec_hash, ckpt)
            except ReproError:
                pass  # corrupt wire checkpoint: degrade to solving fresh
    try:
        spec, payload = _solve_payload(
            raw_spec,
            checkpoints=store,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
            injector=injector,
        )
    except SolverPreempted as exc:
        spec_hash = CoverSpec.from_payload(raw_spec).spec_hash
        ckpt = store.load(spec_hash) if store is not None else exc.checkpoint
        return {
            "ok": False,
            "spec_hash": spec_hash,
            "error": str(exc),
            "kind": "Preempted",
            "checkpoint": ckpt.to_payload() if ckpt is not None else None,
        }
    except SpecError as exc:
        return {"ok": False, "spec_hash": None, "error": str(exc), "kind": "SpecError"}
    except ReproError as exc:
        return {
            "ok": False,
            "spec_hash": CoverSpec.from_payload(raw_spec).spec_hash,
            "error": str(exc),
            "kind": type(exc).__name__,
        }
    return {"ok": True, "spec_hash": spec.spec_hash, "result": payload}


def stdio_worker_loop(
    stdin: TextIO | None = None,
    stdout: TextIO | None = None,
    *,
    checkpoint_every: int | None = None,
) -> int:
    """Serve jobs line-by-line until EOF (the subprocess transport's
    worker body).

    A reader thread pumps stdin into a queue so the solver can notice a
    ``{"preempt": true}`` control line *mid-proof* (the engine polls a
    preempt callback between nodes).  On preemption the worker answers
    with the checkpoint payload and exits; the transport's replacement
    worker resumes from it.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    injector = FaultInjector.from_env()
    lines: "queue.Queue[str]" = queue.Queue()
    eof = threading.Event()

    def _pump() -> None:
        try:
            for raw in stdin:
                lines.put(raw)
        finally:
            eof.set()

    threading.Thread(target=_pump, daemon=True, name="repro-stdin-pump").start()

    jobs: deque[str] = deque()
    preempt_flag = threading.Event()

    def _drain() -> None:
        """Move buffered lines into the job deque, consuming preempt
        control lines into the flag as they pass."""
        while True:
            try:
                raw = lines.get_nowait()
            except queue.Empty:
                return
            stripped = raw.strip()
            if not stripped:
                continue
            if _is_preempt_control(stripped):
                preempt_flag.set()
            else:
                jobs.append(stripped)

    def _preempt(st) -> bool:
        _drain()
        return preempt_flag.is_set()

    while True:
        _drain()
        if jobs:
            line = jobs.popleft()
        elif eof.is_set() and lines.empty():
            return 0
        else:
            try:
                raw = lines.get(timeout=0.05)
            except queue.Empty:
                continue
            line = raw.strip()
            if not line:
                continue
            if _is_preempt_control(line):
                continue  # stray control with no job in flight
        preempt_flag.clear()
        reply = _stdio_reply(
            line,
            preempt=_preempt,
            checkpoint_every=checkpoint_every,
            injector=injector,
        )
        text = json.dumps(reply, sort_keys=True, separators=(",", ":"))
        if injector is not None:
            # A corrupt_result fault truncates the reply line: the
            # dispatcher reads garbage and retries the job elsewhere.
            text = injector.corrupt(text)
        try:
            stdout.write(text + "\n")
            stdout.flush()
        except (OSError, ValueError):
            return 0  # parent hung up; nobody is left to read the reply
        if reply.get("kind") == "Preempted":
            # The contract with the transport: one preempt reply, then a
            # clean exit — the checkpoint travels in the reply.
            return 0


# ---------------------------------------------------------------------------
# spool mode
# ---------------------------------------------------------------------------


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _claim_one(root: Path, worker_id: str) -> "tuple[str, dict, Path] | None":
    """Claim the first eligible job via atomic rename; losers of the
    rename race simply move on to the next file.  Job files are named
    ``<seq>-<spec-hash>.json`` with ``<seq>`` the dispatcher's schedule
    position, so sorted directory order *is* the LPT heaviest-first
    plan."""
    jobs_dir = root / "jobs"
    try:
        candidates = sorted(jobs_dir.glob("*.json"))
    except OSError:
        return None
    for job_file in candidates:
        try:
            doc = json.loads(job_file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # mid-write or already claimed — not ours to judge
        if doc.get("format") != SPOOL_JOB_FORMAT:
            continue
        if worker_id in doc.get("excluded", ()):
            continue
        prefix, sep, rest = job_file.stem.partition("-")
        spec_hash = rest if sep else prefix
        claim = root / "claims" / f"{spec_hash}.{worker_id}.json"
        try:
            os.replace(job_file, claim)
        except (OSError, ValueError):
            continue  # another worker won the claim
        return spec_hash, doc, claim
    return None


def _restore_spool_job(root: Path, spec_hash: str, doc: dict) -> None:
    """Put a self-preempted job back into ``jobs/`` under its original
    schedule position, so any worker (this one included) can claim and
    resume it from the persisted checkpoint."""
    try:
        seq = int(doc.get("seq", 999999))
    except (TypeError, ValueError):
        seq = 999999
    _atomic_write(
        root / "jobs" / f"{seq:06d}-{spec_hash}.json",
        json.dumps(doc, sort_keys=True),
    )


class _Lease:
    """The worker side of the heartbeat-lease protocol: one small JSON
    file beside the claim, renewed by bumping a monotone ``beat``
    counter at most every ``every`` seconds.  The dispatcher reads only
    whether the beat is still moving — wall clocks never cross the
    filesystem, so skewed machines cannot fake (or miss) a death."""

    def __init__(
        self,
        root: Path,
        spec_hash: str,
        worker_id: str,
        *,
        every: float = HEARTBEAT_EVERY_DEFAULT,
        injector: FaultInjector | None = None,
    ) -> None:
        self.path = root / "leases" / f"{spec_hash}.{worker_id}.json"
        self.worker_id = worker_id
        self.every = max(0.01, float(every))
        self.injector = injector
        self.beat = 0
        self._last = 0.0

    def write(self) -> None:
        if self.injector is not None and self.injector.heartbeats_dropped:
            return  # drop_heartbeat fault: look dead while solving on
        _atomic_write(
            self.path,
            json.dumps(
                {"beat": self.beat, "worker": self.worker_id}, sort_keys=True
            ),
        )
        self._last = time.monotonic()

    def renew(self) -> None:
        """Bump-and-write, rate-limited to ``every`` — cheap enough to
        call on every engine preempt poll."""
        if time.monotonic() - self._last < self.every:
            return
        self.beat += 1
        self.write()

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


def _run_spool_job(
    root: Path,
    spec_hash: str,
    doc: dict,
    *,
    checkpoints: CheckpointStore | None = None,
    checkpoint_every: int | None = None,
    preempt=None,
    injector: FaultInjector | None = None,
    heartbeat=None,
) -> bool:
    """Solve one claimed job.  Returns ``False`` when the solve was
    preempted — the checkpoint is already persisted and the caller owes
    a job-file restore — and ``True`` when a result (or a deterministic
    error document) was written."""
    result_file = root / "results" / f"{spec_hash}.result.json"
    try:
        spec, payload = _solve_payload(
            doc.get("spec"),
            checkpoints=checkpoints,
            checkpoint_every=checkpoint_every,
            preempt=preempt,
            injector=injector,
            heartbeat=heartbeat,
        )
        if spec.spec_hash != spec_hash:
            raise SpecError(
                f"job file named {spec_hash[:12]} holds a spec hashing to "
                f"{spec.spec_hash[:12]}"
            )
        text = json.dumps(payload, indent=2, sort_keys=True)
    except SolverPreempted:
        return False  # the backend flushed the checkpoint on the way out
    except ReproError as exc:
        text = json.dumps(
            {
                "format": SPOOL_ERROR_FORMAT,
                "spec_hash": spec_hash,
                "error": str(exc),
                "kind": type(exc).__name__,
            },
            indent=2,
            sort_keys=True,
        )
    if injector is not None:
        # A corrupt_result fault truncates the envelope text (the
        # write itself stays atomic): exactly the torn-result shape the
        # dispatcher's quarantine machinery must catch.
        text = injector.corrupt(text)
    _atomic_write(result_file, text)
    return True


def _spool_preempt(budget, store: CheckpointStore, spec_hash: str):
    """The per-claim preempt callback for a ``preempt_after`` budget:
    node budgets count from the resumed checkpoint's floor (so every
    claim advances the proof by the full budget), second budgets count
    from claim time."""
    if budget is None:
        return None
    unit, amount = budget
    if unit == "nodes":
        prior = store.load(spec_hash)
        ceiling = (prior.nodes if prior is not None else 0) + int(amount)
        return lambda st: st.nodes >= ceiling
    deadline = time.monotonic() + amount
    return lambda st: time.monotonic() >= deadline


def spool_worker_loop(
    root: Path | str,
    *,
    poll: float = 0.05,
    exit_when_idle: bool = False,
    max_jobs: int | None = None,
    worker_id: str | None = None,
    checkpoint_every: int | None = SPOOL_CHECKPOINT_EVERY_DEFAULT,
    preempt_after: str | None = None,
    heartbeat_every: float = HEARTBEAT_EVERY_DEFAULT,
) -> int:
    """Poll a spool directory for jobs until STOP (or idleness, with
    ``exit_when_idle``).  Safe to run many copies against one spool —
    claims are atomic renames, results are atomic writes.

    Every claim gets a heartbeat lease (``leases/``), written at claim
    time and renewed — at most every ``heartbeat_every`` seconds — on
    the engine's preempt polls while the proof advances; the dispatcher
    reclaims a claim only once its lease stops moving.  Search state is
    checkpointed to ``checkpoints/`` every ``checkpoint_every`` nodes,
    so a worker killed mid-proof leaves resumable state behind.
    ``preempt_after`` (``"800n"`` nodes or seconds) makes the worker
    bow out of long proofs voluntarily: flush a checkpoint, restore the
    job file, release the claim, and keep polling — real work
    migration, not retry-from-scratch.  While idle, the polling
    interval backs off (factor 1.5) toward ``SPOOL_IDLE_POLL_CAP`` and
    resets on the next claim."""
    root = Path(root)
    wid = worker_id or f"w{os.getpid()}"
    for sub in ("jobs", "claims", "results", "checkpoints", "leases"):
        (root / sub).mkdir(parents=True, exist_ok=True)
    store = CheckpointStore(root / "checkpoints")
    budget = parse_preempt_after(preempt_after) if preempt_after is not None else None
    injector = FaultInjector.from_env()
    idle = RetryPolicy(
        base_delay=max(0.001, poll),
        factor=1.5,
        max_delay=max(poll, SPOOL_IDLE_POLL_CAP),
        max_retries=0,
    )
    idle_ticks = 0
    done = 0
    while True:
        if (root / "STOP").exists():
            return 0
        claimed = _claim_one(root, wid)
        if claimed is None:
            if exit_when_idle:
                return 0
            idle_ticks += 1
            time.sleep(idle.delay(idle_ticks))
            continue
        idle_ticks = 0
        spec_hash, doc, claim = claimed
        lease = _Lease(
            root, spec_hash, wid, every=heartbeat_every, injector=injector
        )
        lease.write()
        finished = _run_spool_job(
            root,
            spec_hash,
            doc,
            checkpoints=store,
            checkpoint_every=checkpoint_every,
            preempt=_spool_preempt(budget, store, spec_hash),
            injector=injector,
            heartbeat=lease.renew,
        )
        if not finished:
            # Self-preempted: hand the job back with its checkpoint on
            # disk and keep polling — whoever claims it next resumes.
            _restore_spool_job(root, spec_hash, doc)
            lease.clear()
            claim.unlink(missing_ok=True)
            continue
        lease.clear()
        claim.unlink(missing_ok=True)
        done += 1
        if max_jobs is not None and done >= max_jobs:
            return 0
