"""The work-queue dispatcher: ``dispatch_batch`` and its report.

``dispatch_batch(specs, transport=...)`` is the fleet-scale sweep
shape.  The dispatcher:

* deduplicates specs by canonical hash (one solve per unique job, every
  duplicate position sharing the envelope);
* resumes from the content-addressed
  :class:`~repro.api.cache.ResultCache` — already-solved jobs are
  served (validated) from disk and never dispatched, so a crashed sweep
  restarts from where it died;
* orders the remaining jobs by exponential cost weight
  (:func:`cost_weight`, the same ``4**n`` scale the engine's batched
  sweeps chunk by) in LPT order via
  :func:`repro.util.parallel.lpt_order` — the heavy jobs start first so
  they cannot straggle behind a drained queue;
* hands them to a pluggable :class:`~repro.dispatch.base.Transport`
  with per-job deadlines and retry-with-exclusion;
* validates every returned envelope against its spec's demand before
  accepting it (a worker cannot hand back a non-covering), writes it
  through to the cache, and
* merges deterministically: results return in the caller's spec order,
  and the batch-level :class:`~repro.core.engine.SolverStats` are
  merged over envelopes in stable spec-hash order.

Graceful degradation is opt-in: ``degrade="heuristic"`` re-routes a job
that deterministically fails or exhausts its retries through the
heuristic backend instead of failing the whole batch.  The fallback
envelope is validated against the *original* demand, carries a
runtime-only ``degraded`` provenance block naming the original backend
and the failure it papered over, and is **never** written to the result
cache — cached certified envelopes stay byte-identical whether or not
degradation was armed.  Without ``degrade`` the batch fails fast,
exactly as before.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter

from ..api.cache import ResultCache
from ..api.result import Result
from ..api.spec import CoverSpec
from ..core.engine import SolverStats
from ..util.errors import DegradationError
from ..util.parallel import lpt_order, resolve_workers
from .base import (
    DispatchError,
    EnvelopeError,
    Job,
    RetryPolicy,
    Transport,
    TransportOutcome,
)
from .inprocess import InProcessTransport
from .spool import SpoolTransport
from .subproc import SubprocessTransport

__all__ = [
    "DEGRADE_POLICIES",
    "DispatchReport",
    "TRANSPORTS",
    "cost_weight",
    "dispatch_batch",
    "make_transport",
]

TRANSPORTS = {
    "inproc": InProcessTransport,
    "subprocess": SubprocessTransport,
    "spool": SpoolTransport,
}


def make_transport(
    transport: Transport | str,
    *,
    spool_dir: Path | str | None = None,
    extra_env: dict[str, str] | None = None,
    lease_timeout: float | None = None,
) -> Transport:
    """Coerce the user-facing ``transport`` argument: an instance passes
    through, a registered name is constructed (``spool`` honouring
    ``spool_dir`` and ``lease_timeout``; worker-spawning transports
    honouring ``extra_env``)."""
    if isinstance(transport, Transport):
        if extra_env is not None or lease_timeout is not None:
            raise DispatchError(
                "extra_env/lease_timeout cannot be applied to a transport "
                "instance — configure the instance directly"
            )
        return transport
    try:
        cls = TRANSPORTS[transport]
    except (KeyError, TypeError):
        raise DispatchError(
            f"unknown transport {transport!r} "
            f"(available: {', '.join(TRANSPORTS)})"
        ) from None
    if cls is SpoolTransport:
        kwargs: dict = {"extra_env": extra_env}
        if lease_timeout is not None:
            kwargs["lease_timeout"] = lease_timeout
        return SpoolTransport(spool_dir, **kwargs)
    if lease_timeout is not None:
        raise DispatchError(
            f"lease_timeout only applies to the spool transport, not {transport!r}"
        )
    if cls is SubprocessTransport:
        return SubprocessTransport(extra_env=extra_env)
    if extra_env is not None:
        raise DispatchError(
            f"extra_env only applies to worker-spawning transports, not {transport!r}"
        )
    return cls()


def cost_weight(spec: CoverSpec) -> float:
    """Estimated relative cost of one job — exponential in the ring
    order, scaled by demand multiplicity (the engine's batched sweeps
    chunk by the same ``4**n`` growth law).  Only the *order* matters:
    LPT scheduling and :func:`~repro.util.parallel.weighted_chunks`
    both consume ratios, not seconds."""
    return (4.0 ** spec.n) * max(1, spec.lam)


@dataclass
class DispatchReport:
    """Everything a sweep owner wants to know beyond the envelopes."""

    results: list[Result]  # one per *non-skipped* input spec, input order
    seconds: dict[str, float]  # spec hash -> wall-clock (0.0 for cache hits)
    merged_stats: SolverStats  # SolverStats.merge in stable spec-hash order
    transport: str
    workers: int
    cached: int  # served from the ResultCache without dispatching
    resumed: int  # spool results accepted from a previous run
    retries: int
    worker_deaths: int
    quarantined: int
    skipped: list[CoverSpec] = field(default_factory=list)  # budget ran out
    preempts: int = 0  # checkpointed preempt/resume handoffs
    degraded: int = 0  # jobs re-routed through the heuristic fallback
    quarantined_workers: int = 0  # worker slots retired by the circuit breaker

    def summary(self) -> str:
        parts = [
            f"transport={self.transport}",
            f"workers={self.workers}",
            f"jobs={len(self.results)}",
            f"cached={self.cached}",
        ]
        if self.resumed:
            parts.append(f"resumed={self.resumed}")
        if self.retries or self.worker_deaths:
            parts.append(f"retries={self.retries}")
            parts.append(f"deaths={self.worker_deaths}")
        if self.quarantined:
            parts.append(f"quarantined={self.quarantined}")
        if self.quarantined_workers:
            parts.append(f"quarantined_workers={self.quarantined_workers}")
        if self.preempts:
            parts.append(f"preempts={self.preempts}")
        if self.degraded:
            parts.append(f"degraded={self.degraded}")
        if self.skipped:
            parts.append(f"skipped={len(self.skipped)}")
        return " ".join(parts)


DEGRADE_POLICIES = ("heuristic",)


def _degraded_solve(job: Job, failure: Exception) -> Result:
    """The graceful-degradation fallback: re-solve the exhausted job's
    spec through the heuristic backend (uncached, no optimality demand,
    no budgets), validate the covering against the *original* demand,
    and stamp runtime-only degradation provenance on the envelope."""
    from ..api.service import solve

    fallback_spec = replace(
        job.spec,
        backend="heuristic",
        require_optimal=False,
        node_limit=None,
        time_budget=None,
    )
    try:
        fallback = solve(fallback_spec, cache=None)
    except Exception as exc:
        raise DegradationError(
            f"heuristic fallback for job {job.spec_hash[:12]} (n={job.spec.n}) "
            f"itself failed: {exc}"
        ) from exc
    if not fallback.covering.covers(job.spec.instance()):
        raise DegradationError(
            f"heuristic fallback for job {job.spec_hash[:12]} (n={job.spec.n}) "
            "returned a non-covering"
        )
    return fallback.annotate_degraded(
        {
            "policy": "heuristic",
            "original_backend": job.spec.backend or "auto",
            "original_spec_hash": job.spec_hash,
            "reason": type(failure).__name__,
            "detail": str(failure),
        }
    )


def _check_envelope(job: Job, result: Result) -> None:
    """The dispatcher-level invariant: the envelope answers *this* spec
    and its covering meets the demand.  Failures raise
    :class:`EnvelopeError`, which queue transports convert into a retry
    on a different worker."""
    if result.spec != job.spec:
        raise EnvelopeError(
            f"worker answered spec {result.spec.spec_hash[:12]} for job "
            f"{job.spec_hash[:12]}"
        )
    if not result.covering.covers(job.spec.instance()):
        raise EnvelopeError(
            f"worker returned a non-covering for job {job.spec_hash[:12]} "
            f"(n={job.spec.n})"
        )


def dispatch_batch(
    specs: Iterable[CoverSpec],
    *,
    transport: Transport | str = "inproc",
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    job_timeout: float | None = None,
    max_retries: int = 2,
    order: str = "lpt",
    time_budget: float | None = None,
    spool_dir: Path | str | None = None,
    policy: RetryPolicy | None = None,
    degrade: str | None = None,
    lease_timeout: float | None = None,
    on_progress=None,
) -> DispatchReport:
    """Solve a batch of specs over a transport; see the module docstring
    for the contract.  ``order`` is ``"lpt"`` (heaviest first — minimum
    makespan) or ``"fifo"`` (caller order — what a budget-gated sweep
    that reports "skipped the tail" wants).  ``time_budget`` caps the
    batch's wall-clock: jobs not yet started when it runs out are
    returned in ``report.skipped`` instead of ``report.results``.
    ``policy`` overrides the deterministic retry/backoff/quarantine
    schedule (``max_retries`` is ignored when given).  ``degrade``
    (``None`` or ``"heuristic"``) arms the graceful-degradation fallback
    described in the module docstring.  ``lease_timeout`` tunes the
    spool transport's heartbeat-staleness reclaim window.
    ``on_progress(event, spec_hash)`` — when given — is invoked at job
    lifecycle milestones (``"cached"``, ``"solved"``, ``"degraded"``)
    so long-lived callers (the :mod:`repro.serve` job handles) can
    stream coarse progress without touching transport internals; it is
    called under the dispatcher's result lock and must not block.
    """
    specs = list(specs)
    if order not in ("lpt", "fifo"):
        raise DispatchError(f"unknown dispatch order {order!r} (lpt or fifo)")
    if degrade is not None and degrade not in DEGRADE_POLICIES:
        raise DispatchError(
            f"unknown degrade policy {degrade!r} "
            f"(available: {', '.join(DEGRADE_POLICIES)})"
        )
    start = perf_counter()
    tr = make_transport(transport, spool_dir=spool_dir, lease_timeout=lease_timeout)
    nworkers = resolve_workers(workers)
    store = ResultCache.open(cache)

    unique: dict[str, CoverSpec] = {}
    for spec in specs:
        unique.setdefault(spec.spec_hash, spec)
    if store is not None:
        # Batch-level coalescing: duplicate positions share one solve.
        store.note_coalesced(len(specs) - len(unique))

    def _progress(event: str, spec_hash: str) -> None:
        if on_progress is not None:
            on_progress(event, spec_hash)

    results: dict[str, Result] = {}
    seconds: dict[str, float] = {}
    cached = 0
    jobs: list[Job] = []
    for index, (spec_hash, spec) in enumerate(unique.items()):
        if store is not None:
            hit = store.get(spec)
            if hit is not None:
                if hit.covering.covers(spec.instance()):
                    results[spec_hash] = replace(hit, from_cache=True)
                    seconds[spec_hash] = 0.0
                    cached += 1
                    _progress("cached", spec_hash)
                    continue
                store.evict(spec)  # structurally fine, demand-invalid
        jobs.append(Job(spec=spec, weight=cost_weight(spec), index=index))

    if order == "lpt":
        jobs = [jobs[i] for i in lpt_order([job.weight for job in jobs])]

    lock = threading.Lock()

    def on_result(job: Job, result: Result, elapsed: float, worker_id: str) -> None:
        _check_envelope(job, result)
        with lock:
            results[job.spec_hash] = result
            seconds[job.spec_hash] = elapsed
            if store is not None:
                store.put(result)
            _progress("solved", job.spec_hash)

    admit = None
    if time_budget is not None:
        deadline = start + time_budget
        admit = lambda: perf_counter() < deadline  # noqa: E731

    exhausted: list[tuple[Job, Exception]] = []
    on_exhausted = None
    if degrade is not None:
        def on_exhausted(job: Job, failure: Exception) -> bool:
            with lock:
                exhausted.append((job, failure))
            return True

    if jobs:
        outcome = tr.run(
            jobs,
            workers=nworkers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            on_result=on_result,
            admit=admit,
            policy=policy,
            on_exhausted=on_exhausted,
        )
    else:
        outcome = TransportOutcome()

    for job, failure in exhausted:
        t0 = perf_counter()
        fallback = _degraded_solve(job, failure)
        with lock:
            # Stored under the ORIGINAL spec hash (the caller asked for
            # that spec) and never written to the certified cache.
            results[job.spec_hash] = fallback
            seconds[job.spec_hash] = perf_counter() - t0
            _progress("degraded", job.spec_hash)

    skipped_jobs = sorted(outcome.skipped, key=lambda job: job.index)
    skipped_hashes = {job.spec_hash for job in skipped_jobs}
    ordered: list[Result] = []
    for spec in specs:
        if spec.spec_hash in results:
            ordered.append(results[spec.spec_hash])
        elif spec.spec_hash not in skipped_hashes:
            raise DispatchError(
                f"transport {tr.name!r} returned no envelope for spec "
                f"{spec.spec_hash[:12]} (n={spec.n})"
            )
    merged = SolverStats.merge(
        [results[spec_hash].stats for spec_hash in sorted(results)]
    )
    return DispatchReport(
        results=ordered,
        seconds=seconds,
        merged_stats=merged,
        transport=tr.name,
        workers=nworkers,
        cached=cached,
        resumed=outcome.resumed,
        retries=outcome.retries,
        worker_deaths=outcome.worker_deaths,
        quarantined=outcome.quarantined,
        preempts=outcome.preempts,
        degraded=len(outcome.degraded),
        quarantined_workers=outcome.quarantined_workers,
        skipped=[job.spec for job in skipped_jobs],
    )
