"""Transport contract for the distributed CoverSpec dispatcher.

A :class:`Transport` executes a batch of :class:`Job`\\ s — each one a
serialized :class:`~repro.api.spec.CoverSpec` — and reports every
completed :class:`~repro.api.result.Result` envelope back through a
callback.  The *dispatcher* (:mod:`repro.dispatch.dispatcher`) owns
everything above that line: cost-weighted scheduling order, cache
resume and write-through, envelope validation, deterministic merge.
The transport owns everything below it: where the worker runs and how
the canonical spec JSON reaches it.

Three transports ship (each in its own module):

``inproc``
    A thin wrapper over :func:`repro.util.parallel.parallel_map` —
    the jobs fan out across a local process pool in weight-balanced
    bins, exactly like an in-process sharded sweep.
``subprocess``
    A pool of ``python -m repro worker`` processes fed spec-JSON jobs
    over stdin and read line-delimited ``Result`` envelopes back —
    the single-machine fleet shape, and the one the chaos tests kill
    mid-job.
``spool``
    A shared spool directory of ``<spec-hash>.json`` job files and
    ``<spec-hash>.result.json`` answers, claimed by atomic rename —
    suitable for many machines sharing a filesystem.

Worker-pool transports (``subprocess``; ``spool`` re-implements the
same policy over files) share :class:`QueueRunner`: a deque drained in
the dispatcher's order, per-job wall-clock deadlines, and
*retry-with-exclusion* — a job whose worker dies is re-queued with the
dead worker's id excluded, so the retry lands elsewhere, and a job that
outlives ``max_retries`` workers fails the whole dispatch loudly
instead of spinning.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from time import perf_counter

from ..api.result import Result
from ..api.spec import CoverSpec
from ..util.errors import ReproError

__all__ = [
    "DispatchError",
    "EnvelopeError",
    "Job",
    "JobError",
    "QueueRunner",
    "QueueWorker",
    "Transport",
    "TransportOutcome",
    "WorkerDeath",
    "WorkerPreempted",
]


class DispatchError(ReproError, RuntimeError):
    """The dispatcher could not complete the batch."""


class JobError(DispatchError):
    """A job failed *deterministically* on a healthy worker (solver or
    routing error) — retrying elsewhere cannot help, so the dispatch
    fails fast instead of burning retries."""


class EnvelopeError(DispatchError):
    """A worker returned an envelope that fails validation (wrong spec,
    non-covering blocks).  Raised by the dispatcher's result callback;
    queue transports treat it like a worker death and retry the job on
    a different worker."""


class WorkerDeath(ReproError, RuntimeError):
    """A worker stopped responding mid-job (crash, kill, or deadline).

    Not a :class:`DispatchError`: death is *retryable* — the runner
    re-queues the job with this worker excluded.
    """

    def __init__(self, message: str, *, timed_out: bool = False) -> None:
        super().__init__(message)
        self.timed_out = timed_out


class WorkerPreempted(ReproError, RuntimeError):
    """A worker hit its preemption deadline mid-proof and flushed a
    resumable checkpoint before exiting.

    Neither a death nor a failure: the runner re-queues the job at the
    front *with its checkpoint attached* and no exclusion or retry
    charge — the next worker resumes the proof where this one left off.
    """

    def __init__(
        self,
        message: str,
        *,
        spec_hash: str | None = None,
        checkpoint: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.spec_hash = spec_hash
        self.checkpoint = checkpoint


@dataclass
class Job:
    """One unit of dispatch: a spec, its cost weight, and its retry
    history (the worker ids it must not run on again)."""

    spec: CoverSpec
    weight: float
    index: int  # position among the batch's unique specs (FIFO order)
    attempts: int = 0
    excluded: tuple[str, ...] = ()
    # Serialized SearchCheckpoint payload carried from a preempted
    # worker to whichever worker resumes the job.
    checkpoint: dict | None = None
    preempts: int = 0

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash


# on_result(job, result, elapsed_seconds, worker_id); raises
# EnvelopeError when the envelope fails validation.
OnResult = Callable[[Job, Result, float, str], None]
# admit() -> False once the sweep budget is exhausted: jobs not yet
# started are reported as skipped instead of run.
Admit = Callable[[], bool]


@dataclass
class TransportOutcome:
    """What a transport reports back beside the per-job callbacks."""

    skipped: list[Job] = field(default_factory=list)
    retries: int = 0
    worker_deaths: int = 0
    quarantined: int = 0  # corrupt spool results deleted and re-dispatched
    resumed: int = 0  # valid spool results accepted without re-solving
    preempts: int = 0  # checkpointed preempt/resume handoffs


class Transport(ABC):
    """Executes jobs somewhere and reports envelopes back."""

    name: str = "?"

    @abstractmethod
    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
    ) -> TransportOutcome:
        """Execute ``jobs`` (already in schedule order) on ``workers``
        workers, calling ``on_result`` as each envelope arrives."""


class QueueWorker(ABC):
    """One executor usable by :class:`QueueRunner` — owns a single
    remote worker and turns one spec into one envelope at a time."""

    id: str

    @abstractmethod
    def solve(
        self,
        spec: CoverSpec,
        timeout: float | None,
        checkpoint: dict | None = None,
    ) -> Result:
        """Run one job, optionally resuming from a serialized search
        ``checkpoint``.  Raises :class:`WorkerDeath` when the worker
        stops responding (retryable), :class:`WorkerPreempted` when it
        flushed a checkpoint and bowed out (resumable), and
        :class:`JobError` when the job itself fails deterministically
        (fatal)."""

    @abstractmethod
    def close(self) -> None:
        """Release the worker (reap the process)."""


class QueueRunner:
    """The shared scheduling core for worker-pool transports.

    One thread per worker slot drains a shared deque (kept in the
    dispatcher's schedule order).  A worker death re-queues the job at
    the *front* (it was the heaviest eligible job) with the dead worker
    excluded, replaces the worker, and keeps going; the job fails the
    dispatch only after dying on ``max_retries + 1`` distinct workers.
    A global death cap backstops crash-on-start loops.
    """

    def __init__(
        self,
        make_worker: Callable[[], QueueWorker],
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
    ) -> None:
        self.make_worker = make_worker
        self.pending: deque[Job] = deque(jobs)
        self.workers = max(1, min(workers, max(1, len(jobs))))
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.on_result = on_result
        self.admit = admit
        self.outcome = TransportOutcome()
        self.in_flight = 0
        self.failure: Exception | None = None
        self.cond = threading.Condition()
        self.death_cap = max(4, 2 * len(jobs))
        self.preempt_cap = 100  # per job; engine guarantees progress per cycle

    # -- driving ---------------------------------------------------------

    def run(self) -> TransportOutcome:
        threads = [
            threading.Thread(target=self._drive, daemon=True, name=f"dispatch-{i}")
            for i in range(self.workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self.failure is not None:
            raise self.failure
        return self.outcome

    def _drive(self) -> None:
        worker: QueueWorker | None = None
        try:
            worker = self.make_worker()
            while True:
                job = self._claim(worker.id)
                if job is None:
                    return
                t0 = perf_counter()
                try:
                    if job.checkpoint is not None:
                        result = worker.solve(
                            job.spec, self.job_timeout, checkpoint=job.checkpoint
                        )
                    else:
                        result = worker.solve(job.spec, self.job_timeout)
                    self.on_result(job, result, perf_counter() - t0, worker.id)
                except WorkerPreempted as pre:
                    # Not a death: the worker flushed a resumable
                    # checkpoint and exited cleanly.  Hand the proof to
                    # a fresh worker — no exclusion, no retry charge.
                    self._close_quietly(worker)
                    self._repreempt(job, pre)
                    worker = self.make_worker()
                    continue
                except (WorkerDeath, EnvelopeError) as death:
                    # Both mean "this worker cannot be trusted with this
                    # job": retry elsewhere, replace the worker.
                    self._close_quietly(worker)
                    self._requeue(job, worker.id, death)
                    worker = self.make_worker()
                    continue
                self._done()
        except Exception as exc:  # JobError, spawn failure, callback bugs
            self._fail(exc)
        finally:
            if worker is not None:
                self._close_quietly(worker)

    # -- queue bookkeeping (all under self.cond) -------------------------

    def _claim(self, worker_id: str) -> Job | None:
        with self.cond:
            while True:
                if self.failure is not None:
                    return None
                if self.admit is not None and self.pending and not self.admit():
                    self.outcome.skipped.extend(self.pending)
                    self.pending.clear()
                    self.cond.notify_all()
                for i, job in enumerate(self.pending):
                    if worker_id not in job.excluded:
                        del self.pending[i]
                        self.in_flight += 1
                        return job
                if not self.pending and self.in_flight == 0:
                    return None
                # Pending jobs exist but all exclude this worker (only
                # transiently possible) or retries may still arrive.
                self.cond.wait(0.05)

    def _repreempt(self, job: Job, pre: WorkerPreempted) -> None:
        with self.cond:
            self.in_flight -= 1
            self.outcome.preempts += 1
            job.preempts += 1
            if pre.checkpoint is not None:
                job.checkpoint = pre.checkpoint
            if job.preempts > self.preempt_cap:
                # The engine guarantees forward progress per resume
                # cycle, so this only trips on a misconfigured
                # (absurdly short) preemption deadline.
                self.failure = DispatchError(
                    f"job {job.spec_hash[:12]} (n={job.spec.n}) preempted "
                    f"{job.preempts} times without completing — preemption "
                    f"deadline too short to make progress"
                )
            else:
                self.pending.appendleft(job)
            self.cond.notify_all()

    def _requeue(self, job: Job, worker_id: str, death: Exception) -> None:
        with self.cond:
            self.in_flight -= 1
            self.outcome.worker_deaths += 1
            job.attempts += 1
            job.excluded = job.excluded + (worker_id,)
            if job.attempts > self.max_retries:
                self.failure = DispatchError(
                    f"job {job.spec_hash[:12]} (n={job.spec.n}) died on "
                    f"{job.attempts} distinct workers; last: {death}"
                )
            elif self.outcome.worker_deaths > self.death_cap:
                self.failure = DispatchError(
                    f"{self.outcome.worker_deaths} worker deaths across the "
                    f"batch — transport looks unhealthy; last: {death}"
                )
            else:
                self.outcome.retries += 1
                self.pending.appendleft(job)
            self.cond.notify_all()

    def _done(self) -> None:
        with self.cond:
            self.in_flight -= 1
            self.cond.notify_all()

    def _fail(self, exc: Exception) -> None:
        with self.cond:
            if self.failure is None:
                self.failure = exc
            self.cond.notify_all()

    @staticmethod
    def _close_quietly(worker: QueueWorker) -> None:
        try:
            worker.close()
        except Exception:
            pass
