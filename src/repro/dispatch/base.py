"""Transport contract for the distributed CoverSpec dispatcher.

A :class:`Transport` executes a batch of :class:`Job`\\ s — each one a
serialized :class:`~repro.api.spec.CoverSpec` — and reports every
completed :class:`~repro.api.result.Result` envelope back through a
callback.  The *dispatcher* (:mod:`repro.dispatch.dispatcher`) owns
everything above that line: cost-weighted scheduling order, cache
resume and write-through, envelope validation, deterministic merge.
The transport owns everything below it: where the worker runs and how
the canonical spec JSON reaches it.

Three transports ship (each in its own module):

``inproc``
    A thin wrapper over :func:`repro.util.parallel.parallel_map` —
    the jobs fan out across a local process pool in weight-balanced
    bins, exactly like an in-process sharded sweep.
``subprocess``
    A pool of ``python -m repro worker`` processes fed spec-JSON jobs
    over stdin and read line-delimited ``Result`` envelopes back —
    the single-machine fleet shape, and the one the chaos tests kill
    mid-job.
``spool``
    A shared spool directory of ``<spec-hash>.json`` job files and
    ``<spec-hash>.result.json`` answers, claimed by atomic rename —
    suitable for many machines sharing a filesystem.

Worker-pool transports (``subprocess``; ``spool`` re-implements the
same policy over files) share :class:`QueueRunner`: a deque drained in
the dispatcher's order, per-job wall-clock deadlines, and
*retry-with-exclusion* — a job whose worker dies is re-queued with the
dead worker's id excluded, so the retry lands elsewhere, and a job that
outlives the retry budget fails the whole dispatch loudly instead of
spinning.

Retry *timing* is governed by :class:`RetryPolicy` — a seed-free,
fully deterministic capped exponential backoff shared by every
transport: the k-th retry of a job becomes eligible only
``policy.delay(k)`` seconds after the failure, so a flaky fleet stops
hammering itself.  The policy also carries the circuit breaker: a
worker *slot* whose workers crash ``quarantine_after`` times in a row
is quarantined (stops being refilled) while other slots remain,
instead of respawning a doomed worker forever.

``on_exhausted`` is the graceful-degradation hook: when a job fails
deterministically or runs out of retries, the transport first offers
it to this callback — the dispatcher uses it to re-route exact jobs
through the heuristic backend under ``degrade="heuristic"`` — and only
fails the batch if the callback declines.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from time import perf_counter

from ..api.result import Result
from ..api.spec import CoverSpec
from ..util.errors import ReproError

__all__ = [
    "DispatchError",
    "EnvelopeError",
    "Job",
    "JobError",
    "QueueRunner",
    "QueueWorker",
    "RetryPolicy",
    "Transport",
    "TransportOutcome",
    "WorkerDeath",
    "WorkerPreempted",
]


class DispatchError(ReproError, RuntimeError):
    """The dispatcher could not complete the batch."""


class JobError(DispatchError):
    """A job failed *deterministically* on a healthy worker (solver or
    routing error) — retrying elsewhere cannot help, so the dispatch
    fails fast instead of burning retries."""


class EnvelopeError(DispatchError):
    """A worker returned an envelope that fails validation (wrong spec,
    non-covering blocks).  Raised by the dispatcher's result callback;
    queue transports treat it like a worker death and retry the job on
    a different worker."""


class WorkerDeath(ReproError, RuntimeError):
    """A worker stopped responding mid-job (crash, kill, or deadline).

    Not a :class:`DispatchError`: death is *retryable* — the runner
    re-queues the job with this worker excluded.
    """

    def __init__(self, message: str, *, timed_out: bool = False) -> None:
        super().__init__(message)
        self.timed_out = timed_out


class WorkerPreempted(ReproError, RuntimeError):
    """A worker hit its preemption deadline mid-proof and flushed a
    resumable checkpoint before exiting.

    Neither a death nor a failure: the runner re-queues the job at the
    front *with its checkpoint attached* and no exclusion or retry
    charge — the next worker resumes the proof where this one left off.
    """

    def __init__(
        self,
        message: str,
        *,
        spec_hash: str | None = None,
        checkpoint: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.spec_hash = spec_hash
        self.checkpoint = checkpoint


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry timing plus the worker circuit breaker.

    The backoff schedule is seed-free and pure: retry ``k`` of any job
    waits exactly ``min(max_delay, base_delay * factor**(k-1))``
    seconds — the same numbers on every machine, every run — so chaos
    tests and CI byte-identity never depend on retry timing randomness.
    ``quarantine_after`` is the circuit breaker: a worker slot whose
    workers crash that many times consecutively stops being refilled
    (while at least one other slot remains to drain the queue).
    """

    max_retries: int = 2
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    quarantine_after: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise DispatchError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise DispatchError("retry delays must be non-negative")
        if self.factor < 1.0:
            raise DispatchError(
                f"backoff factor must be >= 1 (monotone schedule), got {self.factor}"
            )
        if self.quarantine_after < 1:
            raise DispatchError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based);
        attempt 0 — the first dispatch — never waits."""
        if attempt <= 0:
            return 0.0
        return min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))

    def schedule(self, attempts: int | None = None) -> tuple[float, ...]:
        """The full backoff schedule for ``attempts`` retries (default:
        ``max_retries``) — deterministic, monotone non-decreasing,
        capped at ``max_delay``."""
        count = self.max_retries if attempts is None else attempts
        return tuple(self.delay(k) for k in range(1, count + 1))


@dataclass
class Job:
    """One unit of dispatch: a spec, its cost weight, and its retry
    history (the worker ids it must not run on again)."""

    spec: CoverSpec
    weight: float
    index: int  # position among the batch's unique specs (FIFO order)
    attempts: int = 0
    excluded: tuple[str, ...] = ()
    # Serialized SearchCheckpoint payload carried from a preempted
    # worker to whichever worker resumes the job.
    checkpoint: dict | None = None
    preempts: int = 0
    # Backoff gate (a perf_counter timestamp): the job is not eligible
    # for claiming before this moment.  Set by the retry machinery from
    # the RetryPolicy schedule.
    not_before: float = 0.0

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash


# on_result(job, result, elapsed_seconds, worker_id); raises
# EnvelopeError when the envelope fails validation.
OnResult = Callable[[Job, Result, float, str], None]
# admit() -> False once the sweep budget is exhausted: jobs not yet
# started are reported as skipped instead of run.
Admit = Callable[[], bool]
# on_exhausted(job, failure) -> True to absorb a job that failed
# deterministically or ran out of retries (graceful degradation);
# False lets the transport fail the batch as before.
OnExhausted = Callable[[Job, Exception], bool]


@dataclass
class TransportOutcome:
    """What a transport reports back beside the per-job callbacks."""

    skipped: list[Job] = field(default_factory=list)
    retries: int = 0
    worker_deaths: int = 0
    quarantined: int = 0  # corrupt spool results deleted and re-dispatched
    resumed: int = 0  # valid spool results accepted without re-solving
    preempts: int = 0  # checkpointed preempt/resume handoffs
    quarantined_workers: int = 0  # slots tripped by the crash circuit breaker
    degraded: list[Job] = field(default_factory=list)  # absorbed by on_exhausted


class Transport(ABC):
    """Executes jobs somewhere and reports envelopes back."""

    name: str = "?"

    @abstractmethod
    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
        policy: RetryPolicy | None = None,
        on_exhausted: OnExhausted | None = None,
    ) -> TransportOutcome:
        """Execute ``jobs`` (already in schedule order) on ``workers``
        workers, calling ``on_result`` as each envelope arrives.
        ``policy`` overrides the default ``RetryPolicy`` built from
        ``max_retries``; ``on_exhausted`` may absorb jobs that fail
        deterministically or exhaust their retries."""


class QueueWorker(ABC):
    """One executor usable by :class:`QueueRunner` — owns a single
    remote worker and turns one spec into one envelope at a time."""

    id: str

    @abstractmethod
    def solve(
        self,
        spec: CoverSpec,
        timeout: float | None,
        checkpoint: dict | None = None,
    ) -> Result:
        """Run one job, optionally resuming from a serialized search
        ``checkpoint``.  Raises :class:`WorkerDeath` when the worker
        stops responding (retryable), :class:`WorkerPreempted` when it
        flushed a checkpoint and bowed out (resumable), and
        :class:`JobError` when the job itself fails deterministically
        (fatal)."""

    @abstractmethod
    def close(self) -> None:
        """Release the worker (reap the process)."""


class QueueRunner:
    """The shared scheduling core for worker-pool transports.

    One thread per worker slot drains a shared deque (kept in the
    dispatcher's schedule order).  A worker death re-queues the job at
    the *front* (it was the heaviest eligible job) with the dead worker
    excluded and a :class:`RetryPolicy` backoff gate, replaces the
    worker, and keeps going; the job fails the dispatch only after
    dying on ``policy.max_retries + 1`` distinct workers.  A slot whose
    workers crash ``policy.quarantine_after`` times consecutively is
    quarantined (the thread exits without a replacement) while other
    slots remain; a global death cap backstops crash-on-start loops.
    """

    def __init__(
        self,
        make_worker: Callable[[], QueueWorker],
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int = 2,
        on_result: OnResult,
        admit: Admit | None = None,
        policy: RetryPolicy | None = None,
        on_exhausted: OnExhausted | None = None,
    ) -> None:
        self.make_worker = make_worker
        self.pending: deque[Job] = deque(jobs)
        self.workers = max(1, min(workers, max(1, len(jobs))))
        self.job_timeout = job_timeout
        self.policy = policy if policy is not None else RetryPolicy(max_retries=max_retries)
        self.on_result = on_result
        self.admit = admit
        self.on_exhausted = on_exhausted
        self.outcome = TransportOutcome()
        self.in_flight = 0
        self.live_slots = self.workers
        self.failure: Exception | None = None
        self.cond = threading.Condition()
        self.death_cap = max(4, 2 * len(jobs))
        self.preempt_cap = 100  # per job; engine guarantees progress per cycle

    # -- driving ---------------------------------------------------------

    def run(self) -> TransportOutcome:
        threads = [
            threading.Thread(target=self._drive, daemon=True, name=f"dispatch-{i}")
            for i in range(self.workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self.failure is not None:
            raise self.failure
        return self.outcome

    def _drive(self) -> None:
        worker: QueueWorker | None = None
        crashes = 0  # consecutive worker deaths on THIS slot
        quarantined = False  # this slot already left live_slots
        try:
            worker = self.make_worker()
            while True:
                job = self._claim(worker.id)
                if job is None:
                    return
                t0 = perf_counter()
                try:
                    if job.checkpoint is not None:
                        result = worker.solve(
                            job.spec, self.job_timeout, checkpoint=job.checkpoint
                        )
                    else:
                        result = worker.solve(job.spec, self.job_timeout)
                    self.on_result(job, result, perf_counter() - t0, worker.id)
                except WorkerPreempted as pre:
                    # Not a death: the worker flushed a resumable
                    # checkpoint and exited cleanly.  Hand the proof to
                    # a fresh worker — no exclusion, no retry charge.
                    self._close_quietly(worker)
                    self._repreempt(job, pre)
                    worker = self.make_worker()
                    continue
                except JobError as exc:
                    # Deterministic failure on a healthy worker: offer
                    # the job to the degradation hook; without one (or
                    # if it declines) the batch fails fast, as ever.
                    if not self._absorb_exhausted(job, exc):
                        raise
                    self._done()
                    continue
                except (WorkerDeath, EnvelopeError) as death:
                    # Both mean "this worker cannot be trusted with this
                    # job": retry elsewhere, replace the worker.
                    self._close_quietly(worker)
                    self._requeue(job, worker.id, death)
                    crashes += 1
                    if crashes >= self.policy.quarantine_after and self._quarantine_slot():
                        quarantined = True
                        worker = None
                        return
                    worker = self.make_worker()
                    continue
                crashes = 0
                self._done()
        except Exception as exc:  # JobError, spawn failure, callback bugs
            self._fail(exc)
        finally:
            if not quarantined:
                with self.cond:
                    self.live_slots -= 1
                    self.cond.notify_all()
            if worker is not None:
                self._close_quietly(worker)

    # -- queue bookkeeping (all under self.cond) -------------------------

    def _claim(self, worker_id: str) -> Job | None:
        with self.cond:
            while True:
                if self.failure is not None:
                    return None
                if self.admit is not None and self.pending and not self.admit():
                    self.outcome.skipped.extend(self.pending)
                    self.pending.clear()
                    self.cond.notify_all()
                now = perf_counter()
                for i, job in enumerate(self.pending):
                    if worker_id not in job.excluded and job.not_before <= now:
                        del self.pending[i]
                        self.in_flight += 1
                        return job
                if not self.pending and self.in_flight == 0:
                    return None
                # Pending jobs exist but all exclude this worker or are
                # still inside their backoff window, or retries may yet
                # arrive from in-flight jobs.
                self.cond.wait(0.05)

    def _repreempt(self, job: Job, pre: WorkerPreempted) -> None:
        with self.cond:
            self.in_flight -= 1
            self.outcome.preempts += 1
            job.preempts += 1
            if pre.checkpoint is not None:
                job.checkpoint = pre.checkpoint
            if job.preempts > self.preempt_cap:
                # The engine guarantees forward progress per resume
                # cycle, so this only trips on a misconfigured
                # (absurdly short) preemption deadline.
                self.failure = DispatchError(
                    f"job {job.spec_hash[:12]} (n={job.spec.n}) preempted "
                    f"{job.preempts} times without completing — preemption "
                    f"deadline too short to make progress"
                )
            else:
                self.pending.appendleft(job)
            self.cond.notify_all()

    def _requeue(self, job: Job, worker_id: str, death: Exception) -> None:
        with self.cond:
            self.in_flight -= 1
            self.outcome.worker_deaths += 1
            job.attempts += 1
            job.excluded = job.excluded + (worker_id,)
            if job.attempts > self.policy.max_retries:
                exhausted = DispatchError(
                    f"job {job.spec_hash[:12]} (n={job.spec.n}) died on "
                    f"{job.attempts} distinct workers; last: {death}"
                )
                if not self._absorb_locked(job, exhausted):
                    self.failure = exhausted
            elif self.outcome.worker_deaths > self.death_cap:
                self.failure = DispatchError(
                    f"{self.outcome.worker_deaths} worker deaths across the "
                    f"batch — transport looks unhealthy; last: {death}"
                )
            else:
                self.outcome.retries += 1
                # Deterministic capped exponential backoff: the retry
                # sits out its window before any slot may claim it.
                job.not_before = perf_counter() + self.policy.delay(job.attempts)
                self.pending.appendleft(job)
            self.cond.notify_all()

    def _quarantine_slot(self) -> bool:
        """The circuit breaker: retire this slot (its workers keep
        crashing) when at least one other slot stays live to drain the
        queue.  Returns False — keep respawning — for the last slot.
        Atomically leaves ``live_slots`` on success, so two slots
        racing here can never both retire past the floor."""
        with self.cond:
            if self.live_slots <= 1:
                return False
            self.live_slots -= 1
            self.outcome.quarantined_workers += 1
            self.cond.notify_all()
            return True

    def _absorb_exhausted(self, job: Job, failure: Exception) -> bool:
        with self.cond:
            return self._absorb_locked(job, failure)

    def _absorb_locked(self, job: Job, failure: Exception) -> bool:
        """Offer a dead-end job to the degradation hook (caller holds
        ``self.cond``).  True when the hook absorbed it — the batch
        continues without an envelope for this job."""
        if self.on_exhausted is None:
            return False
        if not self.on_exhausted(job, failure):
            return False
        self.outcome.degraded.append(job)
        return True

    def _done(self) -> None:
        with self.cond:
            self.in_flight -= 1
            self.cond.notify_all()

    def _fail(self, exc: Exception) -> None:
        with self.cond:
            if self.failure is None:
                self.failure = exc
            self.cond.notify_all()

    @staticmethod
    def _close_quietly(worker: QueueWorker) -> None:
        try:
            worker.close()
        except Exception:
            pass
