"""File-queue transport: a spool directory shared by many machines.

Layout (everything under one ``root`` on a shared filesystem)::

    root/jobs/<seq>-<spec-hash>.json     job documents (spec + retry state)
    root/claims/<spec-hash>.<wid>.json   a worker's in-progress claim
    root/leases/<spec-hash>.<wid>.json   the claim's heartbeat lease
    root/results/<spec-hash>.result.json finished Result envelopes
    root/checkpoints/<spec-hash>.ckpt.json  resumable mid-proof state
    root/STOP                            shuts polling workers down

The dispatcher writes every job document up front — the ``<seq>``
filename prefix is its schedule position, so workers draining the
directory in sorted order execute the dispatcher's LPT heaviest-first
plan — optionally spawns local ``python -m repro worker --spool root``
processes, and then polls ``results/``.  Workers claim jobs by atomic
rename (``jobs/ → claims/``), so exactly one worker owns a job at a
time, and write results atomically (temp + rename), so a result file
that *exists* is complete — any unparsable result is therefore
corruption (a worker crashed around the rename, a disk hiccup, a hand
edit) and is quarantined: deleted, counted, and the job re-dispatched,
mirroring the result cache's recovery contract.

Reclaim is driven by **heartbeat leases**, not deadlines.  A worker
writes ``leases/<hash>.<wid>.json`` at claim time and renews it (a
monotone ``beat`` counter, bumped at most every ``heartbeat_every``
seconds, piggybacked on the engine's preempt polls) for as long as the
proof advances.  The dispatcher tracks each claim's beat against its
*local* clock — only beat changes cross the filesystem, so clock skew
between machines is irrelevant — and reclaims a claim through exactly
three doors:

* the claimer is a locally-spawned process that has exited (immediate);
* the claimer's lease has gone **stale**: its beat stopped moving for
  ``lease_timeout`` seconds (crash on a remote machine, stall, SIGSTOP
  past the lease window, dropped heartbeats);
* the claimer never wrote a lease at all (a previous-release worker)
  and the old job deadline has passed — the legacy reclaim, kept one
  release for mixed fleets.

A slow worker whose lease keeps renewing is **never** reclaimed, no
matter how far past ``job_timeout`` it runs — the deadline-based
double-solve window of earlier releases is gone.  A reclaimed job's
still-running straggler may yet write its (identical, atomic) envelope;
that is benign.

Retry timing follows the shared :class:`~repro.dispatch.base.RetryPolicy`:
a failed job sits out its deterministic capped-exponential backoff
window before its document is re-written (retry-with-exclusion through
the document's ``excluded`` list, as ever).  Spawned workers that keep
dying are respawned with a per-slot circuit breaker — a slot that
crashes ``policy.quarantine_after`` times is retired while other slots
remain — and workers that die *before* claiming anything trip a global
respawn cap instead of respawning forever.  ``on_exhausted`` offers
deterministic failures and retry-exhausted jobs to the dispatcher's
degradation hook before failing the batch.

Each poll tick does O(jobs + procs) work: the results, claims and
leases directories are listed/read once per tick and the dead-process
set computed once, then every pending job is matched in memory — the
metadata traffic a shared NFS spool actually cares about.  An idle
tick backs the poll interval off toward a cap (reset on any progress),
so a drained-but-waiting dispatcher stops spinning.

Resume comes free: a valid ``results/`` entry present before dispatch
(from a crashed earlier sweep, or from workers on other machines) is
accepted without re-solving.  Mid-proof resume comes almost as free:
workers checkpoint their search into ``checkpoints/`` as they go, so
when a stale claim is reclaimed after a worker death the retry *resumes
the proof from the dead worker's last flush* instead of restarting —
the reclaim machinery itself is unchanged, because the replacement
worker finds the checkpoint under the same spec hash.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import tempfile
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..api.result import Result
from .base import (
    Admit,
    DispatchError,
    EnvelopeError,
    Job,
    JobError,
    OnExhausted,
    OnResult,
    RetryPolicy,
    Transport,
    TransportOutcome,
)
from .subproc import worker_command, worker_env
from .worker import (
    HEARTBEAT_EVERY_DEFAULT,
    SPOOL_ERROR_FORMAT,
    SPOOL_JOB_FORMAT,
    _atomic_write,
)

__all__ = ["LEASE_TIMEOUT_DEFAULT", "SpoolTransport"]

# A lease whose beat hasn't moved for this long marks its worker dead.
# Generous relative to the 0.5 s default heartbeat cadence: renewals
# ride the engine's preempt polls, which a healthy proof hits many
# times per second, so ten missed windows is a worker that is gone.
LEASE_TIMEOUT_DEFAULT = 5.0
# How long a fresh claim may sit without any lease before the legacy
# (deadline-based) reclaim may touch it — covers the claim→lease-write
# window of current workers so only genuinely lease-less (old-release)
# workers ever take the legacy door.
_LEASE_GRACE = 1.0
# Idle drain ticks back off toward this ceiling (reset on progress).
_DRAIN_IDLE_CAP = 0.25


@dataclass
class _PendingJob:
    """Dispatcher-side state for one job still owed a result."""

    job: Job
    seq: int
    since: float  # dispatch/re-queue time (legacy deadline clock)
    queued: bool = True  # document written (False inside a backoff window)
    not_before: float = 0.0  # backoff gate for the next re-queue
    claimer: str | None = None
    claim_seen: float = 0.0  # when the current claimer appeared (local clock)
    lease_beat: int | None = None  # last beat observed for this claimer
    lease_seen: float = field(default=0.0)  # local time the beat last changed


_Pending = dict[str, _PendingJob]


class SpoolTransport(Transport):
    name = "spool"

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        poll: float = 0.05,
        spawn_workers: bool = True,
        python: str | None = None,
        extra_env: dict[str, str] | None = None,
        extra_args: Sequence[str] = (),
        heartbeat_every: float = HEARTBEAT_EVERY_DEFAULT,
        lease_timeout: float = LEASE_TIMEOUT_DEFAULT,
    ) -> None:
        """``root=None`` spools into a fresh temp directory, created
        lazily when :meth:`run` starts and removed when it finishes.
        ``spawn_workers=False`` writes jobs and waits for *external*
        workers (other machines) to drain them.  ``extra_args`` rides
        along on every spawned worker command line (e.g.
        ``--checkpoint-every 512`` or ``--preempt-after 5``).
        ``heartbeat_every`` is the lease renewal cadence handed to
        spawned workers; ``lease_timeout`` is how long a claim's beat
        may freeze before the claim is reclaimed."""
        self._owns_root = root is None
        self.root: Path | None = Path(root) if root is not None else None
        self.poll = poll
        self.spawn_workers = spawn_workers
        self.python = python
        self.extra_env = extra_env
        self.extra_args = tuple(extra_args)
        self.heartbeat_every = heartbeat_every
        self.lease_timeout = lease_timeout

    # -- paths -----------------------------------------------------------

    def _job_path(self, job: Job, seq: int) -> Path:
        # The sequence prefix is the schedule position: workers drain
        # jobs/ in sorted order, so the LPT plan survives the filesystem.
        assert self.root is not None
        return self.root / "jobs" / f"{seq:06d}-{job.spec_hash}.json"

    def _result_name(self, spec_hash: str) -> str:
        return f"{spec_hash}.result.json"

    def _result_path(self, spec_hash: str) -> Path:
        assert self.root is not None
        return self.root / "results" / self._result_name(spec_hash)

    def _lease_path(self, spec_hash: str, wid: str) -> Path:
        assert self.root is not None
        return self.root / "leases" / f"{spec_hash}.{wid}.json"

    def _checkpoint_path(self, spec_hash: str) -> Path:
        assert self.root is not None
        return self.root / "checkpoints" / f"{spec_hash}.ckpt.json"

    # -- job documents ---------------------------------------------------

    def _write_job(self, job: Job, seq: int) -> None:
        doc = {
            "format": SPOOL_JOB_FORMAT,
            "spec": job.spec.to_payload(),
            "attempts": job.attempts,
            "excluded": list(job.excluded),
            # A self-preempting worker restores the job file itself and
            # needs the schedule position to reconstruct the filename.
            "seq": seq,
        }
        _atomic_write(self._job_path(job, seq), json.dumps(doc, sort_keys=True))

    def _read_result(self, spec_hash: str) -> Result:
        """Parse a finished result file.  Raises :class:`JobError` for a
        worker-reported deterministic failure and ``ValueError``-family
        errors for corruption (the caller quarantines)."""
        text = self._result_path(spec_hash).read_text(encoding="utf-8")
        payload = json.loads(text)
        if isinstance(payload, dict) and payload.get("format") == SPOOL_ERROR_FORMAT:
            raise JobError(
                f"job {spec_hash[:12]} failed on a spool worker: "
                f"[{payload.get('kind', '?')}] {payload.get('error', '?')}"
            )
        return Result.from_payload(payload)

    def _lease_beat(self, spec_hash: str, wid: str) -> int | None:
        """The claimer's current lease beat, or ``None`` when no lease
        exists (never written, already cleared, or unreadable — lease
        writes are atomic, so unreadable means absent)."""
        try:
            doc = json.loads(self._lease_path(spec_hash, wid).read_text())
            return int(doc["beat"])
        except (OSError, ValueError, TypeError, KeyError):
            return None

    # -- the run loop ----------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
        policy: RetryPolicy | None = None,
        on_exhausted: OnExhausted | None = None,
    ) -> TransportOutcome:
        outcome = TransportOutcome()
        if policy is None:
            policy = RetryPolicy(max_retries=max_retries)
        if self.root is None:
            self.root = Path(tempfile.mkdtemp(prefix="repro-spool-"))
        for sub in ("jobs", "claims", "leases", "results", "checkpoints"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        stop = self.root / "STOP"
        stop.unlink(missing_ok=True)

        procs: list[subprocess.Popen | None] = []
        try:
            pending = self._enqueue(jobs, outcome, on_result, admit, on_exhausted)
            if pending and self.spawn_workers:
                procs = [self._spawn_worker() for _ in range(max(1, workers))]
            self._drain(
                pending, outcome, on_result, job_timeout, policy, procs, on_exhausted
            )
        finally:
            _atomic_write(stop, "")
            for proc in procs:
                if proc is not None:
                    self._reap(proc)
            if self._owns_root:
                shutil.rmtree(self.root, ignore_errors=True)
                self.root = None  # recreated lazily on the next run
        return outcome

    def _enqueue(
        self,
        jobs: Sequence[Job],
        outcome: TransportOutcome,
        on_result: OnResult,
        admit: Admit | None,
        on_exhausted: OnExhausted | None,
    ) -> _Pending:
        """Write job files (resume semantics: an existing valid result is
        accepted, an existing corrupt one quarantined).  Returns the
        jobs still owed a result, keyed by hash."""
        pending: _Pending = {}
        for seq, job in enumerate(jobs):
            if admit is not None and not admit():
                outcome.skipped.extend(jobs[seq:])
                break
            if self._result_path(job.spec_hash).exists():
                try:
                    result = self._read_result(job.spec_hash)
                    on_result(job, result, 0.0, "spool-resume")
                    outcome.resumed += 1
                    continue
                except JobError as exc:
                    if self._absorb(job, exc, outcome, on_exhausted):
                        continue
                    raise
                except (EnvelopeError, ValueError, KeyError, TypeError, OSError):
                    self._quarantine(job.spec_hash, outcome)
            self._write_job(job, seq)
            pending[job.spec_hash] = _PendingJob(
                job=job, seq=seq, since=time.monotonic()
            )
        return pending

    def _drain(
        self,
        pending: _Pending,
        outcome: TransportOutcome,
        on_result: OnResult,
        job_timeout: float | None,
        policy: RetryPolicy,
        procs: "list[subprocess.Popen | None]",
        on_exhausted: OnExhausted | None,
    ) -> None:
        assert self.root is not None
        results_dir = self.root / "results"
        claims_dir = self.root / "claims"
        respawns = 0
        respawn_cap = max(4, 2 * len(pending) + len(procs))
        slot_deaths = [0] * len(procs)
        # Accumulated across the run: respawning replaces a dead proc in
        # ``procs``, but its id must keep matching claims it left behind.
        dead_ids: set[str] = set()
        idle = RetryPolicy(
            base_delay=max(0.001, self.poll),
            factor=1.5,
            max_delay=max(self.poll, _DRAIN_IDLE_CAP),
            max_retries=0,
        )
        idle_ticks = 0
        while pending:
            progressed = False
            # One directory listing per tick, not one stat per job.
            finished = self._listdir(results_dir)
            claims = self._claim_map(claims_dir)
            dead_ids.update(
                f"w{proc.pid}"
                for proc in procs
                if proc is not None and proc.poll() is not None
            )
            now = time.monotonic()
            for spec_hash in list(pending):
                entry = pending[spec_hash]
                job = entry.job
                if self._result_name(spec_hash) in finished:
                    progressed = True
                    try:
                        result = self._read_result(spec_hash)
                        on_result(job, result, now - entry.since, "spool")
                        del pending[spec_hash]
                        # A straggler may have answered a job we already
                        # re-queued: retire the orphan document so no
                        # idle worker re-solves it.
                        self._job_path(job, entry.seq).unlink(missing_ok=True)
                    except JobError as exc:
                        if self._absorb(job, exc, outcome, on_exhausted):
                            del pending[spec_hash]
                            continue
                        raise
                    except (EnvelopeError, ValueError, KeyError, TypeError, OSError):
                        self._quarantine(spec_hash, outcome)
                        self._retry(entry, pending, outcome, policy, on_exhausted)
                    continue
                if not entry.queued:
                    # Sitting out its backoff window; re-queue when due.
                    if now >= entry.not_before:
                        self._write_job(job, entry.seq)
                        entry.queued = True
                        entry.since = now
                        progressed = True
                    continue
                claimer = claims.get(spec_hash)
                if claimer != entry.claimer:
                    # New claim (or claim released): restart the lease
                    # observation for the new owner.
                    entry.claimer = claimer
                    entry.claim_seen = now
                    entry.lease_beat = None
                    entry.lease_seen = now
                timed_out = job_timeout is not None and now - entry.since > job_timeout
                if claimer is None:
                    if timed_out:
                        # Timed out but never claimed: nobody failed it —
                        # reset the clock instead of burning a retry.
                        entry.since = now
                    continue
                beat = self._lease_beat(spec_hash, claimer)
                if beat is not None and beat != entry.lease_beat:
                    entry.lease_beat = beat
                    entry.lease_seen = now
                # The reclaim state machine: a heartbeating worker is
                # never reclaimed.  Only a dead local process, a stale
                # lease, or (for lease-less legacy workers) the old job
                # deadline opens the claim.
                claim_dead = claimer in dead_ids
                lease_stale = (
                    entry.lease_beat is not None
                    and now - entry.lease_seen > self.lease_timeout
                )
                legacy_timeout = (
                    entry.lease_beat is None
                    and beat is None
                    and timed_out
                    and now - entry.claim_seen > _LEASE_GRACE
                )
                if claim_dead or lease_stale or legacy_timeout:
                    (claims_dir / f"{spec_hash}.{claimer}.json").unlink(
                        missing_ok=True
                    )
                    self._lease_path(spec_hash, claimer).unlink(missing_ok=True)
                    job.excluded = job.excluded + (claimer,)
                    outcome.worker_deaths += 1
                    self._retry(entry, pending, outcome, policy, on_exhausted)
                    progressed = True
            if pending:
                respawns += self._respawn_dead(
                    procs, slot_deaths, dead_ids, outcome, policy
                )
                if respawns > respawn_cap:
                    raise DispatchError(
                        f"spool workers died {respawns} times without "
                        "claiming a job — the worker command looks broken"
                    )
                if progressed:
                    idle_ticks = 0
                else:
                    idle_ticks += 1
                    delay = idle.delay(idle_ticks)
                    # Wake in time for the earliest deferred re-queue.
                    due = min(
                        (e.not_before for e in pending.values() if not e.queued),
                        default=None,
                    )
                    if due is not None:
                        delay = min(delay, max(0.0, due - time.monotonic()))
                    if delay > 0:
                        time.sleep(delay)

    @staticmethod
    def _listdir(directory: Path) -> set[str]:
        try:
            return {entry.name for entry in directory.iterdir()}
        except OSError:
            return set()

    def _claim_map(self, claims_dir: Path) -> dict[str, str]:
        """spec_hash -> worker id for every current claim (hashes are
        hex, so the first dot splits hash from worker id)."""
        claims: dict[str, str] = {}
        for name in self._listdir(claims_dir):
            if not name.endswith(".json"):
                continue
            stem = name[: -len(".json")]
            spec_hash, _, wid = stem.partition(".")
            if wid:
                claims[spec_hash] = wid
        return claims

    # -- failure handling ------------------------------------------------

    def _quarantine(self, spec_hash: str, outcome: TransportOutcome) -> None:
        self._result_path(spec_hash).unlink(missing_ok=True)
        outcome.quarantined += 1

    def _absorb(
        self,
        job: Job,
        failure: Exception,
        outcome: TransportOutcome,
        on_exhausted: OnExhausted | None,
    ) -> bool:
        """Offer a dead-end job to the degradation hook; on absorption,
        scrub its error document and checkpoint so nothing half-done
        lingers in the spool."""
        if on_exhausted is None or not on_exhausted(job, failure):
            return False
        outcome.degraded.append(job)
        self._result_path(job.spec_hash).unlink(missing_ok=True)
        self._checkpoint_path(job.spec_hash).unlink(missing_ok=True)
        return True

    def _retry(
        self,
        entry: _PendingJob,
        pending: _Pending,
        outcome: TransportOutcome,
        policy: RetryPolicy,
        on_exhausted: OnExhausted | None,
    ) -> None:
        job = entry.job
        job.attempts += 1
        if job.attempts > policy.max_retries:
            failure = DispatchError(
                f"spool job {job.spec_hash[:12]} (n={job.spec.n}) failed "
                f"{job.attempts} times — giving up"
            )
            if self._absorb(job, failure, outcome, on_exhausted):
                del pending[job.spec_hash]
                return
            raise failure
        outcome.retries += 1
        # The document is re-written only once the deterministic backoff
        # window has passed — the drain loop wakes for it.
        entry.queued = False
        entry.not_before = time.monotonic() + policy.delay(job.attempts)
        entry.claimer = None
        entry.lease_beat = None

    # -- local worker processes ------------------------------------------

    def _spawn_worker(self) -> subprocess.Popen:
        cmd = worker_command(self.python) + [
            "--spool",
            str(self.root),
            "--poll",
            str(self.poll),
            "--heartbeat-every",
            str(self.heartbeat_every),
            *self.extra_args,
        ]
        return subprocess.Popen(cmd, env=worker_env(self.extra_env))

    def _respawn_dead(
        self,
        procs: "list[subprocess.Popen | None]",
        slot_deaths: list[int],
        dead_ids: set[str],
        outcome: TransportOutcome,
        policy: RetryPolicy,
    ) -> int:
        """Replace exited local workers; returns how many were replaced
        so the drain loop can cap crash-on-start churn.  A slot whose
        workers have died ``policy.quarantine_after`` times is retired
        (circuit breaker) while at least one live slot remains."""
        replaced = 0
        for i, proc in enumerate(procs):
            if proc is None or proc.poll() is None:
                continue
            dead_ids.add(f"w{proc.pid}")
            slot_deaths[i] += 1
            live = sum(1 for p in procs if p is not None)
            if slot_deaths[i] >= policy.quarantine_after and live > 1:
                procs[i] = None
                outcome.quarantined_workers += 1
            else:
                procs[i] = self._spawn_worker()
                replaced += 1
        return replaced

    @staticmethod
    def _reap(proc: subprocess.Popen) -> None:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
