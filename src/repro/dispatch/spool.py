"""File-queue transport: a spool directory shared by many machines.

Layout (everything under one ``root`` on a shared filesystem)::

    root/jobs/<seq>-<spec-hash>.json     job documents (spec + retry state)
    root/claims/<spec-hash>.<wid>.json   a worker's in-progress claim
    root/results/<spec-hash>.result.json finished Result envelopes
    root/checkpoints/<spec-hash>.ckpt.json  resumable mid-proof state
    root/STOP                            shuts polling workers down

The dispatcher writes every job document up front — the ``<seq>``
filename prefix is its schedule position, so workers draining the
directory in sorted order execute the dispatcher's LPT heaviest-first
plan — optionally spawns local ``python -m repro worker --spool root``
processes, and then polls ``results/``.  Workers claim jobs by atomic
rename (``jobs/ → claims/``), so exactly one worker owns a job at a
time, and write results atomically (temp + rename), so a result file
that *exists* is complete — any unparsable result is therefore
corruption (a worker crashed around the rename, a disk hiccup, a hand
edit) and is quarantined: deleted, counted, and the job re-dispatched,
mirroring the result cache's recovery contract.

Retry-with-exclusion works through the job document itself: a
re-dispatched job carries the failed worker's id in its ``excluded``
list, and workers skip jobs that exclude them.  Worker death is
detected three ways: a claim whose locally-spawned worker process has
exited is reclaimed immediately, a claim older than the job deadline
is reclaimed (remote workers cannot be killed, so a still-running
straggler may yet write its — identical, atomic — envelope; that is
benign), and spawned workers that keep dying *before* claiming
anything trip a respawn cap instead of respawning forever.

Each poll tick does O(jobs + procs) work: the results and claims
directories are listed once and the dead-process set computed once,
then every pending job is matched in memory — the metadata traffic a
shared NFS spool actually cares about.

Resume comes free: a valid ``results/`` entry present before dispatch
(from a crashed earlier sweep, or from workers on other machines) is
accepted without re-solving.  Mid-proof resume comes almost as free:
workers checkpoint their search into ``checkpoints/`` as they go, so
when a stale claim is reclaimed after a worker death the retry *resumes
the proof from the dead worker's last flush* instead of restarting —
the reclaim machinery itself is unchanged, because the replacement
worker finds the checkpoint under the same spec hash.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

from ..api.result import Result
from .base import (
    Admit,
    DispatchError,
    EnvelopeError,
    Job,
    JobError,
    OnResult,
    Transport,
    TransportOutcome,
)
from .subproc import worker_command, worker_env
from .worker import SPOOL_ERROR_FORMAT, SPOOL_JOB_FORMAT, _atomic_write

__all__ = ["SpoolTransport"]

# pending: spec_hash -> [job, dispatch_time, schedule_seq]
_Pending = dict[str, list]


class SpoolTransport(Transport):
    name = "spool"

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        poll: float = 0.05,
        spawn_workers: bool = True,
        python: str | None = None,
        extra_env: dict[str, str] | None = None,
        extra_args: Sequence[str] = (),
    ) -> None:
        """``root=None`` spools into a fresh temp directory, created
        lazily when :meth:`run` starts and removed when it finishes.
        ``spawn_workers=False`` writes jobs and waits for *external*
        workers (other machines) to drain them.  ``extra_args`` rides
        along on every spawned worker command line (e.g.
        ``--checkpoint-every 512`` or ``--preempt-after 5``)."""
        self._owns_root = root is None
        self.root: Path | None = Path(root) if root is not None else None
        self.poll = poll
        self.spawn_workers = spawn_workers
        self.python = python
        self.extra_env = extra_env
        self.extra_args = tuple(extra_args)

    # -- paths -----------------------------------------------------------

    def _job_path(self, job: Job, seq: int) -> Path:
        # The sequence prefix is the schedule position: workers drain
        # jobs/ in sorted order, so the LPT plan survives the filesystem.
        assert self.root is not None
        return self.root / "jobs" / f"{seq:06d}-{job.spec_hash}.json"

    def _result_name(self, spec_hash: str) -> str:
        return f"{spec_hash}.result.json"

    def _result_path(self, spec_hash: str) -> Path:
        assert self.root is not None
        return self.root / "results" / self._result_name(spec_hash)

    # -- job documents ---------------------------------------------------

    def _write_job(self, job: Job, seq: int) -> None:
        doc = {
            "format": SPOOL_JOB_FORMAT,
            "spec": job.spec.to_payload(),
            "attempts": job.attempts,
            "excluded": list(job.excluded),
            # A self-preempting worker restores the job file itself and
            # needs the schedule position to reconstruct the filename.
            "seq": seq,
        }
        _atomic_write(self._job_path(job, seq), json.dumps(doc, sort_keys=True))

    def _read_result(self, spec_hash: str) -> Result:
        """Parse a finished result file.  Raises :class:`JobError` for a
        worker-reported deterministic failure and ``ValueError``-family
        errors for corruption (the caller quarantines)."""
        text = self._result_path(spec_hash).read_text(encoding="utf-8")
        payload = json.loads(text)
        if isinstance(payload, dict) and payload.get("format") == SPOOL_ERROR_FORMAT:
            raise JobError(
                f"job {spec_hash[:12]} failed on a spool worker: "
                f"[{payload.get('kind', '?')}] {payload.get('error', '?')}"
            )
        return Result.from_payload(payload)

    # -- the run loop ----------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workers: int,
        job_timeout: float | None,
        max_retries: int,
        on_result: OnResult,
        admit: Admit | None = None,
    ) -> TransportOutcome:
        outcome = TransportOutcome()
        if self.root is None:
            self.root = Path(tempfile.mkdtemp(prefix="repro-spool-"))
        for sub in ("jobs", "claims", "results", "checkpoints"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        stop = self.root / "STOP"
        stop.unlink(missing_ok=True)

        procs: list[subprocess.Popen] = []
        try:
            pending = self._enqueue(jobs, outcome, on_result, admit)
            if pending and self.spawn_workers:
                procs = [self._spawn_worker() for _ in range(max(1, workers))]
            self._drain(pending, outcome, on_result, job_timeout, max_retries, procs)
        finally:
            _atomic_write(stop, "")
            for proc in procs:
                self._reap(proc)
            if self._owns_root:
                shutil.rmtree(self.root, ignore_errors=True)
                self.root = None  # recreated lazily on the next run
        return outcome

    def _enqueue(
        self,
        jobs: Sequence[Job],
        outcome: TransportOutcome,
        on_result: OnResult,
        admit: Admit | None,
    ) -> _Pending:
        """Write job files (resume semantics: an existing valid result is
        accepted, an existing corrupt one quarantined).  Returns the
        jobs still owed a result, keyed by hash, with dispatch times and
        schedule positions."""
        pending: _Pending = {}
        for seq, job in enumerate(jobs):
            if admit is not None and not admit():
                outcome.skipped.extend(jobs[seq:])
                break
            if self._result_path(job.spec_hash).exists():
                try:
                    result = self._read_result(job.spec_hash)
                    on_result(job, result, 0.0, "spool-resume")
                    outcome.resumed += 1
                    continue
                except JobError:
                    raise
                except (EnvelopeError, ValueError, KeyError, TypeError, OSError):
                    self._quarantine(job.spec_hash, outcome)
            self._write_job(job, seq)
            pending[job.spec_hash] = [job, time.monotonic(), seq]
        return pending

    def _drain(
        self,
        pending: _Pending,
        outcome: TransportOutcome,
        on_result: OnResult,
        job_timeout: float | None,
        max_retries: int,
        procs: list[subprocess.Popen],
    ) -> None:
        assert self.root is not None
        results_dir = self.root / "results"
        claims_dir = self.root / "claims"
        respawns = 0
        respawn_cap = max(4, 2 * len(pending) + len(procs))
        # Accumulated across the run: respawning replaces a dead proc in
        # ``procs``, but its id must keep matching claims it left behind.
        dead_ids: set[str] = set()
        while pending:
            progressed = False
            # One directory listing per tick, not one stat per job.
            finished = self._listdir(results_dir)
            claims = self._claim_map(claims_dir)
            dead_ids.update(
                f"w{proc.pid}" for proc in procs if proc.poll() is not None
            )
            now = time.monotonic()
            for spec_hash in list(pending):
                job, since, seq = pending[spec_hash]
                if self._result_name(spec_hash) in finished:
                    progressed = True
                    try:
                        result = self._read_result(spec_hash)
                        on_result(job, result, now - since, "spool")
                        del pending[spec_hash]
                    except JobError:
                        raise
                    except (EnvelopeError, ValueError, KeyError, TypeError, OSError):
                        self._quarantine(spec_hash, outcome)
                        self._retry(job, seq, pending, outcome, max_retries)
                    continue
                claimer = claims.get(spec_hash)
                claim_dead = claimer is not None and claimer in dead_ids
                timed_out = job_timeout is not None and now - since > job_timeout
                if claim_dead or (timed_out and claimer is not None):
                    (claims_dir / f"{spec_hash}.{claimer}.json").unlink(
                        missing_ok=True
                    )
                    job.excluded = job.excluded + (claimer,)
                    outcome.worker_deaths += 1
                    self._retry(job, seq, pending, outcome, max_retries)
                    progressed = True
                elif timed_out:
                    # Timed out but never claimed: nobody failed it —
                    # reset the clock instead of burning a retry.
                    pending[spec_hash][1] = now
            if pending:
                respawns += self._respawn_dead(procs)
                if respawns > respawn_cap:
                    raise DispatchError(
                        f"spool workers died {respawns} times without "
                        "claiming a job — the worker command looks broken"
                    )
                if not progressed:
                    time.sleep(self.poll)

    @staticmethod
    def _listdir(directory: Path) -> set[str]:
        try:
            return {entry.name for entry in directory.iterdir()}
        except OSError:
            return set()

    def _claim_map(self, claims_dir: Path) -> dict[str, str]:
        """spec_hash -> worker id for every current claim (hashes are
        hex, so the first dot splits hash from worker id)."""
        claims: dict[str, str] = {}
        for name in self._listdir(claims_dir):
            if not name.endswith(".json"):
                continue
            stem = name[: -len(".json")]
            spec_hash, _, wid = stem.partition(".")
            if wid:
                claims[spec_hash] = wid
        return claims

    # -- failure handling ------------------------------------------------

    def _quarantine(self, spec_hash: str, outcome: TransportOutcome) -> None:
        self._result_path(spec_hash).unlink(missing_ok=True)
        outcome.quarantined += 1

    def _retry(
        self,
        job: Job,
        seq: int,
        pending: _Pending,
        outcome: TransportOutcome,
        max_retries: int,
    ) -> None:
        job.attempts += 1
        if job.attempts > max_retries:
            raise DispatchError(
                f"spool job {job.spec_hash[:12]} (n={job.spec.n}) failed "
                f"{job.attempts} times — giving up"
            )
        outcome.retries += 1
        self._write_job(job, seq)
        pending[job.spec_hash] = [job, time.monotonic(), seq]

    # -- local worker processes ------------------------------------------

    def _spawn_worker(self) -> subprocess.Popen:
        cmd = worker_command(self.python) + [
            "--spool",
            str(self.root),
            "--poll",
            str(self.poll),
            *self.extra_args,
        ]
        return subprocess.Popen(cmd, env=worker_env(self.extra_env))

    def _respawn_dead(self, procs: list[subprocess.Popen]) -> int:
        """Replace exited local workers; returns how many were replaced
        so the drain loop can cap crash-on-start churn."""
        replaced = 0
        for i, proc in enumerate(procs):
            if proc.poll() is not None:
                procs[i] = self._spawn_worker()
                replaced += 1
        return replaced

    @staticmethod
    def _reap(proc: subprocess.Popen) -> None:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
