"""Routing on the physical ring.

On ``C_n`` a request ``{a, b}`` has exactly two candidate routes: the
clockwise arc ``a → b`` and the counterclockwise arc (= clockwise
``b → a``).  An :class:`Arc` captures one choice; a :class:`RingRouting`
maps each request of a block to its arc and knows which fiber links are
used.  Edge-disjointness checks are the substrate for the DRC.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

from ..util import circular
from ..util.errors import RoutingError
from ..util.validation import check_vertex

__all__ = ["Arc", "RingRouting", "route_request_shortest", "arcs_edge_disjoint"]


@dataclass(frozen=True)
class Arc:
    """The clockwise arc ``start → end`` on ``C_n``.

    Represents the physical path serving request ``{start, end}`` when
    routed clockwise from ``start``.  The links used are
    ``start, start+1, ..., end-1`` (mod n), in link-index convention
    (link ``i`` joins ``i`` and ``i+1``).
    """

    n: int
    start: int
    end: int

    def __post_init__(self) -> None:
        check_vertex(self.start, self.n)
        check_vertex(self.end, self.n)
        if self.start == self.end:
            raise RoutingError("an arc must join two distinct nodes")

    @property
    def length(self) -> int:
        """Number of fiber links traversed."""
        return (self.end - self.start) % self.n

    @property
    def request(self) -> tuple[int, int]:
        """The request served, as a normalised chord."""
        return circular.chord(self.start, self.end)

    def links(self) -> Iterator[int]:
        """Link indices used, clockwise."""
        for i in range(self.length):
            yield (self.start + i) % self.n

    @cached_property
    def link_set(self) -> frozenset[int]:
        return frozenset(self.links())

    def nodes(self) -> list[int]:
        """Nodes visited, in order (endpoints included)."""
        return [(self.start + i) % self.n for i in range(self.length + 1)]

    def uses_link(self, index: int) -> bool:
        return (index - self.start) % self.n < self.length

    def reversed_arc(self) -> "Arc":
        """The complementary route for the same request."""
        return Arc(self.n, self.end, self.start)

    def is_shortest(self) -> bool:
        return self.length <= self.n - self.length

    def __repr__(self) -> str:  # pragma: no cover
        return f"Arc({self.start}→{self.end} on C_{self.n}, len={self.length})"


def route_request_shortest(n: int, a: int, b: int) -> Arc:
    """The shortest of the two candidate arcs (clockwise tie-break)."""
    fwd = (b - a) % n
    return Arc(n, a, b) if fwd <= n - fwd else Arc(n, b, a)


def arcs_edge_disjoint(arcs: Sequence[Arc]) -> bool:
    """True when no fiber link is used by two of the given arcs."""
    used: set[int] = set()
    for arc in arcs:
        for link in arc.links():
            if link in used:
                return False
            used.add(link)
    return True


class RingRouting:
    """An edge-disjoint routing of a set of requests on ``C_n``.

    Maps each request (chord) to its :class:`Arc`.  Construction
    validates edge-disjointness — the defining property the paper's DRC
    demands of every subnetwork.
    """

    def __init__(self, n: int, assignment: Mapping[tuple[int, int], Arc]) -> None:
        self.n = int(n)
        self._assignment = dict(assignment)
        used: set[int] = set()
        for req, arc in self._assignment.items():
            if arc.n != n:
                raise RoutingError(f"arc {arc} does not live on C_{n}")
            if arc.request != tuple(sorted(req)):
                raise RoutingError(f"arc {arc} does not serve request {req}")
            for link in arc.links():
                if link in used:
                    raise RoutingError(
                        f"link {link} used twice — routing is not edge-disjoint"
                    )
                used.add(link)
        self._used = frozenset(used)

    @property
    def requests(self) -> list[tuple[int, int]]:
        return sorted(self._assignment)

    @property
    def arcs(self) -> list[Arc]:
        return [self._assignment[r] for r in sorted(self._assignment)]

    def arc_for(self, request: tuple[int, int]) -> Arc:
        key = tuple(sorted(request))
        try:
            return self._assignment[key]  # type: ignore[index]
        except KeyError:
            raise RoutingError(f"request {request} is not routed here") from None

    @property
    def used_links(self) -> frozenset[int]:
        return self._used

    @property
    def total_length(self) -> int:
        return sum(arc.length for arc in self._assignment.values())

    def uses_all_links(self) -> bool:
        """Convex-block routings use every ring link exactly once."""
        return len(self._used) == self.n

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover
        return f"RingRouting(n={self.n}, requests={len(self)}, links={len(self._used)})"
