"""Per-wavelength link capacity accounting.

Each subnetwork (cycle block) is assigned a wavelength pair (working +
protection).  Within one wavelength, each fiber link can carry one unit
of traffic per direction; a convex block's routing uses every ring link
exactly once, i.e. exactly fills the working wavelength — the "half the
capacity for demands, half for rerouting" picture of the paper.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..util.errors import CapacityError
from .routing import Arc

__all__ = ["LinkLoadLedger"]


class LinkLoadLedger:
    """Tracks per-link load within a single wavelength on ``C_n``.

    ``charge(arc)`` adds one unit on each link of the arc and raises
    :class:`~repro.util.errors.CapacityError` on oversubscription, which
    is how simulations detect DRC violations operationally.
    """

    def __init__(self, n: int, *, capacity: int = 1) -> None:
        if n < 3:
            raise CapacityError(f"ring needs n ≥ 3, got {n}")
        if capacity < 1:
            raise CapacityError(f"capacity must be ≥ 1, got {capacity}")
        self.n = int(n)
        self.capacity = int(capacity)
        self._load = [0] * self.n

    def charge(self, arc: Arc) -> None:
        if arc.n != self.n:
            raise CapacityError(f"arc {arc} does not live on C_{self.n}")
        for link in arc.links():
            if self._load[link] + 1 > self.capacity:
                raise CapacityError(
                    f"link {link} oversubscribed (capacity {self.capacity})"
                )
            self._load[link] += 1

    def charge_all(self, arcs: Iterable[Arc]) -> None:
        for arc in arcs:
            self.charge(arc)

    def release(self, arc: Arc) -> None:
        for link in arc.links():
            if self._load[link] == 0:
                raise CapacityError(f"releasing unloaded link {link}")
            self._load[link] -= 1

    def load(self, link: int) -> int:
        return self._load[link % self.n]

    @property
    def loads(self) -> list[int]:
        return list(self._load)

    @property
    def max_load(self) -> int:
        return max(self._load)

    @property
    def total_load(self) -> int:
        return sum(self._load)

    def is_saturated(self) -> bool:
        """Every link exactly at capacity — the convex-block signature."""
        return all(load == self.capacity for load in self._load)

    def reset(self) -> None:
        self._load = [0] * self.n

    def __repr__(self) -> str:  # pragma: no cover
        return f"LinkLoadLedger(n={self.n}, max={self.max_load}/{self.capacity})"
