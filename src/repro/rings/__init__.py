"""Physical layer: ring topologies, arcs, routings, capacity ledgers."""

from .capacity import LinkLoadLedger
from .routing import Arc, RingRouting, arcs_edge_disjoint, route_request_shortest
from .topology import PhysicalNetwork, RingLink, RingNetwork

__all__ = [
    "Arc",
    "LinkLoadLedger",
    "PhysicalNetwork",
    "RingLink",
    "RingNetwork",
    "RingRouting",
    "arcs_edge_disjoint",
    "route_request_shortest",
]
