"""Physical-layer topologies.

The paper models the optical network as a symmetric directed multigraph
whose underlying undirected graph is, in the headline case, the ring
``C_n``.  :class:`RingNetwork` is that case, with link identities,
capacities and failure state; :class:`PhysicalNetwork` is the general
undirected multigraph wrapper used by the extensions (trees of rings,
grids, tori — the paper's future-work topologies).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, field

import networkx as nx

from ..util.errors import TopologyError
from ..util.validation import check_positive, check_vertex

__all__ = ["RingLink", "RingNetwork", "PhysicalNetwork"]


@dataclass(frozen=True)
class RingLink:
    """A fiber link of the ring: joins ``index`` and ``index+1 (mod n)``.

    Links are identified by the index of their counterclockwise endpoint,
    so ring ``C_n`` has links ``0..n-1`` and link ``i`` = {i, i+1 mod n}.
    """

    n: int
    index: int

    def __post_init__(self) -> None:
        check_positive(self.n, "n")
        check_vertex(self.index, self.n)

    @property
    def endpoints(self) -> tuple[int, int]:
        return (self.index, (self.index + 1) % self.n)

    def __repr__(self) -> str:  # pragma: no cover
        a, b = self.endpoints
        return f"RingLink({a}-{b})"


class RingNetwork:
    """The physical ring ``C_n``: optical switches 0..n-1 joined in a
    cycle, every link with the same (per-wavelength) capacity.

    The object is lightweight and immutable apart from failure state,
    which the survivability simulator toggles.
    """

    def __init__(self, n: int, *, link_capacity: int = 1) -> None:
        if n < 3:
            raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
        self.n = int(n)
        self.link_capacity = check_positive(link_capacity, "link_capacity")
        self._failed: set[int] = set()

    # -- structure -------------------------------------------------------

    @property
    def num_links(self) -> int:
        return self.n

    def links(self) -> Iterator[RingLink]:
        for i in range(self.n):
            yield RingLink(self.n, i)

    def link(self, index: int) -> RingLink:
        return RingLink(self.n, index % self.n)

    def link_between(self, a: int, b: int) -> RingLink:
        """The link joining two *adjacent* ring nodes."""
        check_vertex(a, self.n)
        check_vertex(b, self.n)
        if (a + 1) % self.n == b:
            return RingLink(self.n, a)
        if (b + 1) % self.n == a:
            return RingLink(self.n, b)
        raise TopologyError(f"nodes {a} and {b} are not adjacent on C_{self.n}")

    def neighbors(self, v: int) -> tuple[int, int]:
        check_vertex(v, self.n)
        return ((v - 1) % self.n, (v + 1) % self.n)

    def as_graph(self) -> nx.Graph:
        g = nx.cycle_graph(self.n)
        for i in range(self.n):
            g.edges[i, (i + 1) % self.n]["capacity"] = self.link_capacity
        return g

    # -- failure state -----------------------------------------------------

    def fail_link(self, index: int) -> None:
        self._failed.add(index % self.n)

    def repair_link(self, index: int) -> None:
        self._failed.discard(index % self.n)

    def repair_all(self) -> None:
        self._failed.clear()

    @property
    def failed_links(self) -> frozenset[int]:
        return frozenset(self._failed)

    def is_link_up(self, index: int) -> bool:
        return index % self.n not in self._failed

    def __repr__(self) -> str:  # pragma: no cover
        return f"RingNetwork(n={self.n}, failed={sorted(self._failed)})"


class PhysicalNetwork:
    """General undirected physical topology (networkx-backed).

    Used by :mod:`repro.extensions.topologies` for trees of rings, grids
    and tori.  Nodes may be arbitrary hashables; edges carry capacities.
    """

    def __init__(self, graph: nx.Graph, *, name: str = "custom") -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("physical network must have at least one node")
        if any(u == v for u, v in graph.edges()):
            raise TopologyError("self-loops are not valid fiber links")
        self.graph = nx.Graph(graph)
        self.name = name

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self.graph.number_of_edges()

    def nodes(self) -> Iterable[Hashable]:
        return self.graph.nodes()

    def edges(self) -> Iterable[tuple[Hashable, Hashable]]:
        return self.graph.edges()

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def is_two_edge_connected(self) -> bool:
        """Survivable networks need 2-edge-connectivity (single link
        failures must leave all node pairs connected)."""
        if not nx.is_connected(self.graph):
            return False
        return not list(nx.bridges(self.graph))

    def is_ring(self) -> bool:
        return (
            self.num_nodes >= 3
            and self.num_nodes == self.num_links
            and all(d == 2 for _, d in self.graph.degree())
            and nx.is_connected(self.graph)
        )

    def ring_order(self) -> list[Hashable]:
        """The circular node order when the network is a ring."""
        if not self.is_ring():
            raise TopologyError(f"{self.name!r} is not a ring")
        return list(nx.cycle_basis(self.graph)[0])

    def __repr__(self) -> str:  # pragma: no cover
        return f"PhysicalNetwork({self.name!r}, nodes={self.num_nodes}, links={self.num_links})"
