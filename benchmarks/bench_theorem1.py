"""E1 — regenerate Theorem 1's table: ρ(n), C3/C4 mix for odd n.

Paper row (Theorem 1): ρ(2p+1) = p(p+1)/2, achieved by p C3 +
p(p−1)/2 C4, exact decomposition.  The benchmark times the full
pipeline (construct + verify) and asserts formula == construction ==
lower bound with the exact theorem mix.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_theorem1

ODD_NS = (5, 7, 9, 11, 13, 15, 17, 19, 21, 25, 31, 41)


def test_bench_theorem1(benchmark, save_table):
    result = benchmark(experiment_theorem1, ODD_NS)
    table = result.render()
    save_table("E1_theorem1", table)
    print("\n" + table)

    for row in result.rows:
        assert row["valid"] and row["optimal"]
        assert row["rho_formula"] == row["constructed"] == row["lower_bound"]
        assert row["c3_formula"] == row["c3_measured"]
        assert row["c4_formula"] == row["c4_measured"]
        assert row["excess_measured"] == 0  # exact decomposition
