"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's tables (experiments
E1–E10 in DESIGN.md), times it with pytest-benchmark, asserts the
paper-shape of the results, and writes the rendered table to
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from
artifacts rather than by hand.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
