"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's tables (experiments
E1–E10 in DESIGN.md), times it with pytest-benchmark, asserts the
paper-shape of the results, and writes the rendered table to
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from
artifacts rather than by hand.  Machine-readable companions
(``benchmarks/results/*.json``) carry the same rows for trajectory
tracking; the solver benchmark additionally mirrors its payload to the
repo-top-level ``BENCH_solver.json``, the file CI uploads and guards
against node-count regressions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Persist a machine-readable experiment payload under
    benchmarks/results/<name>.json (and optionally mirror it to a
    repo-top-level file — the solver benchmark's ``BENCH_solver.json``)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: dict, *, mirror: str | None = None) -> Path:
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(text, encoding="utf-8")
        if mirror is not None:
            (REPO_ROOT / mirror).write_text(text, encoding="utf-8")
        return path

    return _save
