"""Ablation studies on the design choices DESIGN.md calls out.

A1 — branching strategy in the even-case completion: dynamic MRV
     (recompute the scarcest edge per node) vs the cheaper static
     scarcity order.  MRV costs more per node but keeps backtracking
     near zero; static can thrash by orders of magnitude.
A2 — candidate pool: tight blocks only (distance-budget = n) vs all
     convex blocks.  Tightness is not required for *validity*, but the
     optimal odd decompositions are forced tight, so restricting the
     pool shrinks the search space without losing solutions.
A3 — the pole quad's interior vertex w ∈ {2q+1, 2q+2}: both complete;
     recorded so regressions in either variant are caught.
A4 — the ρ(n) covering search: chord branching order (lexicographic vs
     scarcest-first) × canonical-mask transposition memo.  Lexicographic
     order resolves all chords at a vertex together, so sibling subtrees
     share residual states and the memo collapses them; scarcest-first
     (classic MRV) minimises fan-out per node but starves the memo.
     Every table is emitted as text and as JSON rows.
"""

from __future__ import annotations

import time

from repro.core.pole import pole_forced_blocks
from repro.core.engine import (
    SolverStats,
    enumerate_convex_blocks,
    enumerate_tight_blocks,
    exact_decomposition,
)
from repro.util import circular
from repro.util.errors import SolverError
from repro.util.tables import Table

NS_PRIME = (11, 15, 19, 23)


def _completion_edges(n_prime: int, w: int) -> frozenset:
    forced = pole_forced_blocks(n_prime, w)
    covered = {e for blk in forced for e in blk.edges()}
    return frozenset(
        e for e in circular.all_chords(n_prime) if 0 not in e and e not in covered
    )


def _solve(
    n_prime: int, *, strategy: str, pool: str, node_limit: int
) -> tuple[float, bool, int]:
    w = (n_prime - 3) // 2 + 2  # 2q + 2
    edges = _completion_edges(n_prime, w)
    cands = (
        enumerate_tight_blocks(n_prime)
        if pool == "tight"
        else enumerate_convex_blocks(n_prime)
    )
    stats = SolverStats()
    t0 = time.perf_counter()
    try:
        result = exact_decomposition(
            n_prime, edges, max_triangles=1, candidates=cands,
            node_limit=node_limit, strategy=strategy, stats=stats,
        )
        ok = result is not None
    except SolverError:
        ok = False  # node budget exhausted — that IS the measurement
    return time.perf_counter() - t0, ok, stats.nodes


def test_bench_ablation_branching(benchmark, save_table, save_json):
    """A1: branching strategy on the tight pool, pushed to sizes where
    static ordering starts to thrash (budget-capped so a thrash shows up
    as 'no' rather than a minutes-long stall)."""

    def run():
        rows = []
        for n_prime in (11, 15, 19, 23, 27, 31, 35, 39):
            for strategy in ("mrv", "static"):
                elapsed, ok, nodes = _solve(
                    n_prime, strategy=strategy, pool="tight", node_limit=100_000
                )
                rows.append(
                    {"np": n_prime, "strategy": strategy,
                     "seconds": elapsed, "solved": ok, "nodes": nodes}
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(
        "A1 — branching strategy ablation (tight pool, 100k-node budget)",
        ["n'", "strategy", "seconds", "nodes", "solved"],
    )
    for row in rows:
        table.add_row(
            row["np"], row["strategy"], round(row["seconds"], 3),
            row["nodes"], row["solved"],
        )
    text = table.render()
    save_table("A1_ablation_branching", text)
    save_json("A1_ablation_branching", {"experiment": "A1", "rows": rows})
    print("\n" + text)

    # The shipped configuration (MRV) must solve every size in budget.
    for row in rows:
        if row["strategy"] == "mrv":
            assert row["solved"], f"default config failed at n={row['np']}"


def test_bench_ablation_pool(benchmark, save_table, save_json):
    """A2: candidate pool (tight vs all-convex), small sizes only — the
    convex pool already exhausts the budget at n' = 15, which is the
    measurement: tightness pruning is what makes completions tractable."""

    def run():
        rows = []
        for n_prime in (11, 15):
            for pool in ("tight", "convex"):
                elapsed, ok, nodes = _solve(
                    n_prime, strategy="mrv", pool=pool, node_limit=100_000
                )
                rows.append(
                    {"np": n_prime, "pool": pool, "seconds": elapsed,
                     "solved": ok, "nodes": nodes}
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(
        "A2 — candidate pool ablation (MRV, 100k-node budget)",
        ["n'", "pool", "seconds", "nodes", "solved"],
    )
    for row in rows:
        table.add_row(
            row["np"], row["pool"], round(row["seconds"], 3),
            row["nodes"], row["solved"],
        )
    text = table.render()
    save_table("A2_ablation_pool", text)
    save_json("A2_ablation_pool", {"experiment": "A2", "rows": rows})
    print("\n" + text)

    for row in rows:
        if row["pool"] == "tight":
            assert row["solved"]


def test_bench_ablation_pole_w(benchmark, save_table, save_json):
    """A3: both pole-quad variants complete (w = 2q+1 and 2q+2)."""

    def run():
        rows = []
        for n_prime in NS_PRIME:
            q = (n_prime - 3) // 4
            for w in (2 * q + 1, 2 * q + 2):
                edges = _completion_edges(n_prime, w)
                t0 = time.perf_counter()
                result = exact_decomposition(
                    n_prime, edges, max_triangles=1,
                    candidates=enumerate_tight_blocks(n_prime),
                )
                rows.append(
                    {"np": n_prime, "w": w, "seconds": time.perf_counter() - t0,
                     "solved": result is not None}
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table("A3 — pole quad interior vertex", ["n'", "w", "seconds", "solved"])
    for row in rows:
        table.add_row(row["np"], row["w"], round(row["seconds"], 3), row["solved"])
    text = table.render()
    save_table("A3_ablation_pole_w", text)
    save_json("A3_ablation_pole_w", {"experiment": "A3", "rows": rows})
    print("\n" + text)

    assert all(row["solved"] for row in rows)


def test_bench_ablation_covering_search(benchmark, save_table, save_json):
    """A4: the ρ(n) covering search — branching order × transposition
    memo, on the even sizes whose counting-bound gap forces a real
    exhaustion proof (budget-capped; a blow-up shows up as 'no').
    Runs through the declarative API: the solver-regime knobs
    (``branching``, ``use_memo``, ``node_limit``) are spec fields, so
    the ablation is just a grid of ``CoverSpec``\\ s over the pinned
    ``exact`` backend."""
    from repro.api import CoverSpec, solve
    from repro.core.formulas import rho

    def run():
        rows = []
        for n in (6, 8):
            for branching in ("lex", "scarcest"):
                for use_memo in (True, False):
                    spec = CoverSpec.for_ring(
                        n, backend="exact", use_hints=False,
                        branching=branching, use_memo=use_memo,
                        node_limit=300_000,
                    )
                    nodes = 0
                    t0 = time.perf_counter()
                    try:
                        result = solve(spec)
                        solved = result.num_blocks == rho(n)
                        nodes = result.stats.nodes
                    except SolverError:
                        # Budget exhausted — the measurement.  The stats
                        # stay inside the unreturned Result, so record
                        # the budget itself: the explored count at the
                        # point of the overrun.
                        solved = False
                        nodes = spec.node_limit
                    rows.append(
                        {"n": n, "branching": branching, "memo": use_memo,
                         "seconds": time.perf_counter() - t0,
                         "nodes": nodes, "solved": solved}
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(
        "A4 — covering-search ablation (300k-node budget)",
        ["n", "branching", "memo", "seconds", "nodes", "solved"],
    )
    for row in rows:
        table.add_row(
            row["n"], row["branching"], row["memo"],
            round(row["seconds"], 3), row["nodes"], row["solved"],
        )
    text = table.render()
    save_table("A4_ablation_covering_search", text)
    save_json("A4_ablation_covering_search", {"experiment": "A4", "rows": rows})
    print("\n" + text)

    # The shipped configuration (lex + memo) must solve both sizes in
    # budget and never explore more nodes than any other configuration
    # that also solved.
    by_config = {(r["n"], r["branching"], r["memo"]): r for r in rows}
    for n in (6, 8):
        shipped = by_config[(n, "lex", True)]
        assert shipped["solved"], f"default config failed at n={n}"
        for (rn, _, _), row in by_config.items():
            if rn == n and row["solved"]:
                assert shipped["nodes"] <= row["nodes"], (
                    f"default config is not the fastest at n={n}"
                )
