"""E3 — the paper's worked example (G = C4, I = K4), reproduced verbatim.

"One covering is given by the two C4's (1,2,3,4) and (1,3,4,2) but
there does not exist an edge disjoint routing for the cycle (1,3,4,2)
... On the other hand, the covering given by the C4 (1,2,3,4) and the
two C3's (1,2,4) and (1,3,4) satisfies the edge disjoint routing
property."
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_paper_example


def test_bench_paper_example(benchmark, save_table):
    result = benchmark(experiment_paper_example)
    table = result.render()
    save_table("E3_paper_example", table)
    print("\n" + table)

    by_name = {r["name"]: r for r in result.rows if "routable" in r}
    assert by_name["ring"]["routable"]
    assert by_name["tri1"]["routable"] and by_name["tri2"]["routable"]
    assert not by_name["bad"]["routable"]  # the paper's negative case

    summary = result.rows[-1]
    assert summary["good_valid"]
    assert summary["bad_covers"] and not summary["bad_drc"]
