"""E11 — protection vs restoration (paper §1), quantified on the ring.

Paper: "Two survivability schemes can be implemented: protection or
restoration. ... Dividing the network into independent sub-networks
provides an intermediate solution."  Expected shape: on a ring the
pooled-restoration spare equals the working load (no path diversity),
so the covering's dedicated protection costs the same capacity while
keeping switching local and the blast radius bounded.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_protection_vs_restoration

NS = (8, 11, 14, 17)


def test_bench_protection_vs_restoration(benchmark, save_table):
    result = benchmark(experiment_protection_vs_restoration, NS)
    table = result.render()
    save_table("E11_protection_vs_restoration", table)
    print("\n" + table)

    for row in result.rows:
        # On a ring, restoration recovers no capacity advantage...
        assert row["restoration_overhead"] >= 0.9
        # ...and the covering's working capacity is within one extra
        # wavelength-ring of the shortest-path working optimum.
        overbuild = row["protection_working"] - row["restoration_working"]
        assert 0 <= overbuild <= row["n"]
        # Protection's per-failure disturbance never exceeds restoration's
        # worst case by more than the covering's excess duplication.
        assert (
            row["protection_reroutes_per_failure"]
            <= row["restoration_reroutes_worst"] + row["n"] // 2
        )
