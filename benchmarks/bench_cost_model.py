"""E4 — the cost model: minimising cycles minimises ring cost.

Reproduces the paper's cost-section claim ("when the physical graph is
a ring that corresponds to minimize the number of subgraphs I_k") and
the bridge to refs [3]/[4]: the Theorem coverings simultaneously attain
the ADM (ring-size-sum) optimum.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_cost_model

# Mix of parities: for odd n the polynomial fallback is itself optimal,
# for even n it pays a visible cost premium — both shapes matter.
NS = (7, 9, 11, 12, 13, 15, 16, 17)


def test_bench_cost_model(benchmark, save_table):
    result = benchmark(experiment_cost_model, NS)
    table = result.render()
    save_table("E4_cost_model", table)
    print("\n" + table)

    by_n: dict[int, dict[str, dict]] = {}
    for row in result.rows:
        by_n.setdefault(row["n"], {})[row["method"]] = row
    for n, methods in by_n.items():
        theorem = methods["theorem"]
        # Paper shape: the theorem covering wins (or ties) on both
        # cycle count and total cost, against every alternative.
        for other in ("fast", "greedy"):
            assert theorem["cycles"] <= methods[other]["cycles"]
            assert theorem["total"] <= methods[other]["total"]
        # ...and also attains the [3]/[4] ADM optimum.
        assert theorem["adms"] == theorem["adm_lb"]
