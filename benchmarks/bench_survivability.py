"""E6 — survivability: every single fiber cut heals by in-cycle
protection switching, with dedicated (100%) spare capacity.

The paper argues this qualitatively ("fast automatic protection in
case of failure"); the benchmark simulates every cut on every ring and
asserts full recovery with exactly one reroute per subnetwork.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_survivability

NS = (6, 8, 9, 11, 13, 16)


def test_bench_survivability(benchmark, save_table):
    result = benchmark(experiment_survivability, NS)
    table = result.render()
    save_table("E6_survivability", table)
    print("\n" + table)

    for row in result.rows:
        assert row["survivable"]
        assert row["recovered"] == row["failures"] == row["n"]
        # Exactly one request per subnetwork crosses any given link.
        assert row["mean_affected"] == row["cycles"]
