"""E8 — λK_n coverings (paper future work).

Expected shape: for odd n the repetition construction meets the lower
bound exactly (certified optimal for every λ); for even n a bounded gap
(≤ λ) remains — honestly reported, matching the open status in the
paper's extensions section.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_lambda_fold

NS = (5, 7, 9, 6, 8, 10)
LAMS = (1, 2, 3, 4)


def test_bench_lambda_fold(benchmark, save_table):
    result = benchmark(experiment_lambda_fold, NS, LAMS)
    table = result.render()
    save_table("E8_lambda_fold", table)
    print("\n" + table)

    for row in result.rows:
        assert row["valid"]
        assert row["gap"] >= 0
        if row["n"] % 2 == 1:
            assert row["gap"] == 0          # certified optimal
        else:
            assert row["gap"] <= row["lam"]  # bounded slack
