"""E12 — graceful degradation under simultaneous double fiber cuts.

Beyond the paper's single-failure design point.  Expected shape: no
cut pair fully survives (two cuts physically split a ring), losses are
dominated by disconnection rather than protection contention, and mean
survival stays above 50% and grows slowly with n.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_dual_failures

NS = (8, 10, 12, 14)


def test_bench_dual_failures(benchmark, save_table):
    result = benchmark(experiment_dual_failures, NS)
    table = result.render()
    save_table("E12_dual_failures", table)
    print("\n" + table)

    means = []
    for row in result.rows:
        assert row["full"] == 0          # two cuts always split a ring
        assert 0.4 <= row["worst"] <= row["mean"] <= 1.0
        means.append(row["mean"])
    # Larger rings keep a (weakly) larger surviving fraction: the two
    # cut arcs hold a smaller share of all pairs.
    assert means[-1] >= means[0] - 0.02
