"""E9 — DRC coverings beyond the ring (paper future work).

"We also consider other network topologies, for example, trees of
rings, grids or tori."  Expected shape: denser topologies (torus) admit
coverings with at most as many cycles as the greedy needs on sparser
ones of equal order; everything stays DRC-routable by construction.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_topologies


def test_bench_topologies(benchmark, save_table):
    result = benchmark.pedantic(
        experiment_topologies, rounds=1, iterations=1, warmup_rounds=0
    )
    table = result.render()
    save_table("E9_topologies", table)
    print("\n" + table)

    rows = {row["name"]: row for row in result.rows}
    for row in result.rows:
        assert row["cycles"] > 0

    grid = rows["grid-3x3"]
    torus = rows["torus-3x3"]
    # Same order, strictly more links: the torus never needs more
    # greedy cycles than the grid.
    assert torus["nodes"] == grid["nodes"]
    assert torus["links"] > grid["links"]
    assert torus["cycles"] <= grid["cycles"]
