"""E10 — exact certification of ρ(n) at small n.

The branch-and-bound solver knows neither the formulas nor the
constructions; its optimum matching ρ(n) for every n it can exhaust is
the reproduction's independent check of the theorems' *lower* bounds.

Runs through :func:`repro.core.engine.solve_many`, the batched engine
front door; n = 9 joined the sweep once greedy incumbents and dihedral
symmetry breaking cut its search from ~1.6M nodes to a few hundred.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_solver_certification

NS = (4, 5, 6, 7, 8, 9)


def test_bench_solver_certification(benchmark, save_table):
    result = benchmark.pedantic(
        experiment_solver_certification, args=(NS,), rounds=1, iterations=1, warmup_rounds=0
    )
    table = result.render()
    save_table("E10_solver", table)
    print("\n" + table)

    for row in result.rows:
        assert row["match"], f"solver disagrees with ρ({row['n']})"
