"""E10 — exact certification of ρ(n) at small n.

The branch-and-bound solver knows neither the formulas nor the
constructions (it gets no upper-bound hints); its optimum matching
ρ(n) for every n it can exhaust is the reproduction's independent
check of the theorems' *lower* bounds.

Runs through the declarative :mod:`repro.api` layer (one ``CoverSpec``
per ring size, the exact backends pinned, hints off — see
:func:`repro.analysis.experiments.experiment_solver_certification`).
The sweep reaches n = 11 since the canonical-mask
transposition memo, the packing bound, and improver-seeded incumbents
landed: n = 9 and n = 11 certify from the root (the counting bound is
tight for odd n), and the even sizes — whose bound gap forces a real
exhaustion proof — run orders of magnitude below the seed solver
(n = 8: 85,650 → ~3.5k nodes).  Ring sizes ≥ ``SHARD_THRESHOLD``
exercise the root-orbit-sharded scale-out path.

Results are written three ways: the rendered table
(``results/E10_solver.txt``), machine-readable rows
(``results/E10_solver.json``), and the repo-top-level
``BENCH_solver.json`` that CI uploads as an artifact and guards with
the pinned ``N8_NODE_CEILING`` (the seed's 85,650-node n = 8 anomaly
must stay ≥ 10× beaten).

The JSON additionally carries a ``kernel_ablation`` block: the largest
even ring size in the sweep re-proven under every installed kernel
(``REPRO_KERNEL``), prologue hoisted, reporting nodes/sec and the
wall-clock speedup over the pure-Python reference.  Byte-identity
(see :mod:`repro.core.kernel`) means the node counts must agree
exactly — the rows are a pure throughput comparison.

A ``backend_ablation`` block sits alongside it: the shared small even
rings certified twice over — once by ``exact`` branch-and-bound
exhaustion, once by the ``sat`` tier's downward cardinality walk —
with wall-clock and each regime's native effort metric (B&B nodes vs
CDCL conflicts/decisions).  The optima are asserted equal; the block
is a cost comparison between independent proofs.

``REPRO_BENCH_NS`` (comma-separated ring sizes) restricts the sweep —
CI's smoke job sets ``4,5,6,7,8``.  The sweep itself goes through
``api.solve_batch``'s dispatcher (``repro.dispatch``);
``REPRO_BENCH_TRANSPORT`` (``inproc``/``subprocess``/``spool``) and
``REPRO_BENCH_DISPATCH_WORKERS`` select the transport and fleet size —
the default single-worker in-process transport keeps per-n timings
exact.
"""

from __future__ import annotations

import os
import time

from repro.analysis.experiments import experiment_solver_certification
from repro.core.engine import (
    DEFAULT_NODE_LIMIT,
    N8_NODE_CEILING,
    SolverEngine,
    SolverStats,
)
from repro.core.kernel import available_kernels
from repro.core.objective import resolve_objective

NS = (4, 5, 6, 7, 8, 9, 10, 11)
SHARD_THRESHOLD = 11


def _ns_from_env() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_NS")
    if not raw:
        return NS
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _dispatch_from_env() -> dict:
    kwargs: dict = {}
    transport = os.environ.get("REPRO_BENCH_TRANSPORT")
    if transport:
        kwargs["transport"] = transport
    raw_workers = os.environ.get("REPRO_BENCH_DISPATCH_WORKERS")
    if raw_workers:
        kwargs["dispatch_workers"] = int(raw_workers)
    return kwargs


def _kernel_ablation(n: int) -> list[dict]:
    """Time the identical K_n exhaustion proof under every installed
    kernel (``REPRO_KERNEL`` values), prologue hoisted so only the
    branch-and-bound loop is on the clock.  Byte-identity makes the
    comparison exact: every kernel explores the same node sequence, so
    the rows differ only in wall-clock."""
    obj = resolve_objective("min_blocks")
    rows = []
    for kernel in available_kernels():
        eng = SolverEngine(n, kernel=kernel)
        best_count, best_blocks, order, root_cands, _ = eng._search_prologue(
            None, "lex", obj, None
        )
        st = SolverStats()
        start = time.perf_counter()
        eng._covering_search(
            root_cands=root_cands,
            best_count=best_count,
            best_blocks=best_blocks,
            node_limit=DEFAULT_NODE_LIMIT,
            st=st,
            order=order,
            objective=obj,
        )
        seconds = time.perf_counter() - start
        rows.append(
            {
                "kernel": kernel,
                "n": n,
                "nodes": st.nodes,
                "seconds": seconds,
                "nodes_per_sec": st.nodes / seconds if seconds > 0 else 0.0,
            }
        )
    python_seconds = next(r["seconds"] for r in rows if r["kernel"] == "python")
    for row in rows:
        row["speedup_vs_python"] = (
            python_seconds / row["seconds"] if row["seconds"] > 0 else 0.0
        )
    return rows


def _backend_ablation(ns: tuple[int, ...]) -> list[dict]:
    """Prove the same ρ(n) optima under the ``exact`` branch-and-bound
    and the ``sat`` certification tier, hints off, and report each
    regime's native effort metric side by side: B&B nodes vs CDCL
    conflicts/decisions.  The optima must agree — the ablation is a
    cost comparison between two independent proofs, not a tolerance
    band."""
    from repro.api import CoverSpec, solve
    from repro.sat.engines import resolve_engine

    rows = []
    for n in ns:
        row: dict = {"n": n, "engine": resolve_engine()}
        for backend in ("exact", "sat"):
            spec = CoverSpec.for_ring(n, backend=backend, use_hints=False)
            start = time.perf_counter()
            res = solve(spec, cache=None)
            seconds = time.perf_counter() - start
            assert res.status == "proven_optimal", (backend, n, res.status)
            row[f"{backend}_seconds"] = seconds
            row[f"{backend}_optimum"] = res.stats.best_value
            if backend == "exact":
                row["exact_nodes"] = res.stats.nodes
            else:
                cert = res.sat_certificate
                row["sat_conflicts"] = cert["conflicts"]
                row["sat_decisions"] = cert["decisions"]
        assert row["exact_optimum"] == row["sat_optimum"], (
            f"n={n}: exact and sat disagree on the optimum — "
            f"{row['exact_optimum']} vs {row['sat_optimum']}"
        )
        rows.append(row)
    return rows


def test_bench_solver_certification(benchmark, save_table, save_json):
    ns = _ns_from_env()
    result = benchmark.pedantic(
        experiment_solver_certification,
        args=(ns,),
        kwargs={"shard_threshold": SHARD_THRESHOLD, **_dispatch_from_env()},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    table = result.render()
    save_table("E10_solver", table)

    # Kernel ablation on the largest even ring size in the sweep — the
    # even sizes are the ones whose bound gap forces a real exhaustion
    # proof, so they are where the vectorized kernel's throughput shows.
    ablation_n = max((n for n in ns if n % 2 == 0), default=max(ns))
    ablation = _kernel_ablation(ablation_n)
    assert len({row["nodes"] for row in ablation}) == 1, (
        "kernels disagree on node count — byte-identity is broken: "
        f"{ablation}"
    )

    # Backend ablation: the same optima certified twice over the shared
    # small-even rings — B&B exhaustion vs SAT walk — comparing each
    # tier's native effort metric (nodes vs conflicts/decisions).
    backend_ns = tuple(n for n in ns if n in (6, 7, 8))
    backend_rows = _backend_ablation(backend_ns) if backend_ns else []

    save_json(
        "E10_solver",
        {
            "experiment": "E10",
            "title": "exact solver certification of rho(n)",
            "n8_node_ceiling": N8_NODE_CEILING,
            "rows": result.rows,
            "kernel_ablation": ablation,
            "backend_ablation": backend_rows,
        },
        mirror="BENCH_solver.json",
    )
    print("\n" + table)
    for row in ablation:
        print(
            f"kernel={row['kernel']:<7} n={row['n']} nodes={row['nodes']} "
            f"seconds={row['seconds']:.4f} nodes/s={row['nodes_per_sec']:,.0f} "
            f"speedup={row['speedup_vs_python']:.2f}x"
        )
    for row in backend_rows:
        print(
            f"backend-ablation n={row['n']} optimum={row['exact_optimum']} "
            f"exact={row['exact_seconds']:.3f}s/{row['exact_nodes']} nodes "
            f"sat[{row['engine']}]={row['sat_seconds']:.3f}s/"
            f"{row['sat_conflicts']} conflicts/{row['sat_decisions']} decisions"
        )

    for row in result.rows:
        assert row["match"], f"solver disagrees with ρ({row['n']})"
        assert row["proven"], f"ρ({row['n']}) not proven optimal"
        if row["n"] == 8:
            assert row["nodes"] <= N8_NODE_CEILING, (
                f"n=8 node-count regression: {row['nodes']} > {N8_NODE_CEILING}"
            )
