"""E10 — exact certification of ρ(n) at small n.

The branch-and-bound solver knows neither the formulas nor the
constructions (it gets no upper-bound hints); its optimum matching
ρ(n) for every n it can exhaust is the reproduction's independent
check of the theorems' *lower* bounds.

Runs through the declarative :mod:`repro.api` layer (one ``CoverSpec``
per ring size, the exact backends pinned, hints off — see
:func:`repro.analysis.experiments.experiment_solver_certification`).
The sweep reaches n = 11 since the canonical-mask
transposition memo, the packing bound, and improver-seeded incumbents
landed: n = 9 and n = 11 certify from the root (the counting bound is
tight for odd n), and the even sizes — whose bound gap forces a real
exhaustion proof — run orders of magnitude below the seed solver
(n = 8: 85,650 → ~3.5k nodes).  Ring sizes ≥ ``SHARD_THRESHOLD``
exercise the root-orbit-sharded scale-out path.

Results are written three ways: the rendered table
(``results/E10_solver.txt``), machine-readable rows
(``results/E10_solver.json``), and the repo-top-level
``BENCH_solver.json`` that CI uploads as an artifact and guards with
the pinned ``N8_NODE_CEILING`` (the seed's 85,650-node n = 8 anomaly
must stay ≥ 10× beaten).

``REPRO_BENCH_NS`` (comma-separated ring sizes) restricts the sweep —
CI's smoke job sets ``4,5,6,7,8``.  The sweep itself goes through
``api.solve_batch``'s dispatcher (``repro.dispatch``);
``REPRO_BENCH_TRANSPORT`` (``inproc``/``subprocess``/``spool``) and
``REPRO_BENCH_DISPATCH_WORKERS`` select the transport and fleet size —
the default single-worker in-process transport keeps per-n timings
exact.
"""

from __future__ import annotations

import os

from repro.analysis.experiments import experiment_solver_certification
from repro.core.engine import N8_NODE_CEILING

NS = (4, 5, 6, 7, 8, 9, 10, 11)
SHARD_THRESHOLD = 11


def _ns_from_env() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_NS")
    if not raw:
        return NS
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _dispatch_from_env() -> dict:
    kwargs: dict = {}
    transport = os.environ.get("REPRO_BENCH_TRANSPORT")
    if transport:
        kwargs["transport"] = transport
    raw_workers = os.environ.get("REPRO_BENCH_DISPATCH_WORKERS")
    if raw_workers:
        kwargs["dispatch_workers"] = int(raw_workers)
    return kwargs


def test_bench_solver_certification(benchmark, save_table, save_json):
    ns = _ns_from_env()
    result = benchmark.pedantic(
        experiment_solver_certification,
        args=(ns,),
        kwargs={"shard_threshold": SHARD_THRESHOLD, **_dispatch_from_env()},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    table = result.render()
    save_table("E10_solver", table)
    save_json(
        "E10_solver",
        {
            "experiment": "E10",
            "title": "exact solver certification of rho(n)",
            "n8_node_ceiling": N8_NODE_CEILING,
            "rows": result.rows,
        },
        mirror="BENCH_solver.json",
    )
    print("\n" + table)

    for row in result.rows:
        assert row["match"], f"solver disagrees with ρ({row['n']})"
        assert row["proven"], f"ρ({row['n']}) not proven optimal"
        if row["n"] == 8:
            assert row["nodes"] <= N8_NODE_CEILING, (
                f"n=8 node-count regression: {row['nodes']} > {N8_NODE_CEILING}"
            )
