"""E2 — regenerate Theorem 2's table: ρ(n), mixes and excess for even n.

Paper row (Theorem 2): ρ(2p) = ⌈(p²+1)/2⌉ for p ≥ 3; n = 4q uses
4 C3 + (2q²−3) C4, n = 4q+2 uses 2 C3 + (2q²+2q−1) C4.  Both residues
are swept; excess must equal p exactly (n ≥ 6).
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_theorem2

EVEN_NS = (4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 26, 30)


def test_bench_theorem2(benchmark, save_table):
    result = benchmark(experiment_theorem2, EVEN_NS)
    table = result.render()
    save_table("E2_theorem2", table)
    print("\n" + table)

    for row in result.rows:
        assert row["valid"] and row["optimal"]
        assert row["rho_formula"] == row["constructed"] == row["lower_bound"]
        assert row["c3_formula"] == row["c3_measured"]
        assert row["c4_formula"] == row["c4_measured"]
        assert row["excess_formula"] == row["excess_measured"]
