"""E5 — the price of routability: ρ(n) vs unconstrained cycle covers.

The paper cites the triangle covering number ⌈n/3⌈(n−1)/2⌉⌉ ([6, 7]);
the like-for-like comparison uses cycles of length ≤ 4 without the DRC.
Expected shape: the DRC costs a non-negative, growing number of cycles.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_nondrc_baseline

NS = (5, 7, 9, 11, 13, 15, 17, 19)


def test_bench_nondrc_baseline(benchmark, save_table):
    result = benchmark(experiment_nondrc_baseline, NS)
    table = result.render()
    save_table("E5_baselines", table)
    print("\n" + table)

    prices = []
    for row in result.rows:
        assert row["greedy3"] >= row["formula"]   # formula is a true optimum
        assert row["greedy4"] >= row["lb4"]
        assert row["price"] >= 0                  # DRC never helps
        prices.append(row["price"])
    # The routability price grows with n (paper shape: DRC coverings pay
    # Θ(n) over the unconstrained bound).
    assert prices[-1] > prices[0]
