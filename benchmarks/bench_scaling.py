"""E7 — scalability of construction + verification (HPC angle).

No counterpart table in the 2-page note; this benchmark documents that
the reproduction's constructions are output-linear: the odd ladder and
the even clean-insertion run in O(n²) (the output has Θ(n²) cycles),
and verification is O(n²·k).  pytest-benchmark records the timing
series; the assertions pin the asymptotic *shape* (quadratic-ish, not
exponential).
"""

from __future__ import annotations

import time

from repro.core.construction import fast_covering
from repro.core.formulas import rho
from repro.core.ladder import ladder_decomposition
from repro.core.verify import verify_covering
from repro.util.tables import Table

ODD_NS = (21, 41, 61, 81, 101, 151, 201)


def _scaling_run() -> list[dict]:
    rows = []
    for n in ODD_NS:
        t0 = time.perf_counter()
        cov = ladder_decomposition(n)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        report = verify_covering(cov)
        t_verify = time.perf_counter() - t0
        rows.append(
            {"n": n, "blocks": cov.num_blocks, "build_s": t_build,
             "verify_s": t_verify, "valid": report.valid}
        )
    return rows


def test_bench_construction_scaling(benchmark, save_table):
    rows = benchmark.pedantic(_scaling_run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(
        "E7 — construction/verification scaling (odd ladder)",
        ["n", "blocks", "build (s)", "verify (s)", "µs/block"],
    )
    for row in rows:
        table.add_row(
            row["n"], row["blocks"], round(row["build_s"], 4),
            round(row["verify_s"], 4),
            round(1e6 * row["build_s"] / row["blocks"], 1),
        )
    text = table.render()
    save_table("E7_scaling", text)
    print("\n" + text)

    assert all(r["valid"] for r in rows)
    assert all(r["blocks"] == rho(r["n"]) for r in rows)
    # Output-linear shape: time per produced block stays within a small
    # constant factor across a 10× size range (guards super-quadratic
    # regressions without asserting absolute wall-clock).
    per_block = [r["build_s"] / r["blocks"] for r in rows]
    assert per_block[-1] < 50 * max(per_block[0], 1e-7)


def test_bench_fast_even_large(benchmark, save_table):
    """The polynomial fallback handles very large even rings."""

    def run():
        out = []
        for n in (100, 150, 200):
            cov = fast_covering(n)
            out.append((n, cov.num_blocks, rho(n), cov.covers()))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(
        "E7b — polynomial fallback on large even rings",
        ["n", "blocks", "ρ(n)", "gap", "covers"],
    )
    for n, blocks, opt, covers in rows:
        table.add_row(n, blocks, opt, blocks - opt, covers)
    text = table.render()
    save_table("E7b_fast_even", text)
    print("\n" + text)

    for n, blocks, opt, covers in rows:
        assert covers
        assert 0 <= blocks - opt <= n // 4 + 1
