"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import pytest

from repro.core.construction import optimal_covering
from repro.wdm.design import design_ring_network


@pytest.fixture(scope="session")
def covering9():
    """Theorem 1 covering of K_9 (exact decomposition, 10 blocks)."""
    return optimal_covering(9)


@pytest.fixture(scope="session")
def covering10():
    """Theorem 2 covering of K_10 (13 blocks, excess 5)."""
    return optimal_covering(10)


@pytest.fixture(scope="session")
def design11():
    """Complete WDM design for an 11-node ring."""
    return design_ring_network(11)


@pytest.fixture(scope="session")
def design8():
    """Complete WDM design for an 8-node ring (even case)."""
    return design_ring_network(8)
