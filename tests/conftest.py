"""Shared fixtures for the repro test-suite, plus hypothesis profiles.

``HYPOTHESIS_PROFILE=ci`` selects the fixed-seed profile CI runs the
differential suite under (``derandomize=True`` makes every run explore
the same examples, so a CI failure reproduces locally byte-for-byte);
``thorough`` is the long-haul profile for local bug hunts.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.construction import optimal_covering
from repro.core.kernel import KERNEL_ENV, numpy_available
from repro.wdm.design import design_ring_network

settings.register_profile(
    "ci",
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=300, deadline=None)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture(params=["python", "numpy"])
def kernel(request, monkeypatch):
    """Parametrize a test over both search kernels via ``REPRO_KERNEL``
    (the numpy leg skips cleanly when numpy is not installed, which is
    exactly the fallback environment the no-numpy CI job runs)."""
    name = request.param
    if name == "numpy" and not numpy_available():
        pytest.skip("numpy not installed — python kernel is the fallback")
    monkeypatch.setenv(KERNEL_ENV, name)
    return name


@pytest.fixture(scope="session")
def covering9():
    """Theorem 1 covering of K_9 (exact decomposition, 10 blocks)."""
    return optimal_covering(9)


@pytest.fixture(scope="session")
def covering10():
    """Theorem 2 covering of K_10 (13 blocks, excess 5)."""
    return optimal_covering(10)


@pytest.fixture(scope="session")
def design11():
    """Complete WDM design for an 11-node ring."""
    return design_ring_network(11)


@pytest.fixture(scope="session")
def design8():
    """Complete WDM design for an 8-node ring (even case)."""
    return design_ring_network(8)
