"""Tests for arcs, ring routings and the capacity ledger."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.capacity import LinkLoadLedger
from repro.rings.routing import Arc, RingRouting, arcs_edge_disjoint, route_request_shortest
from repro.util.errors import CapacityError, RoutingError


class TestArc:
    def test_links_and_length(self):
        arc = Arc(8, 6, 1)
        assert arc.length == 3
        assert list(arc.links()) == [6, 7, 0]
        assert arc.nodes() == [6, 7, 0, 1]

    def test_request_normalised(self):
        assert Arc(8, 6, 1).request == (1, 6)

    def test_uses_link(self):
        arc = Arc(8, 6, 1)
        assert arc.uses_link(7) and arc.uses_link(0)
        assert not arc.uses_link(1) and not arc.uses_link(5)

    def test_reversed_complements(self):
        arc = Arc(9, 2, 6)
        rev = arc.reversed_arc()
        assert arc.length + rev.length == 9
        assert set(arc.links()) | set(rev.links()) == set(range(9))
        assert not set(arc.links()) & set(rev.links())

    def test_shortest(self):
        assert route_request_shortest(10, 0, 3).length == 3
        assert route_request_shortest(10, 0, 8).length == 2
        assert Arc(10, 0, 5).is_shortest()
        assert not Arc(10, 0, 7).is_shortest()

    def test_degenerate(self):
        with pytest.raises(RoutingError):
            Arc(5, 2, 2)

    @given(st.integers(3, 40), st.data())
    @settings(max_examples=150)
    def test_link_set_size_is_length(self, n, data):
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        if a == b:
            return
        arc = Arc(n, a, b)
        assert len(arc.link_set) == arc.length


class TestRingRouting:
    def test_valid_routing(self):
        arcs = {(0, 2): Arc(6, 0, 2), (2, 4): Arc(6, 2, 4), (0, 4): Arc(6, 4, 0)}
        routing = RingRouting(6, arcs)
        assert routing.uses_all_links()
        assert routing.total_length == 6
        assert len(routing) == 3

    def test_conflict_detected(self):
        with pytest.raises(RoutingError, match="edge-disjoint"):
            RingRouting(6, {(0, 2): Arc(6, 0, 2), (1, 3): Arc(6, 1, 3)})

    def test_wrong_ring(self):
        with pytest.raises(RoutingError):
            RingRouting(6, {(0, 2): Arc(7, 0, 2)})

    def test_arc_request_mismatch(self):
        with pytest.raises(RoutingError):
            RingRouting(6, {(0, 3): Arc(6, 0, 2)})

    def test_arc_for_missing(self):
        routing = RingRouting(6, {(0, 2): Arc(6, 0, 2)})
        with pytest.raises(RoutingError):
            routing.arc_for((1, 3))

    def test_arcs_edge_disjoint_helper(self):
        assert arcs_edge_disjoint([Arc(6, 0, 2), Arc(6, 2, 4)])
        assert not arcs_edge_disjoint([Arc(6, 0, 3), Arc(6, 2, 4)])


class TestLedger:
    def test_charge_and_saturate(self):
        ledger = LinkLoadLedger(5)
        ledger.charge(Arc(5, 0, 3))
        ledger.charge(Arc(5, 3, 0))
        assert ledger.is_saturated()
        assert ledger.max_load == 1
        assert ledger.total_load == 5

    def test_oversubscription(self):
        ledger = LinkLoadLedger(5)
        ledger.charge(Arc(5, 0, 3))
        with pytest.raises(CapacityError):
            ledger.charge(Arc(5, 2, 4))

    def test_capacity_two(self):
        ledger = LinkLoadLedger(5, capacity=2)
        ledger.charge(Arc(5, 0, 3))
        ledger.charge(Arc(5, 0, 3))
        assert ledger.load(1) == 2
        with pytest.raises(CapacityError):
            ledger.charge(Arc(5, 0, 1))

    def test_release(self):
        ledger = LinkLoadLedger(6)
        arc = Arc(6, 1, 4)
        ledger.charge(arc)
        ledger.release(arc)
        assert ledger.total_load == 0
        with pytest.raises(CapacityError):
            ledger.release(arc)

    def test_charge_all_and_reset(self):
        ledger = LinkLoadLedger(6)
        ledger.charge_all([Arc(6, 0, 3), Arc(6, 3, 0)])
        assert ledger.is_saturated()
        ledger.reset()
        assert ledger.total_load == 0

    def test_validation(self):
        with pytest.raises(CapacityError):
            LinkLoadLedger(2)
        with pytest.raises(CapacityError):
            LinkLoadLedger(5, capacity=0)
        with pytest.raises(CapacityError):
            LinkLoadLedger(5).charge(Arc(6, 0, 3))
