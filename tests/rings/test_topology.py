"""Tests for physical topologies."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.rings.topology import PhysicalNetwork, RingLink, RingNetwork
from repro.util.errors import TopologyError


class TestRingLink:
    def test_endpoints_wrap(self):
        assert RingLink(6, 5).endpoints == (5, 0)
        assert RingLink(6, 2).endpoints == (2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RingLink(6, 6)


class TestRingNetwork:
    def test_structure(self):
        net = RingNetwork(8)
        assert net.num_links == 8
        assert len(list(net.links())) == 8
        assert net.neighbors(0) == (7, 1)
        assert net.neighbors(7) == (6, 0)

    def test_too_small(self):
        with pytest.raises(TopologyError):
            RingNetwork(2)

    def test_link_between(self):
        net = RingNetwork(6)
        assert net.link_between(2, 3).index == 2
        assert net.link_between(3, 2).index == 2
        assert net.link_between(5, 0).index == 5
        with pytest.raises(TopologyError):
            net.link_between(0, 3)

    def test_failure_state(self):
        net = RingNetwork(5)
        assert net.is_link_up(3)
        net.fail_link(3)
        assert not net.is_link_up(3)
        assert net.failed_links == {3}
        net.repair_link(3)
        assert net.is_link_up(3)
        net.fail_link(1)
        net.fail_link(2)
        net.repair_all()
        assert net.failed_links == frozenset()

    def test_as_graph(self):
        g = RingNetwork(7, link_capacity=3).as_graph()
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 7
        assert g.edges[0, 1]["capacity"] == 3

    def test_link_modular(self):
        assert RingNetwork(6).link(7).index == 1


class TestPhysicalNetwork:
    def test_ring_detection(self):
        net = PhysicalNetwork(nx.cycle_graph(6), name="c6")
        assert net.is_ring()
        assert sorted(net.ring_order()) == list(range(6))
        assert net.is_two_edge_connected()

    def test_non_ring(self):
        net = PhysicalNetwork(nx.path_graph(5))
        assert not net.is_ring()
        assert not net.is_two_edge_connected()  # bridges everywhere
        with pytest.raises(TopologyError):
            net.ring_order()

    def test_two_edge_connected_grid(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        assert PhysicalNetwork(g).is_two_edge_connected()

    def test_rejects_empty_and_loops(self):
        with pytest.raises(TopologyError):
            PhysicalNetwork(nx.Graph())
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(TopologyError):
            PhysicalNetwork(g)

    def test_counts(self):
        net = PhysicalNetwork(nx.cycle_graph(5))
        assert net.num_nodes == 5
        assert net.num_links == 5
        assert sorted(net.nodes()) == list(range(5))
