"""Failure-injection tests: every way a covering can silently go wrong
must be caught by the independent verifier.

This is mutation testing of the *checker*, not the constructions: we
take known-good coverings, break them in targeted ways, and assert the
verifier reports exactly the right failure class.  A verifier that
misses any of these would make every other green test meaningless.
"""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.construction import optimal_covering
from repro.core.covering import Covering
from repro.core.formulas import rho
from repro.core.transforms import relabel_covering
from repro.core.verify import verify_covering


@pytest.fixture(scope="module")
def good9():
    return optimal_covering(9)


@pytest.fixture(scope="module")
def good10():
    return optimal_covering(10)


class TestCoverageMutations:
    def test_dropped_block_detected(self, good9):
        mutated = good9.without_block(0)
        report = verify_covering(mutated)
        assert not report.valid and not report.coverage_ok
        assert report.drc_ok  # the remaining blocks are still routable

    def test_dropped_block_even_case(self, good10):
        # Even coverings have excess; dropping a block may or may not
        # break coverage — the verifier must recount, not assume.
        for idx in range(good10.num_blocks):
            mutated = good10.without_block(idx)
            report = verify_covering(mutated)
            # ρ(10) is the proven minimum, so 12 blocks can never cover.
            assert not report.valid

    def test_duplicated_block_is_still_valid_but_not_optimal(self, good9):
        mutated = good9.with_blocks([good9.blocks[0]])
        report = verify_covering(mutated)
        assert report.valid  # covering-wise fine
        assert not verify_covering(mutated, expect_optimal=True).valid

    def test_swapped_vertex_detected(self, good9):
        # Replace one block with a same-size block elsewhere: some request
        # loses its only cover (odd coverings are exact).
        blk = good9.blocks[3]
        replacement = CycleBlock(tuple((v + 1) % 9 for v in blk.vertices))
        mutated = good9.replace_block(3, replacement)
        report = verify_covering(mutated)
        assert not report.coverage_ok


class TestDrcMutations:
    def test_scrambled_block_order_detected(self, good10):
        # Reorder one quad's vertices into a non-circular order.
        idx = next(i for i, b in enumerate(good10.blocks) if b.size == 4)
        a, b, c, d = good10.blocks[idx].vertices
        mutated = good10.replace_block(idx, CycleBlock((a, c, b, d)))
        report = verify_covering(mutated)
        assert not report.drc_ok
        assert any("edge-disjoint" in p for p in report.problems)

    def test_nonconvex_added_block_detected(self):
        base = optimal_covering(6)
        mutated = base.with_blocks([CycleBlock((0, 3, 1, 4))])
        report = verify_covering(mutated)
        assert not report.drc_ok

    def test_non_bijective_relabel_detected(self, good9):
        # A lossy "relabelling" merges vertices — blocks may survive
        # construction but coverage must break.
        with pytest.raises(Exception):
            # Many blocks collapse to repeated-vertex cycles → invalid.
            relabel_covering(good9, lambda v: min(v, 7))


class TestOptimalityClaims:
    def test_below_lower_bound_flagged_impossible(self):
        # A covering claiming fewer than ρ(n) blocks cannot be valid;
        # the verifier cross-checks against the certificate.
        tiny = Covering(9, tuple(optimal_covering(9).blocks[: rho(9) - 2]))
        report = verify_covering(tiny)
        assert not report.valid

    def test_fast_even_not_reported_optimal(self):
        from repro.core.construction import fast_covering

        cov = fast_covering(10)
        report = verify_covering(cov)
        assert report.valid
        assert report.optimal is False

    def test_mix_mutation_detected(self, good10):
        # Swap a triangle for a quad covering the same requests plus one:
        # count stays, mix changes — the theorem-mix check must notice.
        idx = next(i for i, b in enumerate(good10.blocks) if b.size == 3)
        tri = good10.blocks[idx]
        vs = sorted(tri.vertices)
        extra = next(v for v in range(10) if v not in vs)
        quad = CycleBlock(tuple(sorted(vs + [extra])))
        mutated = good10.replace_block(idx, quad)
        if verify_covering(mutated).valid:  # still covers — mix differs
            assert not verify_covering(mutated, expect_theorem_mix=True).valid
