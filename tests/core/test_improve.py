"""Tests for the local-search improver (:mod:`repro.core.improve`).

The improver's contract: never return a larger covering, never break
feasibility, stay deterministic, and do all its bookkeeping through the
O(block) ledger deltas (so a final recount must agree).  The padded
coverings below (optimum + junk) are where the eject/merge moves must
fire; the hypothesis chains check the contract on arbitrary feasible
starting points.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.baselines.greedy import greedy_drc_covering
from repro.core.construction import optimal_covering
from repro.core.covering import Covering
from repro.core.engine import SolverEngine, enumerate_convex_blocks
from repro.core.formulas import rho
from repro.core.improve import ImproveStats, improve_covering, improved_greedy_covering
from repro.core.ledger import CoverageLedger
from repro.traffic.instances import Instance, all_to_all
from repro.util.errors import SolverError


def _assert_ledger_consistent(cov: Covering) -> None:
    recount = CoverageLedger.from_blocks(cov.blocks)
    assert cov.coverage == recount.counts
    assert cov.total_slots == recount.total_slots


class TestImproveCovering:
    @pytest.mark.parametrize("n", (6, 8, 9, 11))
    def test_never_larger_and_stays_feasible(self, n):
        start = SolverEngine(n).greedy_cover()
        out = improve_covering(start)
        assert out.num_blocks <= start.num_blocks
        assert out.covers() and out.is_drc_feasible()
        _assert_ledger_consistent(out)

    @pytest.mark.parametrize("n", (6, 8, 10))
    def test_strips_padded_covering(self, n):
        # Optimal covering plus junk duplicates: the eject pass must
        # remove every redundant block and land back at the optimum.
        base = optimal_covering(n)
        padded = base.with_blocks(base.blocks[:3])
        st = ImproveStats()
        out = improve_covering(padded, stats=st)
        assert out.num_blocks == base.num_blocks
        assert out.covers()
        assert st.ejects >= 3
        assert st.start_blocks == padded.num_blocks
        assert st.end_blocks == out.num_blocks

    def test_deterministic(self):
        a = improve_covering(SolverEngine(9).greedy_cover())
        b = improve_covering(SolverEngine(9).greedy_cover())
        assert a.blocks == b.blocks

    def test_merge_shared_edge_pair_stays_feasible(self):
        # Regression: chord (0, 2) is covered exactly twice — once by
        # each triangle — so it is binding for neither, yet a merge
        # removing both must not orphan it.  The quad (0, 1, 2, 3)
        # covers both triangles' *binding* edges, so a merge scanning
        # only binding edges would take it and lose (0, 2).
        inst = Instance(6, {(0, 1): 1, (1, 2): 1, (0, 2): 1, (2, 3): 1, (0, 3): 1})
        cov = Covering.from_vertex_lists(6, [(0, 1, 2), (0, 2, 3)])
        assert cov.covers(inst)
        out = improve_covering(cov, inst)
        assert out.covers(inst)
        assert out.num_blocks <= cov.num_blocks

    def test_merge_respects_multiplicity_demand(self):
        # Regression: chord (0, 1) demands two copies, supplied once by
        # each triangle.  A merge into one block can restore only one
        # copy, so the pair must be left alone.
        inst = Instance(6, {(0, 1): 2})
        cov = Covering.from_vertex_lists(6, [(0, 1, 2), (0, 1, 3)])
        assert cov.covers(inst)
        out = improve_covering(cov, inst)
        assert out.covers(inst)

    def test_infeasible_start_rejected(self):
        with pytest.raises(SolverError, match="feasible"):
            improve_covering(Covering(6, ()))

    def test_instance_mismatch_rejected(self):
        with pytest.raises(SolverError, match="order"):
            improve_covering(SolverEngine(6).greedy_cover(), all_to_all(7))

    def test_restricted_instance_respected(self):
        inst = Instance(7, {(0, 2): 1, (2, 4): 1, (0, 4): 1})
        start = Covering.from_vertex_lists(7, [(0, 1, 2), (2, 3, 4), (0, 4, 5)])
        assert start.covers(inst)
        out = improve_covering(start, inst)
        assert out.covers(inst)
        assert out.num_blocks == 1  # triangle (0, 2, 4) covers everything

    @given(
        n=hst.integers(min_value=5, max_value=8),
        picks=hst.lists(hst.integers(min_value=0, max_value=1_000), min_size=0, max_size=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_contract_on_arbitrary_feasible_starts(self, n, picks):
        pool = enumerate_convex_blocks(n)
        base = SolverEngine(n).greedy_cover()
        extra = tuple(pool[p % len(pool)] for p in picks)
        start = base.with_blocks(extra)
        out = improve_covering(start)
        assert out.covers() and out.is_drc_feasible()
        assert out.num_blocks <= start.num_blocks
        _assert_ledger_consistent(out)


class TestImprovedGreedy:
    @pytest.mark.parametrize("n", (8, 10, 13))
    def test_no_worse_than_greedy_baseline(self, n):
        greedy = greedy_drc_covering(n)
        improved = improved_greedy_covering(n)
        assert improved.num_blocks <= greedy.num_blocks
        assert improved.num_blocks >= rho(n)  # never beats the optimum
        assert improved.covers() and improved.is_drc_feasible()

    def test_large_n_tier_runs_on_tight_pool(self):
        # Past the convex-pool cutoff the improver must stay tractable.
        cov = improved_greedy_covering(16, max_rounds=1)
        assert cov.covers() and cov.is_drc_feasible()
        assert cov.num_blocks <= greedy_drc_covering(16).num_blocks

    def test_stats_reported(self):
        st = ImproveStats()
        improved_greedy_covering(10, stats=st)
        assert st.start_blocks >= st.end_blocks > 0


class TestLedgerHelpers:
    def test_binding_edges_and_redundancy(self):
        cov = Covering.from_vertex_lists(6, [(0, 1, 2), (0, 1, 2), (2, 3, 4)])
        # Block 0 is duplicated: removing one copy is safe for the
        # all-to-all demand on its own edges only where the twin covers.
        assert not cov.binding_edges(0)  # twin covers everything block 0 has
        assert cov.binding_edges(2) == ((2, 3), (3, 4), (2, 4))
        assert cov.is_redundant_block(0)
        assert not cov.is_redundant_block(2)

    def test_index_bounds(self):
        cov = Covering.from_vertex_lists(6, [(0, 1, 2)])
        with pytest.raises(IndexError):
            cov.binding_edges(1)
        with pytest.raises(IndexError):
            cov.is_redundant_block(-1)
