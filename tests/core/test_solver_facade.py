"""The :mod:`repro.core.solver` deprecation façade.

The façade's contract is not just *that* it warns but *where* the
warning points: ``stacklevel=2`` from inside each wrapper, so the
reported filename/line is the caller's own call site (this test file),
never the façade's internals.  A regression here silently turns every
deprecation notice into noise pointing at repro's own code.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import solver
from repro.core.engine import SolverStats
from repro.traffic.instances import Instance


def _single_warning(record: pytest.WarningsChecker) -> warnings.WarningMessage:
    deprecations = [w for w in record.list if w.category is DeprecationWarning]
    assert len(deprecations) == 1, [str(w.message) for w in record.list]
    return deprecations[0]


class TestFacadeWarns:
    def test_solve_min_covering_warns_at_caller(self):
        with pytest.warns(DeprecationWarning, match="solve_min_covering") as record:
            cov = solver.solve_min_covering(5)
        assert cov.num_blocks == 3
        w = _single_warning(record)
        # stacklevel=2: the warning is attributed to *this* file, at the
        # line of the call above — not to repro/core/solver.py.
        assert w.filename == __file__
        assert "repro.api" in str(w.message)

    def test_solve_min_covering_instance_warns_at_caller(self):
        inst = Instance(6, {(0, 2): 1, (1, 4): 1}, name="t")
        with pytest.warns(DeprecationWarning, match="solve_min_covering_instance") as record:
            cov = solver.solve_min_covering_instance(inst)
        assert cov.covers(inst)
        assert _single_warning(record).filename == __file__

    def test_exact_decomposition_warns_at_caller(self):
        stats = SolverStats()
        # Edges of the tight C5 triangle (0, 1, 3): gaps 1+2+2 = 5.
        edges = frozenset({(0, 1), (1, 3), (0, 3)})
        with pytest.warns(DeprecationWarning, match="exact_decomposition") as record:
            blocks = solver.exact_decomposition(5, edges, stats=stats)
        assert blocks is not None and len(blocks) == 1
        assert _single_warning(record).filename == __file__

    def test_solve_many_warns_at_caller(self):
        with pytest.warns(DeprecationWarning, match="solve_many") as record:
            results = solver.solve_many((5,))
        assert results[0][0].num_blocks == 3
        assert _single_warning(record).filename == __file__

    def test_silent_reexports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = solver.SolverEngine(5)
            assert engine.min_covering().num_blocks == 3
