"""Kernel-parity differential harness (:mod:`repro.core.kernel`).

The numpy kernel is only allowed to exist because of this file: a
vectorized rewrite of a *certifying* search is safe exactly when the
fast path is bit-for-bit the same proof.  The properties pinned here:

* python-vs-numpy kernels explore identical node sequences — equal
  ``SolverStats``, equal coverings — over hypothesis-generated
  ``CoverSpec``s (n, λ, random restricted demands, ``allowed_sizes``,
  both objectives), and the API envelopes are *byte*-identical;
* the numpy path satisfies the same pinned node ceilings as
  ``tests/core/test_engine.py`` (``NUMPY_NODE_CEILINGS`` mirrors
  ``ENGINE_NODE_CEILINGS`` — the counts are identical by contract, so
  the constants are too);
* node-limit raises are bit-exact across kernels: same ``st.nodes``
  (exactly ``limit + 1``), same in-flight best, byte-identical
  resumable checkpoint — bulk span accounting must clamp at the
  boundary, not overshoot;
* the vectorized ``Objective.node_bound_batch`` hooks agree
  elementwise with the scalar ``node_bound`` for both built-ins;
* kernel resolution: argument > ``REPRO_KERNEL`` > auto, unknown
  names raise, and an unavailable numpy falls back to the reference
  python kernel — which still certifies (the no-numpy CI job runs the
  whole engine suite in that state).

``HYPOTHESIS_PROFILE=ci`` derandomizes the fuzz (see
``tests/conftest.py``), so a CI parity failure replays locally
byte-for-byte.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

import repro.core.kernel as kernel_mod
from repro.api import CoverSpec, solve
from repro.core.engine import (
    N8_NODE_CEILING,
    SolverEngine,
    SolverStats,
    solve_many,
)
from repro.core.formulas import rho
from repro.core.objective import MinBlocksObjective, MinTotalSizeObjective
from repro.core.kernel import (
    KERNEL_ENV,
    KERNELS,
    NO_NUMPY_ENV,
    available_kernels,
    numpy_available,
    resolve_kernel,
)
from repro.util import circular
from repro.util.errors import SolverError, SolverPreempted

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy kernel not available"
)

# Mirrors ``tests/core/test_engine.py``'s ENGINE_NODE_CEILINGS: the
# numpy kernel must reproduce the reference node counts exactly, so it
# inherits the same pinned ceilings (n=8 is the shared ≥10× seed bar).
NUMPY_NODE_CEILINGS = {
    4: 16,
    5: 4,
    6: 64,
    7: 4,
    8: N8_NODE_CEILING,
    9: 4,
    10: 140_000,
    11: 600,
}


@contextmanager
def _kernel_env(name: str):
    """Pin ``REPRO_KERNEL`` for one API-level solve (hypothesis tests
    cannot take the function-scoped ``kernel`` fixture)."""
    old = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = old


def _solve_spec(spec: CoverSpec, kernel: str):
    with _kernel_env(kernel):
        return solve(spec, cache=None)


def _engine_run(kernel: str, n: int, **kwargs):
    stats = SolverStats()
    cov = SolverEngine(n, kernel=kernel).min_covering(stats=stats, **kwargs)
    return stats, cov


def _fingerprint(stats: SolverStats, cov) -> tuple:
    return (
        stats.nodes,
        stats.best_value,
        stats.proven_optimal,
        tuple(blk.vertices for blk in cov.blocks),
    )


# λ → largest ring the exact instance solver certifies fast enough for
# a property suite (same calibration as tests/test_differential.py).
_MAX_N = {1: 9, 2: 9, 3: 7}


def _uniform_specs() -> hst.SearchStrategy[CoverSpec]:
    return hst.sampled_from([1, 2, 3]).flatmap(
        lambda lam: hst.tuples(
            hst.integers(4, _MAX_N[lam]),
            hst.sampled_from(["min_blocks", "min_total_size"]),
        ).map(
            lambda t: CoverSpec.for_ring(
                t[0], lam=lam, backend="exact", objective=t[1], use_hints=False
            )
        )
    )


@hst.composite
def _restricted_specs(draw) -> CoverSpec:
    """Random restricted demand (subset of chords, multiplicities
    {1, 2}), random objective, sometimes size-restricted."""
    n = draw(hst.integers(5, 9))
    all_chords = sorted(
        {circular.chord(a, b) for a in range(n) for b in range(n) if a != b}
    )
    chords = draw(
        hst.lists(hst.sampled_from(all_chords), min_size=1, max_size=6, unique=True)
    )
    mults = draw(
        hst.lists(hst.integers(1, 2), min_size=len(chords), max_size=len(chords))
    )
    objective = draw(hst.sampled_from(["min_blocks", "min_total_size"]))
    allowed = draw(hst.sampled_from([None, (3, 4)]))
    payload = {
        "n": n,
        "demand": tuple((a, b, m) for (a, b), m in zip(chords, mults)),
        "backend": "exact",
        "objective": objective,
    }
    if allowed is not None:
        payload["allowed_sizes"] = allowed
    return CoverSpec(**payload)


class TestKernelResolution:
    def test_registry(self):
        assert KERNELS == ("python", "numpy")
        assert "python" in available_kernels()

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy")
        assert resolve_kernel("python") == "python"
        assert SolverEngine(6, kernel="python").kernel == "python"

    def test_environment_beats_auto(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        assert resolve_kernel() == "python"

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        expected = "numpy" if numpy_available() else "python"
        assert resolve_kernel() == expected
        assert resolve_kernel("auto") == expected

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SolverError, match="unknown kernel"):
            resolve_kernel("fortran")
        with pytest.raises(SolverError, match="unknown kernel"):
            SolverEngine(6, kernel="fortran")

    def test_numpy_request_falls_back_without_numpy(self, monkeypatch):
        """An explicit ``numpy`` request in a numpy-less environment
        silently lands on the reference kernel — and that fallback
        engine still certifies (what the no-numpy CI job pins at
        scale)."""
        monkeypatch.setattr(kernel_mod, "_numpy_module", None)
        assert not numpy_available()
        assert available_kernels() == ("python",)
        assert resolve_kernel("numpy") == "python"
        assert resolve_kernel("auto") == "python"
        engine = SolverEngine(6, kernel="numpy")
        assert engine.kernel == "python"
        assert engine.min_covering().num_blocks == rho(6)

    def test_no_numpy_env_forces_fallback(self, monkeypatch):
        """``REPRO_NO_NUMPY`` makes the probe report numpy as absent —
        the hook CI's kernel-fallback job uses to exercise the
        fallback without uninstalling numpy from the whole package."""
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert not numpy_available()
        assert available_kernels() == ("python",)
        assert resolve_kernel("numpy") == "python"
        monkeypatch.setenv(KERNEL_ENV, "numpy")
        engine = SolverEngine(6)
        assert engine.kernel == "python"
        assert engine.min_covering().num_blocks == rho(6)


@requires_numpy
class TestEnvelopeParity:
    """Byte-identical API envelopes and equal node counts, fuzzed."""

    @settings(max_examples=25, deadline=None)
    @given(spec=_uniform_specs())
    def test_uniform_specs_byte_identical(self, spec: CoverSpec):
        py = _solve_spec(spec, "python")
        np_ = _solve_spec(spec, "numpy")
        assert py.stats.nodes == np_.stats.nodes
        assert py.to_json() == np_.to_json()

    @settings(max_examples=25, deadline=None)
    @given(spec=_restricted_specs())
    def test_restricted_specs_byte_identical(self, spec: CoverSpec):
        py = _solve_spec(spec, "python")
        np_ = _solve_spec(spec, "numpy")
        assert py.stats.nodes == np_.stats.nodes
        assert py.to_json() == np_.to_json()

    def test_sharded_backend_byte_identical(self):
        spec = CoverSpec.for_ring(
            8, backend="exact_sharded", use_hints=False, workers=2
        )
        py = _solve_spec(spec, "python")
        np_ = _solve_spec(spec, "numpy")
        assert py.stats.nodes == np_.stats.nodes
        assert py.to_json() == np_.to_json()


@requires_numpy
class TestEngineParity:
    """Engine-level twins: equal stats and coverings knob-by-knob."""

    @settings(max_examples=20, deadline=None)
    @given(
        n=hst.integers(4, 9),
        objective=hst.sampled_from(["min_blocks", "min_total_size"]),
        use_memo=hst.booleans(),
        branching=hst.sampled_from(["lex", "scarcest"]),
    )
    def test_knobbed_search_parity(self, n, objective, use_memo, branching):
        runs = {
            k: _engine_run(
                k, n, objective=objective, use_memo=use_memo, branching=branching
            )
            for k in ("python", "numpy")
        }
        assert _fingerprint(*runs["python"]) == _fingerprint(*runs["numpy"])

    def test_restricted_sizes_parity(self):
        for sizes in ((3, 4), (4,)):
            runs = {
                k: _engine_run(k, 8, allowed_sizes=sizes)
                for k in ("python", "numpy")
            }
            assert _fingerprint(*runs["python"]) == _fingerprint(*runs["numpy"])

    def test_solve_many_kernel_parity(self):
        py = solve_many(range(4, 9), kernel="python")
        np_ = solve_many(range(4, 9), kernel="numpy")
        assert [
            (st.nodes, tuple(blk.vertices for blk in cov.blocks))
            for cov, st in py
        ] == [
            (st.nodes, tuple(blk.vertices for blk in cov.blocks))
            for cov, st in np_
        ]

    @pytest.mark.parametrize("n", sorted(NUMPY_NODE_CEILINGS))
    def test_numpy_pinned_node_ceilings_and_count_equality(self, n):
        py_stats, py_cov = _engine_run("python", n)
        np_stats, np_cov = _engine_run("numpy", n)
        assert np_cov.num_blocks == rho(n)
        assert np_stats.nodes == py_stats.nodes
        assert np_stats.nodes <= NUMPY_NODE_CEILINGS[n], (
            f"n={n}: numpy-kernel node-count regression — "
            f"{np_stats.nodes} > {NUMPY_NODE_CEILINGS[n]}"
        )


@requires_numpy
class TestRaiseParity:
    """Interrupted searches: raises carry bit-identical state."""

    @settings(max_examples=20, deadline=None)
    @given(limit=hst.integers(32, 3400))
    def test_node_limit_raise_bit_identical(self, limit):
        states = {}
        for k in ("python", "numpy"):
            stats = SolverStats()
            with pytest.raises(SolverError) as exc:
                SolverEngine(8, kernel=k).min_covering(
                    stats=stats, node_limit=limit
                )
            err = exc.value
            states[k] = (
                stats.nodes,
                err.best_value,
                err.checkpoint.to_json(),
            )
        assert states["python"] == states["numpy"]
        assert states["python"][0] == limit + 1  # exact, not overshot

    def test_deadline_raise_resumes_to_identical_envelope(self):
        base_stats, base_cov = _engine_run("python", 8)
        for k1, k2 in (("python", "numpy"), ("numpy", "python")):
            stats = SolverStats()
            with pytest.raises(SolverPreempted) as exc:
                SolverEngine(8, kernel=k1).min_covering(stats=stats, deadline=0.0)
            cov = SolverEngine(8, kernel=k2).min_covering(
                stats=stats, checkpoint=exc.value.checkpoint
            )
            assert _fingerprint(stats, cov) == _fingerprint(base_stats, base_cov)


@requires_numpy
class TestObjectiveBatchHook:
    """``node_bound_batch`` must agree elementwise with ``node_bound``."""

    @settings(max_examples=50, deadline=None)
    @given(
        rows=hst.lists(
            hst.tuples(
                hst.integers(0, 400),  # frac_units
                hst.integers(0, 45),  # residual_requests
                hst.integers(0, 12),  # odd_vertices
            ),
            min_size=1,
            max_size=40,
        ),
        frac_denom=hst.integers(1, 6),
        max_cover=hst.integers(3, 4),
        min_cost=hst.integers(1, 4),
    )
    def test_builtins_match_scalar_hook(self, rows, frac_denom, max_cover, min_cost):
        import numpy as np

        frac_units = np.asarray([r[0] for r in rows], dtype=np.int64)
        resid = np.asarray([r[1] for r in rows], dtype=np.int64)
        odd = np.asarray([r[2] for r in rows], dtype=np.int64)
        for obj in (MinBlocksObjective(), MinTotalSizeObjective()):
            batch = obj.node_bound_batch(
                frac_units=frac_units,
                frac_denom=frac_denom,
                residual_requests=resid,
                max_cover=max_cover,
                min_cost=min_cost,
                odd_vertices=odd,
            )
            scalar = [
                obj.node_bound(
                    frac_units=int(w),
                    frac_denom=frac_denom,
                    residual_requests=int(r),
                    max_cover=max_cover,
                    min_cost=min_cost,
                    odd_vertices=int(o),
                )
                for w, r, o in rows
            ]
            assert [int(v) for v in batch] == scalar

    def test_scalar_zero_odd_matches_zero_array(self):
        import numpy as np

        obj = MinBlocksObjective()
        frac_units = np.arange(10, dtype=np.int64)
        resid = np.arange(10, dtype=np.int64)
        via_scalar = obj.node_bound_batch(
            frac_units=frac_units,
            frac_denom=3,
            residual_requests=resid,
            max_cover=4,
            min_cost=1,
            odd_vertices=0,
        )
        via_array = obj.node_bound_batch(
            frac_units=frac_units,
            frac_denom=3,
            residual_requests=resid,
            max_cover=4,
            min_cost=1,
            odd_vertices=np.zeros(10, dtype=np.int64),
        )
        assert [int(v) for v in via_scalar] == [int(v) for v in via_array]
