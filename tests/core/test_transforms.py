"""Tests for dihedral symmetry transforms of blocks and coverings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import CycleBlock
from repro.core.construction import optimal_covering
from repro.core.transforms import (
    canonical_covering_key,
    coverings_equivalent,
    dihedral_orbit,
    reflect_block,
    reflect_covering,
    rotate_block,
    rotate_covering,
)
from repro.core.verify import verify_covering


class TestBlockTransforms:
    def test_rotate(self):
        assert rotate_block(7, CycleBlock((0, 2, 5)), 3).vertices == (3, 5, 1)

    def test_reflect(self):
        assert reflect_block(7, CycleBlock((0, 2, 5)), 0) == CycleBlock((0, 5, 2))

    def test_rotation_preserves_convexity(self):
        blk = CycleBlock((0, 2, 5, 6))
        for shift in range(8):
            assert rotate_block(8, blk, shift).is_convex(8)

    def test_reflection_preserves_convexity(self):
        blk = CycleBlock((0, 2, 5, 6))
        for axis in range(8):
            assert reflect_block(8, blk, axis).is_convex(8)

    def test_nonconvex_stays_nonconvex(self):
        bad = CycleBlock((0, 2, 3, 1))
        for shift in range(4):
            assert not rotate_block(4, bad, shift).is_convex(4)


class TestCoveringTransforms:
    @pytest.mark.parametrize("n", (7, 10))
    def test_rotation_preserves_validity(self, n):
        cov = optimal_covering(n)
        for shift in (1, n // 2, n - 1):
            rotated = rotate_covering(cov, shift)
            assert verify_covering(rotated).valid
            assert rotated.num_blocks == cov.num_blocks
            assert rotated.excess() == cov.excess()

    @pytest.mark.parametrize("n", (7, 10))
    def test_reflection_preserves_validity(self, n):
        cov = optimal_covering(n)
        reflected = reflect_covering(cov, 2)
        assert verify_covering(reflected).valid
        assert reflected.size_histogram == cov.size_histogram

    def test_equivalence_exact(self):
        cov = optimal_covering(7)
        shuffled = cov.with_blocks(()).__class__(7, tuple(reversed(cov.blocks)))
        assert coverings_equivalent(cov, shuffled)

    def test_equivalence_up_to_symmetry(self):
        cov = optimal_covering(9)
        rotated = rotate_covering(cov, 4)
        assert not coverings_equivalent(cov, rotated)  # different as multisets
        assert coverings_equivalent(cov, rotated, up_to_symmetry=True)

    def test_inequivalent_coverings(self):
        a = optimal_covering(7)
        b = a.without_block(0).with_blocks([CycleBlock((0, 1, 2))])
        assert not coverings_equivalent(a, b, up_to_symmetry=True)

    def test_different_n_never_equivalent(self):
        assert not coverings_equivalent(optimal_covering(7), optimal_covering(9))

    def test_orbit_size(self):
        cov = optimal_covering(6)
        orbit = list(dihedral_orbit(cov))
        assert len(orbit) == 12  # 2n transforms

    def test_canonical_key_order_free(self):
        cov = optimal_covering(8)
        rev = cov.__class__(8, tuple(reversed(cov.blocks)))
        assert canonical_covering_key(cov) == canonical_covering_key(rev)


@given(st.integers(5, 13), st.data())
@settings(max_examples=40, deadline=None)
def test_random_rotations_preserve_everything(n, data):
    cov = optimal_covering(n)
    shift = data.draw(st.integers(0, n - 1))
    axis = data.draw(st.integers(0, n - 1))
    for image in (rotate_covering(cov, shift), reflect_covering(cov, axis)):
        assert image.covers()
        assert image.is_drc_feasible()
        assert image.size_histogram == cov.size_histogram
