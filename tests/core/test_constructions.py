"""Tests for the Theorem 1/2 constructions (ladder, pole, even, fast).

Every construction output is validated through the independent verifier,
and its count / mix / excess compared against the paper's statements.
"""

from __future__ import annotations

import pytest

from repro.core.construction import fast_covering, optimal_covering, optimality_gap
from repro.core.even import even_covering, merge_fragments, pole_fragments
from repro.core.formulas import optimal_excess, rho, theorem_cycle_mix
from repro.core.ladder import ladder_decomposition, ladder_step_blocks
from repro.core.pole import POLE, pole_decomposition, pole_forced_blocks
from repro.core.verify import assert_valid_covering
from repro.util.errors import ConstructionError

ODD_NS = (3, 5, 7, 9, 11, 13, 17, 23, 33, 51)
EVEN_NS = (4, 6, 8, 10, 12, 14, 16, 18, 22, 24, 30)


class TestLadder:
    @pytest.mark.parametrize("n", ODD_NS)
    def test_theorem1_reproduced(self, n):
        cov = ladder_decomposition(n)
        report = assert_valid_covering(
            cov, expect_optimal=True, expect_exact=True, expect_theorem_mix=True
        )
        assert report.num_blocks == rho(n)
        assert report.excess == 0

    def test_rejects_even(self):
        with pytest.raises(ValueError):
            ladder_decomposition(8)

    def test_rejects_too_small(self):
        with pytest.raises((ValueError, ConstructionError)):
            ladder_decomposition(1)

    def test_every_vertex_in_p_blocks(self):
        n = 11
        cov = ladder_decomposition(n)
        count = {v: 0 for v in range(n)}
        for blk in cov.blocks:
            for v in blk.vertices:
                count[v] += 1
        assert all(c == n // 2 for c in count.values())

    def test_all_blocks_tight(self):
        """Optimal exact decompositions are forced tight (each block's
        distance budget is exactly n)."""
        n = 13
        for blk in ladder_decomposition(n).blocks:
            assert blk.is_tight(n)

    def test_step_block_counts(self):
        assert ladder_step_blocks(1) == 2
        assert ladder_step_blocks(4) == 5
        with pytest.raises(ValueError):
            ladder_step_blocks(0)


class TestPole:
    @pytest.mark.parametrize("n_prime", (7, 11, 15, 19, 23))
    def test_pole_is_optimal_decomposition(self, n_prime):
        cov = pole_decomposition(n_prime)
        assert_valid_covering(
            cov, expect_optimal=True, expect_exact=True, expect_theorem_mix=True
        )

    @pytest.mark.parametrize("n_prime", (7, 11, 15))
    def test_pole_vertex_structure(self, n_prime):
        """The pole lies in exactly (p−1) triangles and one quad."""
        q = (n_prime - 3) // 4
        cov = pole_decomposition(n_prime)
        at_pole = [blk for blk in cov.blocks if POLE in blk.vertices]
        assert len(at_pole) == n_prime // 2
        sizes = sorted(blk.size for blk in at_pole)
        assert sizes == [3] * (2 * q) + [4]

    def test_forced_blocks_shape(self):
        forced = pole_forced_blocks(11, 6)
        assert len(forced) == 5
        assert sorted(b.size for b in forced) == [3, 3, 3, 3, 4]

    def test_rejects_wrong_residue(self):
        with pytest.raises(ConstructionError):
            pole_decomposition(9)
        with pytest.raises(ConstructionError):
            pole_decomposition(13)


class TestEven:
    @pytest.mark.parametrize("n", EVEN_NS)
    def test_theorem2_reproduced(self, n):
        cov = even_covering(n)
        expectations = dict(expect_optimal=True)
        if n >= 6:
            expectations["expect_theorem_mix"] = True
        report = assert_valid_covering(cov, **expectations)
        assert report.num_blocks == rho(n)
        assert report.excess == optimal_excess(n)

    def test_mix_matches_paper_exactly(self):
        for n in (6, 8, 10, 12, 16, 18):
            cov = even_covering(n)
            mix = theorem_cycle_mix(n)
            assert cov.num_triangles == mix[3]
            assert cov.num_quads == mix[4]
            assert cov.num_blocks == mix[3] + mix[4]

    def test_paper_k4_covering(self):
        cov = even_covering(4)
        assert cov.num_blocks == 3
        assert {blk.size for blk in cov.blocks} == {3, 4}
        assert cov.covers()

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            even_covering(9)

    def test_fragments_split(self):
        cov = pole_decomposition(11)
        survivors, singles, paths = pole_fragments(cov, POLE)
        assert len(survivors) + len(singles) + len(paths) == cov.num_blocks
        assert len(singles) == 4  # 2q triangles at the pole, q = 2
        assert len(paths) == 1
        assert all(len(p) == 3 for p in paths)

    def test_merge_fragments_nested(self):
        blk = merge_fragments(11, (3, 6), (2, 7))
        assert blk is not None
        assert set(blk.vertices) == {2, 3, 6, 7}

    def test_merge_fragments_crossing_impossible(self):
        assert merge_fragments(8, (0, 4), (2, 6)) is None


class TestDispatch:
    @pytest.mark.parametrize("n", ODD_NS + EVEN_NS)
    def test_optimal_covering_everywhere(self, n):
        cov = optimal_covering(n)
        assert cov.num_blocks == rho(n)
        assert optimality_gap(cov) == 0
        assert_valid_covering(cov, expect_optimal=True)

    @pytest.mark.parametrize("n", (3, 7, 15))
    def test_fast_equals_optimal_for_odd(self, n):
        assert fast_covering(n).num_blocks == rho(n)

    @pytest.mark.parametrize("n", (6, 8, 10, 14, 20, 50, 100))
    def test_fast_even_valid_with_bounded_gap(self, n):
        cov = fast_covering(n)
        assert_valid_covering(cov)
        p = n // 2
        gap = optimality_gap(cov)
        assert 0 <= gap <= (p - 1) // 2 + 1

    def test_rejects_tiny(self):
        with pytest.raises(ConstructionError):
            optimal_covering(2)
        with pytest.raises(ConstructionError):
            fast_covering(2)
