"""The Objective protocol, registry, and its threading through the
engine, bounds, improver, and verifier."""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.bounds import total_size_lower_bound
from repro.core.covering import Covering
from repro.core.engine import (
    SolverEngine,
    SolverStats,
    convex_block_table,
    dominated_candidates,
    restricted_block_table,
)
from repro.core.improve import improve_covering, improved_greedy_covering
from repro.core.objective import (
    MinBlocksObjective,
    MinTotalSizeObjective,
    Objective,
    _REGISTRY,
    available_objectives,
    get_objective,
    register_objective,
    resolve_objective,
)
from repro.core.verify import verify_covering
from repro.traffic.instances import Instance, all_to_all, lambda_all_to_all
from repro.util import circular
from repro.util.errors import SolverError

# The certified min_total_size optima for All-to-All C_n (n = 4 is the
# one case above the end-parity bound: two DRC quads cannot reach the
# diagonals, so 8 slots are unattainable and 3 triangles' 9 win).
MTS_OPTIMA = {4: 9, 5: 10, 6: 18, 7: 21, 8: 32}


class TestRegistry:
    def test_defaults_registered_in_order(self):
        assert available_objectives() == ("min_blocks", "min_total_size")

    def test_get_and_resolve(self):
        assert isinstance(get_objective("min_blocks"), MinBlocksObjective)
        assert isinstance(get_objective("min_total_size"), MinTotalSizeObjective)
        assert resolve_objective(None).name == "min_blocks"
        assert resolve_objective("min_total_size").name == "min_total_size"
        obj = MinTotalSizeObjective()
        assert resolve_objective(obj) is obj

    def test_unknown_objective_names_registered(self):
        with pytest.raises(SolverError, match="min_blocks, min_total_size"):
            get_objective("max_profit")

    def test_duplicate_registration_refused(self):
        with pytest.raises(SolverError, match="already registered"):
            register_objective(MinBlocksObjective())

    def test_custom_objective_end_to_end(self):
        """An out-of-tree objective registers and solves through the
        declarative API with no other change — the redesign's contract."""

        class SumSquaredSizes(Objective):
            name = "sum_sq_sizes"
            description = "sum of squared ring sizes (test-only)"

            def block_cost(self, block: CycleBlock) -> int:
                return block.size * block.size

            def node_bound(self, *, frac_units, frac_denom, residual_requests,
                           max_cover, min_cost, odd_vertices) -> int:
                # Each slot of a size-s block costs s ≥ 3 per request.
                return 3 * residual_requests

            def instance_certificate(self, instance):
                from repro.core.bounds import BoundArgument, LowerBoundCertificate

                total = 3 * sum(instance.demand.values())
                arg = BoundArgument("slot_cost", total, "3 per request")
                return LowerBoundCertificate(
                    n=instance.n, value=total, arguments=(arg,)
                )

        register_objective(SumSquaredSizes())
        try:
            from repro.api import CoverSpec, solve

            result = solve(
                CoverSpec.for_ring(5, objective="sum_sq_sizes", backend="exact"),
                cache=None,
            )
            assert result.status == "proven_optimal"
            value = sum(blk.size ** 2 for blk in result.covering.blocks)
            assert result.objective_value == value
            # n=5 admits an exact decomposition (10 slots); squaring
            # favours triangles: 2·C3 + 1·C4 → 9 + 9 + 16 = 34.
            assert result.objective_value == 34
        finally:
            del _REGISTRY["sum_sq_sizes"]


class TestTotalSizeBound:
    def test_all_to_all_values(self):
        assert total_size_lower_bound(all_to_all(7)).value == 21
        assert total_size_lower_bound(all_to_all(8)).value == 28 + 4

    @pytest.mark.parametrize("n", range(4, 13))
    def test_matches_literature_formula(self, n):
        expected = circular.n_chords(n) + (n // 2 if n % 2 == 0 else 0)
        assert total_size_lower_bound(all_to_all(n)).value == expected

    def test_lambda_fold_parity(self):
        # λ even keeps every degree even: no parity surplus.
        assert total_size_lower_bound(lambda_all_to_all(6, 2)).value == 30
        # λ odd on even n: degrees λ(n−1) odd → +n/2.
        assert total_size_lower_bound(lambda_all_to_all(6, 3)).value == 45 + 3

    def test_partial_demand_parity(self):
        # One chord: both endpoints odd → one surplus slot.
        inst = Instance(6, {(0, 2): 1}, name="t")
        cert = total_size_lower_bound(inst)
        assert cert.value == 2
        assert [a.name for a in cert.arguments] == ["slot_counting", "end_parity"]


class TestRestrictedTables:
    def test_filtering(self):
        full = convex_block_table(7, 4)
        tri = restricted_block_table(7, 4, (3,), "convex")
        assert {blk.size for blk in tri.blocks} == {3}
        assert len(tri.blocks) < len(full.blocks)
        assert tri is restricted_block_table(7, 4, (3,), "convex")  # memoized

    def test_restricted_fragments_strengthen(self):
        """Excluding the full-mass candidates makes chords' fractional
        weights heavier — the packing bound sees the restricted pool."""
        full = convex_block_table(8, 4)
        tri = restricted_block_table(8, 4, (3,), "convex")
        full_bound = -(-sum(full.chord_weights) // full.weight_denom)
        tri_bound = -(-sum(tri.chord_weights) // tri.weight_denom)
        assert tri_bound >= full_bound

    def test_cost_aware_dominance(self):
        # Unit costs: the superset {0,1,2} dominates {0,1}.
        masks = [0b011, 0b111]
        assert dominated_candidates(masks) == {0}
        # Weighted: the superset is more expensive — nothing dominated.
        assert dominated_candidates(masks, costs=[3, 4]) == set()
        # Equal masks, equal costs: the later index drops.
        assert dominated_candidates([0b11, 0b11], costs=[3, 3]) == {1}


class TestEngineObjective:
    @pytest.mark.parametrize("n", sorted(MTS_OPTIMA))
    def test_mts_certified_optima(self, n):
        st = SolverStats()
        cov = SolverEngine(n).min_covering(objective="min_total_size", stats=st)
        assert cov.total_slots == MTS_OPTIMA[n]
        assert st.best_value == MTS_OPTIMA[n]
        assert st.proven_optimal

    def test_mts_memo_keys_accumulate_cost(self):
        """Without the memo the proof still lands on the same value —
        the memo stores accumulated objective cost, not block count."""
        with_memo = SolverEngine(6).min_covering(objective="min_total_size")
        without = SolverEngine(6).min_covering(
            objective="min_total_size", use_memo=False
        )
        assert with_memo.total_slots == without.total_slots == 18

    @pytest.mark.parametrize("n", (5, 6, 7))
    def test_triangles_only_covers(self, n):
        cov = SolverEngine(n).min_covering(allowed_sizes=(3,))
        assert {blk.size for blk in cov.blocks} == {3}
        assert cov.covers()

    def test_infeasible_restriction_raises(self):
        with pytest.raises(SolverError, match="no candidate block of size"):
            SolverEngine(4).min_covering(allowed_sizes=(4,))

    def test_restricted_never_cheaper(self):
        free = SolverEngine(7).min_covering()
        tri = SolverEngine(7).min_covering(allowed_sizes=(3,))
        assert tri.num_blocks >= free.num_blocks

    def test_sharded_matches_serial_mts(self):
        serial = SolverEngine(8).min_covering(objective="min_total_size")
        sharded = SolverEngine(8).min_covering_sharded(
            workers=2, objective="min_total_size"
        )
        assert sharded.total_slots == serial.total_slots == 32

    def test_instance_solver_mts(self):
        inst = Instance(5, {(0, 1): 1, (0, 3): 2, (2, 3): 1}, name="t")
        cov = SolverEngine(5).min_covering_instance(inst, objective="min_total_size")
        assert cov.total_slots == 6  # two triangles; dominance must not eat them
        assert cov.covers(inst)

    def test_instance_solver_restricted(self):
        inst = Instance(6, {(0, 3): 1, (1, 4): 1}, name="diams")
        cov = SolverEngine(6).min_covering_instance(inst, allowed_sizes=(4,))
        assert {blk.size for blk in cov.blocks} == {4}
        assert cov.covers(inst)


class TestImproverObjective:
    def test_mts_key_accepts_slot_reductions(self):
        cov = improved_greedy_covering(8, objective="min_total_size")
        assert cov.covers()
        assert cov.total_slots >= MTS_OPTIMA[8]

    def test_restricted_improver_stays_admissible(self):
        cov = improved_greedy_covering(7, allowed_sizes=(3,))
        assert {blk.size for blk in cov.blocks} == {3}
        assert cov.covers()

    def test_improve_never_worsens_objective(self):
        start = SolverEngine(8).greedy_cover()
        obj = get_objective("min_total_size")
        out = improve_covering(start, objective="min_total_size")
        assert obj.covering_value(out) <= obj.covering_value(start)
        assert out.covers()


class TestVerifyObjective:
    def test_allowed_sizes_violation_detected(self):
        cov = SolverEngine(6).min_covering()
        assert any(blk.size == 4 for blk in cov.blocks)
        report = verify_covering(cov, allowed_sizes=(3,))
        assert not report.valid
        assert any("outside the allowed" in p for p in report.problems)

    def test_objective_value_reported(self):
        cov = SolverEngine(7).min_covering(objective="min_total_size")
        report = verify_covering(cov, objective="min_total_size")
        assert report.valid
        assert report.objective == "min_total_size"
        assert report.objective_value == 21
        assert report.objective_bound == 21

    def test_value_below_bound_rejected(self):
        """A fabricated under-covering is caught by the objective's own
        certificate (coverage fails too — both problems are named)."""
        cov = Covering(6, (CycleBlock((0, 1, 2)),))
        report = verify_covering(cov, objective="min_total_size")
        assert not report.valid
        assert report.objective_value == 3
        assert report.objective_value < report.objective_bound
