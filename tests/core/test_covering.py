"""Tests for the Covering container."""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.covering import Covering
from repro.traffic.instances import all_to_all, from_requests, lambda_all_to_all
from repro.util.errors import InvalidCoveringError


def k4_paper_covering() -> Covering:
    return Covering(4, (CycleBlock((0, 1, 2, 3)), CycleBlock((0, 1, 3)), CycleBlock((0, 2, 3))))


class TestShape:
    def test_len_iter(self):
        cov = k4_paper_covering()
        assert len(cov) == 3
        assert [b.size for b in cov] == [4, 3, 3]

    def test_histogram(self):
        assert k4_paper_covering().size_histogram == {3: 2, 4: 1}
        assert k4_paper_covering().num_triangles == 2
        assert k4_paper_covering().num_quads == 1

    def test_total_slots(self):
        assert k4_paper_covering().total_slots == 10

    def test_rejects_overflowing_block(self):
        with pytest.raises(InvalidCoveringError):
            Covering(4, (CycleBlock((0, 1, 5)),))

    def test_rejects_tiny_ring(self):
        with pytest.raises(InvalidCoveringError):
            Covering(2, ())


class TestCoverage:
    def test_coverage_counts(self):
        cov = k4_paper_covering()
        assert cov.multiplicity((0, 1)) == 2
        assert cov.multiplicity((0, 2)) == 1
        assert cov.multiplicity((2, 3)) == 2
        assert cov.multiplicity((0, 3)) == 3

    def test_covers_all_to_all(self):
        assert k4_paper_covering().covers()
        assert k4_paper_covering().uncovered() == []

    def test_excess(self):
        assert k4_paper_covering().excess() == 4

    def test_doubled_edges(self):
        doubled = k4_paper_covering().doubled_edges()
        assert (0, 3) in doubled and (0, 1) in doubled

    def test_partial_covering_detected(self):
        cov = Covering(4, (CycleBlock((0, 1, 2)),))
        assert not cov.covers()
        assert (0, 3) in cov.uncovered()

    def test_is_exact(self):
        tri = Covering(3, (CycleBlock((0, 1, 2)),))
        assert tri.is_exact()
        assert not k4_paper_covering().is_exact()

    def test_lambda_instance(self):
        cov = Covering(3, (CycleBlock((0, 1, 2)), CycleBlock((0, 1, 2))))
        assert cov.covers(lambda_all_to_all(3, 2))
        assert not cov.covers(lambda_all_to_all(3, 3))

    def test_sparse_instance(self):
        inst = from_requests(6, [(0, 3), (1, 2)])
        cov = Covering(6, (CycleBlock((0, 1, 2, 3)),))
        assert cov.covers(inst)
        assert cov.excess(inst) == 2  # {0,1} and {2,3} not demanded

    def test_instance_order_mismatch(self):
        with pytest.raises(InvalidCoveringError):
            k4_paper_covering().covers(all_to_all(5))


class TestDrcFlag:
    def test_paper_bad_covering_flagged(self):
        bad = Covering(4, (CycleBlock((0, 1, 2, 3)), CycleBlock((0, 2, 3, 1))))
        assert not bad.is_drc_feasible()
        assert len(bad.non_convex_blocks) == 1

    def test_good_covering_clean(self):
        assert k4_paper_covering().is_drc_feasible()


class TestAlgebra:
    def test_with_without(self):
        cov = k4_paper_covering()
        grown = cov.with_blocks([CycleBlock((0, 1, 2))])
        assert grown.num_blocks == 4
        shrunk = grown.without_block(3)
        assert shrunk.num_blocks == 3
        with pytest.raises(IndexError):
            cov.without_block(99)

    def test_replace(self):
        cov = k4_paper_covering()
        out = cov.replace_block(1, CycleBlock((1, 2, 3)))
        assert out.blocks[1] == CycleBlock((1, 2, 3))
        with pytest.raises(IndexError):
            cov.replace_block(-1, CycleBlock((1, 2, 3)))

    def test_deduplicated(self):
        cov = Covering(4, (CycleBlock((0, 1, 2)), CycleBlock((1, 2, 0))))
        assert cov.deduplicated().num_blocks == 1

    def test_serialisation_roundtrip(self):
        cov = k4_paper_covering()
        again = Covering.from_dict(cov.to_dict())
        assert again.n == cov.n
        assert list(again.blocks) == list(cov.blocks)

    def test_from_vertex_lists(self):
        cov = Covering.from_vertex_lists(5, [[0, 1, 2], [2, 3, 4, 0]])
        assert cov.num_blocks == 2

    def test_describe_mentions_mix(self):
        text = k4_paper_covering().describe()
        assert "2×C3" in text and "1×C4" in text and "DRC=ok" in text
