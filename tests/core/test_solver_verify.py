"""Tests for the exact solvers and the independent verifier."""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.covering import Covering
from repro.core.formulas import rho
from repro.core.ladder import ladder_decomposition
from repro.core.engine import (
    SolverStats,
    enumerate_convex_blocks,
    enumerate_tight_blocks,
    exact_decomposition,
    solve_min_covering,
)
from repro.core.verify import assert_valid_covering, routing_for_block, verify_covering
from repro.util import circular
from repro.util.errors import InvalidCoveringError, RoutingError, SolverError


class TestEnumeration:
    def test_tight_blocks_are_tight_and_unique(self):
        for n in (5, 8, 11):
            blocks = enumerate_tight_blocks(n)
            assert len({b.canonical for b in blocks}) == len(blocks)
            assert all(b.is_tight(n) for b in blocks)

    def test_convex_blocks_count(self):
        # One convex block per vertex subset of size 3 or 4.
        from math import comb

        for n in (5, 7):
            assert len(enumerate_convex_blocks(n)) == comb(n, 3) + comb(n, 4)

    def test_tight_subset_of_convex(self):
        n = 9
        convex = {b.canonical for b in enumerate_convex_blocks(n)}
        for b in enumerate_tight_blocks(n):
            assert b.canonical in convex

    def test_rejects_tiny(self):
        with pytest.raises(SolverError):
            enumerate_tight_blocks(2)


class TestExactDecomposition:
    def test_empty_edge_set(self):
        assert exact_decomposition(7, frozenset()) == []

    def test_k5_decomposition_found(self):
        edges = frozenset(circular.all_chords(5))
        blocks = exact_decomposition(5, edges)
        assert blocks is not None
        counts: dict[tuple[int, int], int] = {}
        for blk in blocks:
            for e in blk.edges():
                counts[e] = counts.get(e, 0) + 1
        assert all(c == 1 for c in counts.values())
        assert set(counts) == set(edges)

    def test_k4_has_no_exact_decomposition(self):
        # Odd degrees: K_4 cannot decompose into cycles.
        edges = frozenset(circular.all_chords(4))
        assert exact_decomposition(4, edges) is None

    def test_triangle_budget_respected(self):
        edges = frozenset(circular.all_chords(5))
        blocks = exact_decomposition(5, edges, max_triangles=2)
        assert blocks is not None
        assert sum(1 for b in blocks if b.size == 3) <= 2

    def test_infeasible_budget(self):
        # K_5 decomposition needs exactly 2 triangles (10 = 3a+4b ⇒ a=2).
        edges = frozenset(circular.all_chords(5))
        assert exact_decomposition(5, edges, max_triangles=0) is None


class TestMinCoveringSolver:
    @pytest.mark.parametrize("n", (4, 5, 6, 7))
    def test_certifies_rho(self, n):
        stats = SolverStats()
        cov = solve_min_covering(n, upper_bound=rho(n) + 1, stats=stats)
        assert cov.num_blocks == rho(n)
        assert cov.covers()
        assert cov.is_drc_feasible()
        assert stats.proven_optimal

    def test_no_better_than_formula(self):
        # The solver explores strictly below the formula and fails to
        # improve — the certification direction of the theorems.
        cov = solve_min_covering(6)
        assert cov.num_blocks == rho(6)

    def test_rejects_large_n(self):
        with pytest.raises(SolverError):
            solve_min_covering(20)

    def test_node_limit_enforced(self):
        with pytest.raises(SolverError):
            solve_min_covering(8, node_limit=3)


class TestVerifier:
    def test_routing_for_block_convex(self):
        routing = routing_for_block(9, (0, 3, 7))
        assert routing.uses_all_links()

    def test_routing_for_block_reflected(self):
        routing = routing_for_block(9, (7, 3, 0))
        assert routing.uses_all_links()

    def test_routing_for_block_nonconvex_raises(self):
        with pytest.raises(RoutingError):
            routing_for_block(6, (0, 3, 1, 4))

    def test_valid_covering_report(self, covering9):
        report = verify_covering(covering9, expect_optimal=True, expect_exact=True)
        assert report.valid and report.optimal
        assert report.lower_bound_value == rho(9)
        assert "VALID" in report.summary()

    def test_uncovered_detected(self):
        cov = Covering(5, (CycleBlock((0, 1, 2)),))
        report = verify_covering(cov)
        assert not report.valid and not report.coverage_ok
        assert any("uncovered" in p for p in report.problems)

    def test_non_drc_detected(self):
        cov = Covering(4, (CycleBlock((0, 2, 3, 1)), CycleBlock((0, 1, 2, 3)),
                           CycleBlock((0, 1, 3)), CycleBlock((0, 2, 3))))
        report = verify_covering(cov)
        assert not report.drc_ok
        assert any("edge-disjoint" in p for p in report.problems)

    def test_assert_raises_with_diagnosis(self):
        cov = Covering(5, (CycleBlock((0, 1, 2)),))
        with pytest.raises(InvalidCoveringError, match="uncovered"):
            assert_valid_covering(cov)

    def test_expect_optimal_mismatch(self, covering9):
        bigger = covering9.with_blocks([CycleBlock((0, 1, 2))])
        report = verify_covering(bigger, expect_optimal=True)
        assert not report.valid

    def test_expect_exact_mismatch(self, covering10):
        report = verify_covering(covering10, expect_exact=True)
        assert not report.valid  # even coverings have excess p

    def test_mix_expectation(self, covering10):
        report = verify_covering(covering10, expect_theorem_mix=True)
        assert report.valid

    def test_ladder_matches_solver_optimum(self):
        # Cross-validation: two independent optimal engines agree.
        assert ladder_decomposition(7).num_blocks == solve_min_covering(
            7, upper_bound=rho(7) + 1
        ).num_blocks
