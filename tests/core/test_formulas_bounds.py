"""Tests for the closed forms and the lower-bound certificates."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import instance_lower_bound, lower_bound
from repro.core.formulas import (
    counting_bound,
    cycle_cover_lower_bound,
    optimal_excess,
    rho,
    rho_lambda_lower_bound,
    theorem_cycle_mix,
    triangle_covering_number,
)
from repro.traffic.instances import all_to_all, from_requests, lambda_all_to_all
from repro.util import circular


class TestRho:
    def test_paper_values(self):
        # Theorem 1: n = 2p+1 → p(p+1)/2.
        assert rho(3) == 1
        assert rho(5) == 3
        assert rho(7) == 6
        assert rho(9) == 10
        assert rho(21) == 55
        # Theorem 2: n = 2p → ⌈(p²+1)/2⌉.
        assert rho(6) == 5
        assert rho(8) == 9
        assert rho(10) == 13
        assert rho(12) == 19
        # The paper's own K4 example needs 3 cycles.
        assert rho(4) == 3

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            rho(2)

    @given(st.integers(1, 300))
    def test_odd_closed_form(self, p):
        assert rho(2 * p + 1) == p * (p + 1) // 2

    @given(st.integers(2, 300))
    def test_even_closed_form(self, p):
        assert rho(2 * p) == (p * p + 1 + 1) // 2

    @given(st.integers(3, 400))
    def test_monotone(self, n):
        assert rho(n + 1) >= rho(n) - 1  # never drops by more than the parity wiggle
        assert rho(n + 2) > rho(n)


class TestMixAndExcess:
    def test_theorem1_mix(self):
        for p in range(1, 30):
            mix = theorem_cycle_mix(2 * p + 1)
            assert mix[3] == p
            assert mix[4] == p * (p - 1) // 2
            assert 3 * mix[3] + 4 * mix[4] == circular.n_chords(2 * p + 1)

    def test_theorem2_mix_0mod4(self):
        for q in range(2, 20):
            mix = theorem_cycle_mix(4 * q)
            assert mix == {3: 4, 4: 2 * q * q - 3}
            assert mix[3] + mix[4] == rho(4 * q)

    def test_theorem2_mix_2mod4(self):
        for q in range(1, 20):
            mix = theorem_cycle_mix(4 * q + 2)
            assert mix == {3: 2, 4: 2 * q * q + 2 * q - 1}
            assert mix[3] + mix[4] == rho(4 * q + 2)

    def test_small_cases(self):
        assert theorem_cycle_mix(3) == {3: 1, 4: 0}
        assert theorem_cycle_mix(4) == {3: 2, 4: 1}
        assert theorem_cycle_mix(5) == {3: 2, 4: 1}

    def test_excess(self):
        assert optimal_excess(7) == 0
        assert optimal_excess(9) == 0
        assert optimal_excess(4) == 4
        for n in (6, 8, 10, 12, 26, 40):
            assert optimal_excess(n) == n // 2

    @given(st.integers(3, 200))
    def test_mix_slots_account_for_edges_plus_excess(self, n):
        mix = theorem_cycle_mix(n)
        assert 3 * mix[3] + 4 * mix[4] == circular.n_chords(n) + optimal_excess(n)


class TestBounds:
    def test_counting_bound_odd_tight(self):
        for p in range(1, 40):
            assert counting_bound(2 * p + 1) == rho(2 * p + 1)

    def test_lower_bound_equals_rho_everywhere(self):
        """The reconstructed bounds certify the formulas for every n —
        combined with the constructions this *proves* both theorems."""
        for n in range(3, 120):
            assert lower_bound(n).value == rho(n)

    def test_parity_argument_only_for_p_even(self):
        names = {a.name for a in lower_bound(12).arguments}
        assert "parity" in names
        names = {a.name for a in lower_bound(10).arguments}
        assert "parity" not in names

    def test_explain_mentions_best(self):
        cert = lower_bound(12)
        text = cert.explain()
        assert "ρ(12) ≥ 19" in text
        assert cert.best_argument().value == 19

    def test_instance_lower_bound_all_to_all_matches_counting(self):
        for n in (5, 8, 11):
            assert instance_lower_bound(all_to_all(n)).value == counting_bound(n)

    def test_instance_lower_bound_sparse(self):
        inst = from_requests(8, [(0, 4), (1, 5)])
        assert instance_lower_bound(inst).value == 1

    def test_instance_lower_bound_lambda(self):
        for n in (5, 7):
            for lam in (2, 3):
                assert (
                    instance_lower_bound(lambda_all_to_all(n, lam)).value
                    == rho_lambda_lower_bound(n, lam)
                )


class TestBaselineFormulas:
    def test_triangle_covering_number_cited_values(self):
        # ⌈n/3·⌈(n−1)/2⌉⌉ from the paper's refs [6, 7].
        assert triangle_covering_number(7) == 7
        assert triangle_covering_number(9) == 12
        assert triangle_covering_number(13) == 26

    def test_cycle_cover_lower_bound(self):
        assert cycle_cover_lower_bound(8, 4) >= 28 // 4
        with pytest.raises(ValueError):
            cycle_cover_lower_bound(8, 2)

    def test_rho_lambda_lb_scales(self):
        assert rho_lambda_lower_bound(7, 1) == rho(7)
        assert rho_lambda_lower_bound(7, 3) == 3 * rho(7)
