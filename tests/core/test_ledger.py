"""Property tests: incremental coverage accounting must agree with a
from-scratch recount after any chain of covering edits.

``Covering.with_blocks`` / ``replace_block`` / ``without_block`` patch
the parent's :class:`~repro.core.ledger.CoverageLedger` in O(block
size); these tests drive random edit chains (hypothesis) and compare
every cached quantity — coverage counts, total slots, excess, covers —
against an independently recounted covering of the same blocks.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covering import Covering
from repro.core.engine import enumerate_convex_blocks
from repro.core.ledger import CoverageLedger


def _recount(cov: Covering) -> Counter:
    counts: Counter = Counter()
    for blk in cov.blocks:
        counts.update(blk.edges())
    return counts


def _assert_consistent(cov: Covering) -> None:
    expected = _recount(cov)
    fresh = Covering(cov.n, cov.blocks)  # recounts from scratch
    assert cov.coverage == dict(expected)
    assert cov.total_slots == sum(expected.values())
    assert cov.excess() == fresh.excess()
    assert cov.covers() == fresh.covers()
    for e in list(expected) + [(0, 1)]:
        assert cov.multiplicity(e) == expected.get(e, 0)


@st.composite
def edit_chains(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    pool = enumerate_convex_blocks(n)
    picks = st.integers(min_value=0, max_value=len(pool) - 1)
    initial = draw(st.lists(picks, min_size=1, max_size=8))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "remove", "replace"]), picks, picks),
            min_size=1,
            max_size=12,
        )
    )
    return n, pool, initial, ops


@given(edit_chains())
@settings(max_examples=60, deadline=None)
def test_incremental_ledger_matches_recount(chain):
    n, pool, initial, ops = chain
    cov = Covering(n, tuple(pool[i] for i in initial))
    cov.coverage  # materialise the ledger so edits take the delta path
    for op, i, j in ops:
        if op == "add":
            cov = cov.with_blocks([pool[i]])
        elif op == "remove" and cov.num_blocks > 1:
            cov = cov.without_block(i % cov.num_blocks)
        elif op == "replace" and cov.num_blocks > 0:
            cov = cov.replace_block(i % cov.num_blocks, pool[j])
        _assert_consistent(cov)


@given(edit_chains())
@settings(max_examples=30, deadline=None)
def test_cold_ledger_path_matches(chain):
    # Without touching coverage first, edits derive coverings whose
    # ledgers are recounted lazily — results must be identical too.
    n, pool, initial, ops = chain
    cov = Covering(n, tuple(pool[i] for i in initial))
    for op, i, j in ops[:4]:
        if op == "add":
            cov = cov.with_blocks([pool[i]])
        elif op == "remove" and cov.num_blocks > 1:
            cov = cov.without_block(i % cov.num_blocks)
        elif op == "replace":
            cov = cov.replace_block(i % cov.num_blocks, pool[j])
    _assert_consistent(cov)


def test_derived_covering_reuses_parent_ledger():
    # White-box: once the parent ledger is materialised, children get a
    # pre-seeded patched copy instead of recounting.
    pool = enumerate_convex_blocks(7)
    cov = Covering(7, pool[:4])
    assert "_ledger" not in cov.__dict__
    cov.coverage
    child = cov.with_blocks([pool[10]])
    assert "_ledger" in child.__dict__
    grandchild = child.without_block(0)
    assert "_ledger" in grandchild.__dict__
    _assert_consistent(grandchild)


def test_ledger_add_remove_roundtrip():
    pool = enumerate_convex_blocks(8)
    ledger = CoverageLedger.from_blocks(pool[:5])
    snapshot = dict(ledger.counts)
    ledger.add_block(pool[11])
    ledger.remove_block(pool[11])
    assert ledger.counts == snapshot
    assert ledger.total_slots == sum(snapshot.values())


def test_ledger_never_stores_zero_counts():
    pool = enumerate_convex_blocks(6)
    ledger = CoverageLedger.from_blocks([pool[0], pool[0]])
    ledger.remove_block(pool[0])
    ledger.remove_block(pool[0])
    assert ledger.counts == {}
    assert ledger.total_slots == 0
    assert ledger.excess_all_to_all() == 0
