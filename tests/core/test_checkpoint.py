"""Checkpoint/resume machinery (:mod:`repro.core.checkpoint`).

The contract under test is the tentpole guarantee: a branch-and-bound
search preempted at any point, serialized through JSON, and resumed —
possibly many times — must finish with *exactly* the same covering and
node count as an uninterrupted run.  The explicit-stack searches make
this possible (the whole search state is data, not Python frames);
these tests pin that the state survives the round trip byte-for-byte.

Also here: the size-capped transposition memo (``REPRO_MEMO_CAP``) and
the richer :class:`SolverError` payload (in-flight best + stats +
checkpoint attached at the node-limit raise).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.checkpoint import (
    DEFAULT_MEMO_CAP,
    MEMO_CAP_ENV,
    CappedMemo,
    SearchCheckpoint,
    memo_cap,
)
from repro.core.engine import SolverEngine, SolverStats
from repro.core.kernel import numpy_available
from repro.traffic.instances import all_to_all
from repro.util.errors import SolverError, SolverPreempted


def _preempt_at(threshold: int):
    return lambda st: st.nodes >= threshold


def _run_with_preempts(n: int, step: int, **engine_kwargs):
    """Drive min_covering to completion through JSON-round-tripped
    checkpoints, preempting every ``step`` nodes.  Returns (covering,
    stats, cycles)."""
    engine = SolverEngine(n, **engine_kwargs)
    ckpt = None
    cycles = 0
    while True:
        stats = SolverStats()
        base = ckpt.nodes if ckpt is not None else 0
        try:
            covering = engine.min_covering(
                stats=stats,
                checkpoint=ckpt,
                preempt=_preempt_at(base + step),
            )
            return covering, stats, cycles
        except SolverPreempted as exc:
            cycles += 1
            assert cycles < 200, "preemption is not making progress"
            assert exc.checkpoint is not None
            # The full wire trip: payload -> JSON -> payload -> state.
            ckpt = SearchCheckpoint.from_json(exc.checkpoint.to_json())


class TestCappedMemo:
    def test_unbounded_by_default(self):
        memo = CappedMemo()
        for i in range(100):
            memo.store(i, i)
        assert len(memo) == 100

    def test_fifo_eviction_is_deterministic(self):
        memo = CappedMemo(3)
        for key in "abcd":
            memo.store(key, key.upper())
        assert list(memo) == ["b", "c", "d"]
        memo.store("e", "E")
        assert list(memo) == ["c", "d", "e"]

    def test_updating_existing_key_does_not_evict(self):
        memo = CappedMemo(2, [("a", 1), ("b", 2)])
        memo.store("a", 3)
        assert dict(memo) == {"a": 3, "b": 2}

    def test_memo_cap_env(self, monkeypatch):
        monkeypatch.delenv(MEMO_CAP_ENV, raising=False)
        assert memo_cap() == DEFAULT_MEMO_CAP
        monkeypatch.setenv(MEMO_CAP_ENV, "123")
        assert memo_cap() == 123
        monkeypatch.setenv(MEMO_CAP_ENV, "0")
        assert memo_cap() == 0  # unbounded
        monkeypatch.setenv(MEMO_CAP_ENV, "")
        assert memo_cap() == DEFAULT_MEMO_CAP

    @pytest.mark.parametrize("bad", ["-1", "lots", "1.5"])
    def test_memo_cap_env_rejects_garbage(self, monkeypatch, bad):
        monkeypatch.setenv(MEMO_CAP_ENV, bad)
        with pytest.raises(SolverError):
            memo_cap()

    def test_capped_search_still_exact(self, monkeypatch):
        """A tiny memo cap costs nodes, never correctness."""
        engine = SolverEngine(8)
        baseline = engine.min_covering(stats=(full := SolverStats()))
        monkeypatch.setenv(MEMO_CAP_ENV, "16")
        capped = engine.min_covering(stats=(small := SolverStats()))
        assert capped.num_blocks == baseline.num_blocks
        assert small.nodes >= full.nodes


class TestSerialization:
    def _checkpoint(self, n=8, threshold=512) -> SearchCheckpoint:
        engine = SolverEngine(n)
        with pytest.raises(SolverPreempted) as err:
            engine.min_covering(stats=SolverStats(), preempt=_preempt_at(threshold))
        assert err.value.checkpoint is not None
        return err.value.checkpoint

    def test_json_round_trip_is_stable(self):
        ckpt = self._checkpoint()
        text = ckpt.to_json()
        again = SearchCheckpoint.from_json(text)
        assert again.to_json() == text
        assert again == ckpt

    def test_payload_is_pure_json(self):
        payload = self._checkpoint().to_payload()
        assert payload == json.loads(json.dumps(payload))

    def test_bad_payloads_raise_solver_error(self):
        ckpt = self._checkpoint()
        for mangle in (
            lambda p: {**p, "format": "something-else"},
            lambda p: {**p, "kind": "martian"},
            lambda p: {k: v for k, v in p.items() if k != "frames"},
            lambda p: "not a dict",
        ):
            with pytest.raises(SolverError):
                SearchCheckpoint.from_payload(mangle(ckpt.to_payload()))

    def test_check_compatible_rejects_mismatches(self):
        ckpt = self._checkpoint(n=8)
        with pytest.raises(SolverError, match="not resumable"):
            ckpt.check_compatible(n=9)
        engine = SolverEngine(9)
        with pytest.raises(SolverError, match="not resumable"):
            engine.min_covering(stats=SolverStats(), checkpoint=ckpt)


class TestResumeIdentity:
    def test_kn_resume_matches_uninterrupted(self):
        engine = SolverEngine(8)
        oracle = engine.min_covering(stats=(base := SolverStats()))
        covering, stats, cycles = _run_with_preempts(8, 800)
        assert cycles >= 2
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks

    @settings(max_examples=8, deadline=None)
    @given(
        n=hst.integers(min_value=6, max_value=8),
        step=hst.integers(min_value=260, max_value=1500),
    )
    def test_kn_resume_matches_uninterrupted_hypothesis(self, n, step):
        engine = SolverEngine(n)
        oracle = engine.min_covering(stats=(base := SolverStats()))
        covering, stats, _cycles = _run_with_preempts(n, step)
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks

    def test_instance_resume_matches_uninterrupted(self):
        engine = SolverEngine(8)
        oracle = engine.min_covering_instance(
            all_to_all(8), stats=(base := SolverStats())
        )
        ckpt = None
        cycles = 0
        while True:
            stats = SolverStats()
            floor = ckpt.nodes if ckpt is not None else 0
            try:
                covering = engine.min_covering_instance(
                    all_to_all(8),
                    stats=stats,
                    checkpoint=ckpt,
                    preempt=_preempt_at(floor + 1000),
                )
                break
            except SolverPreempted as exc:
                cycles += 1
                assert cycles < 100
                ckpt = SearchCheckpoint.from_json(exc.checkpoint.to_json())
        assert cycles >= 2
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks

    def test_deadline_raise_is_resumable(self):
        engine = SolverEngine(8)
        with pytest.raises(SolverPreempted) as err:
            engine.min_covering(stats=SolverStats(), deadline=0.0)
        ckpt = err.value.checkpoint
        assert ckpt is not None and ckpt.nodes > 0
        oracle = engine.min_covering(stats=(base := SolverStats()))
        stats = SolverStats()
        covering = engine.min_covering(stats=stats, checkpoint=ckpt)
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks


@pytest.mark.skipif(not numpy_available(), reason="numpy kernel not available")
class TestKernelMigration:
    """Checkpoints are kernel-agnostic: a proof preempted under one
    kernel resumes under the other (the per-frame batch arrays are
    derived data, rebuilt from the serialized frames) and finishes
    with exactly the uninterrupted run's covering and node count."""

    @pytest.mark.parametrize(
        "first,second", [("python", "numpy"), ("numpy", "python")]
    )
    def test_migration_at_2500_nodes(self, first, second):
        oracle = SolverEngine(8, kernel="python").min_covering(
            stats=(base := SolverStats())
        )
        stats = SolverStats()
        with pytest.raises(SolverPreempted) as err:
            SolverEngine(8, kernel=first).min_covering(
                stats=stats, preempt=_preempt_at(2500)
            )
        # The full wire trip, then resume under the *other* kernel.
        ckpt = SearchCheckpoint.from_json(err.value.checkpoint.to_json())
        assert 0 < ckpt.nodes < base.nodes
        covering = SolverEngine(8, kernel=second).min_covering(
            stats=stats, checkpoint=ckpt
        )
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks

    def test_alternating_kernels_every_800_nodes(self):
        """Multi-hop migration: every resume cycle flips the kernel;
        the proof still lands on the uninterrupted envelope."""
        oracle = SolverEngine(8, kernel="python").min_covering(
            stats=(base := SolverStats())
        )
        kernels = ("python", "numpy")
        ckpt = None
        cycles = 0
        while True:
            stats = SolverStats()
            floor = ckpt.nodes if ckpt is not None else 0
            engine = SolverEngine(8, kernel=kernels[cycles % 2])
            try:
                covering = engine.min_covering(
                    stats=stats,
                    checkpoint=ckpt,
                    preempt=_preempt_at(floor + 800),
                )
                break
            except SolverPreempted as exc:
                cycles += 1
                assert cycles < 100, "preemption is not making progress"
                ckpt = SearchCheckpoint.from_json(exc.checkpoint.to_json())
        assert cycles >= 2  # both kernels actually took a turn
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks

    def test_node_limit_checkpoint_migrates(self):
        """The node-limit raise checkpoint (clamped to exactly
        limit + 1 under both kernels) resumes across kernels too."""
        oracle = SolverEngine(8, kernel="python").min_covering(
            stats=(base := SolverStats())
        )
        for first, second in (("python", "numpy"), ("numpy", "python")):
            stats = SolverStats()
            with pytest.raises(SolverError) as err:
                SolverEngine(8, kernel=first).min_covering(
                    stats=stats, node_limit=2500
                )
            assert stats.nodes == 2501
            ckpt = SearchCheckpoint.from_json(err.value.checkpoint.to_json())
            covering = SolverEngine(8, kernel=second).min_covering(
                stats=stats, checkpoint=ckpt
            )
            assert stats.nodes == base.nodes
            assert covering.blocks == oracle.blocks


class TestNodeLimitPayload:
    def test_node_limit_error_carries_state(self):
        engine = SolverEngine(8)
        with pytest.raises(SolverError) as err:
            engine.min_covering(stats=SolverStats(), node_limit=500)
        exc = err.value
        assert not isinstance(exc, SolverPreempted)  # overrun, not preemption
        assert exc.checkpoint is not None
        assert exc.stats is not None and exc.stats.nodes > 500
        # The improver seeds an incumbent before the search starts, so
        # an in-flight best is always available at the raise.
        assert exc.best_value is not None
        assert exc.best_blocks

    def test_node_limit_checkpoint_resumes(self):
        engine = SolverEngine(8)
        oracle = engine.min_covering(stats=(base := SolverStats()))
        with pytest.raises(SolverError) as err:
            engine.min_covering(stats=SolverStats(), node_limit=1000)
        stats = SolverStats()
        covering = engine.min_covering(
            stats=stats, checkpoint=err.value.checkpoint
        )
        assert stats.nodes == base.nodes
        assert covering.blocks == oracle.blocks
