"""Tests for the unified solver engine (:mod:`repro.core.engine`).

The headline regression: the seed solver evaluated its counting bound
twice per node against a contradictory ``>=`` / ``>`` pair and started
from the trivial one-block-per-chord incumbent; the engine computes the
bound once, prunes with the single exclusive test, seeds greedy
incumbents, and breaks dihedral symmetry at the root.  The node counts
below (measured on the seed at commit 88bda6a) must strictly drop while
every certified optimum stays equal to ρ(n).
"""

from __future__ import annotations

import pytest

from repro.core.blocks import CycleBlock
from repro.core.engine import (
    SolverEngine,
    SolverStats,
    dihedral_canonical,
    solve_many,
)
from repro.core.formulas import rho
from repro.core.solver import (
    exact_decomposition,
    solve_min_covering,
    solve_min_covering_instance,
)
from repro.traffic.instances import Instance, all_to_all, lambda_all_to_all
from repro.util import circular
from repro.util.errors import SolverError

# SolverStats.nodes of the seed's solve_min_covering(n) (no upper bound).
SEED_NODES = {5: 43, 6: 494, 7: 889, 8: 1_794_078, 9: 1_612_361}


class TestPruningRegression:
    @pytest.mark.parametrize("n", sorted(SEED_NODES))
    def test_fewer_nodes_same_optimum(self, n):
        stats = SolverStats()
        cov = solve_min_covering(n, stats=stats)
        assert cov.num_blocks == rho(n)
        assert cov.covers() and cov.is_drc_feasible()
        assert stats.proven_optimal
        assert stats.nodes < SEED_NODES[n], (
            f"n={n}: engine explored {stats.nodes} nodes, "
            f"seed explored {SEED_NODES[n]}"
        )

    def test_n9_orders_of_magnitude(self):
        # The acceptance bar is "strictly fewer"; in practice greedy
        # incumbents + symmetry breaking cut n=9 by ~1000×.  Assert a
        # conservative 10× so noise never flakes the build.
        stats = SolverStats()
        solve_min_covering(9, stats=stats)
        assert stats.nodes * 10 < SEED_NODES[9]

    def test_all_small_n_certified(self):
        for n in range(4, 10):
            assert solve_min_covering(n).num_blocks == rho(n)


class TestUpperBoundSemantics:
    @pytest.mark.parametrize("n", (5, 6, 7, 8))
    def test_inclusive_upper_bound_returns_certificate(self, n):
        # upper_bound equal to the true optimum must still return a real
        # covering, not a trivial bound.
        stats = SolverStats()
        cov = solve_min_covering(n, upper_bound=rho(n), stats=stats)
        assert cov.num_blocks == rho(n)
        assert cov.covers() and cov.is_drc_feasible()
        assert stats.best_value == rho(n)
        assert stats.proven_optimal

    def test_upper_bound_below_optimum_raises(self):
        with pytest.raises(SolverError, match="no covering"):
            solve_min_covering(6, upper_bound=rho(6) - 1)

    def test_upper_bound_above_optimum_unchanged(self):
        cov = solve_min_covering(7, upper_bound=rho(7) + 3)
        assert cov.num_blocks == rho(7)


class TestDecompositionStats:
    def test_stats_threaded(self):
        edges = frozenset(circular.all_chords(5))
        stats = SolverStats()
        blocks = exact_decomposition(5, edges, stats=stats)
        assert blocks is not None
        assert stats.nodes > 0
        assert stats.best_value == len(blocks)
        assert stats.proven_optimal

    def test_stats_on_infeasible(self):
        edges = frozenset(circular.all_chords(4))
        stats = SolverStats()
        assert exact_decomposition(4, edges, stats=stats) is None
        assert stats.nodes > 0
        assert stats.best_value is None
        assert stats.proven_optimal  # exhaustive: non-existence certified

    def test_stats_on_uncoverable_edge(self):
        # An edge no tight block can cover: certified infeasible without
        # search, same stats contract as the DFS-exhausted path.
        stats = SolverStats()
        assert exact_decomposition(6, frozenset({(0, 3)}), stats=stats) is None
        assert stats.proven_optimal

    def test_stats_on_empty(self):
        stats = SolverStats()
        assert exact_decomposition(6, frozenset(), stats=stats) == []
        assert stats.best_value == 0


class TestDihedralSymmetry:
    def test_canonical_invariant_under_ring_symmetries(self):
        n = 9
        vs = (0, 2, 5, 6)
        key = dihedral_canonical(n, vs)
        for r in range(n):
            rotated = tuple((v + r) % n for v in vs)
            reflected = tuple((-v) % n for v in rotated)
            assert dihedral_canonical(n, rotated) == key
            assert dihedral_canonical(n, reflected) == key

    def test_distinct_orbits_distinct_keys(self):
        # (0,1,2) and (0,1,3) have different gap structures on C_7.
        assert dihedral_canonical(7, (0, 1, 2)) != dihedral_canonical(7, (0, 1, 3))

    def test_symmetric_instance_matches_plain_solver(self):
        # λ = 1 all-to-all through the instance path (symmetry seeding on)
        # must agree with the K_n path.
        for n in (5, 6, 7):
            via_instance = solve_min_covering_instance(all_to_all(n))
            assert via_instance.num_blocks == rho(n)
            assert via_instance.covers()

    def test_asymmetric_instance_not_seeded_but_correct(self):
        # A lopsided instance (symmetry breaking must stay off): the
        # optimum is easy to see — one triangle covers all three requests.
        inst = Instance(6, {(0, 1): 1, (1, 3): 1, (0, 3): 1})
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 1
        assert cov.covers(inst)

    def test_lambda_instance_optimum(self):
        stats = SolverStats()
        cov = solve_min_covering_instance(lambda_all_to_all(5, 2), stats=stats)
        assert cov.num_blocks == 2 * rho(5)
        assert stats.proven_optimal


class TestEngineObject:
    def test_rejects_tiny_ring(self):
        with pytest.raises(SolverError):
            SolverEngine(2)

    def test_rejects_large_covering_n(self):
        with pytest.raises(SolverError):
            SolverEngine(20).min_covering()

    def test_tables_memoized_across_instances(self):
        a = SolverEngine(8)
        b = SolverEngine(8)
        assert a.convex_table is b.convex_table
        assert a.space is b.space

    def test_greedy_cover_valid(self):
        for n in (6, 9, 11):
            cov = SolverEngine(n).greedy_cover()
            assert cov.covers()
            assert cov.is_drc_feasible()

    def test_greedy_matches_baseline(self):
        from repro.baselines.greedy import greedy_drc_covering

        for n in (6, 8, 10):
            assert SolverEngine(n).greedy_cover(pool="tight").blocks == \
                greedy_drc_covering(n).blocks

    def test_node_limit_enforced(self):
        with pytest.raises(SolverError):
            SolverEngine(8).min_covering(node_limit=3)


class TestSolveMany:
    def test_matches_serial(self):
        ns = (4, 5, 6, 7)
        results = solve_many(ns, upper_bounds=[rho(n) + 1 for n in ns], workers=1)
        assert [cov.num_blocks for cov, _ in results] == [rho(n) for n in ns]
        assert all(st.proven_optimal for _, st in results)

    def test_parallel_fanout(self):
        # Enough items to cross parallel_map's serial threshold; results
        # must come back in order with real stats.
        ns = (4, 5, 6, 7, 9)
        results = solve_many(ns, upper_bounds=[rho(n) + 1 for n in ns], workers=2)
        for n, (cov, st) in zip(ns, results):
            assert cov.n == n
            assert cov.num_blocks == rho(n)
            assert st.nodes >= 1

    def test_upper_bounds_length_mismatch(self):
        with pytest.raises(SolverError, match="upper_bounds"):
            solve_many((4, 5), upper_bounds=[3])


class TestFacadeCompatibility:
    def test_public_api_importable(self):
        from repro.core.solver import (  # noqa: F401
            SolverStats,
            enumerate_convex_blocks,
            enumerate_tight_blocks,
            exact_decomposition,
            solve_min_covering,
            solve_min_covering_instance,
        )

    def test_top_level_exports(self):
        import repro

        assert repro.SolverEngine is SolverEngine
        assert repro.solve_many is solve_many

    def test_results_are_paper_objects(self):
        cov = solve_min_covering(6)
        assert isinstance(cov.blocks[0], CycleBlock)
