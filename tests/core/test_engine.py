"""Tests for the unified solver engine (:mod:`repro.core.engine`).

Two generations of regression constants live here.  ``SEED_NODES`` is
the seed solver (contradictory double prune, trivial incumbents,
measured at commit 88bda6a); every engine count must stay strictly
below it.  ``ENGINE_NODE_CEILINGS`` pins the current engine —
lexicographic branching + canonical-mask transposition memo + packing
bound + improver-seeded incumbents — with modest headroom: the n = 8
anomaly (85,650 seed nodes against n = 9's 234, an even/odd bound-gap
artifact amplified by ~2n-fold dihedral state duplication) must stay
≥ 10× beaten, and the n = 10 / n = 11 certifications must stay
tractable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.blocks import CycleBlock
from repro.core.engine import (
    N8_NODE_CEILING,
    SolverEngine,
    SolverStats,
    dihedral_bit_perms,
    dihedral_canonical,
    dominated_candidates,
    solve_many,
    solve_min_covering_sharded,
)
from repro.core.engine import (
    exact_decomposition,
    solve_min_covering,
    solve_min_covering_instance,
)
from repro.core.formulas import rho
from repro.traffic.instances import Instance, all_to_all, lambda_all_to_all
from repro.util import circular
from repro.util.errors import SolverError

# SolverStats.nodes of the seed's solve_min_covering(n) (no upper bound).
SEED_NODES = {5: 43, 6: 494, 7: 889, 8: 1_794_078, 9: 1_612_361}

# Pinned ceilings for the current engine (measured: 8, 1, 32, 1, 3493,
# 1, 111453, 461 — the search is deterministic, the headroom only
# covers improver-incumbent drift).  n = 8's ceiling is the shared
# ≥ 10× acceptance bar against the seed's 85,650-node anomaly,
# enforced identically by the solver benchmark and CI.
ENGINE_NODE_CEILINGS = {
    4: 16,
    5: 4,
    6: 64,
    7: 4,
    8: N8_NODE_CEILING,
    9: 4,
    10: 140_000,
    11: 600,
}


class TestPruningRegression:
    # The node-count tests take the ``kernel`` fixture: both kernels
    # must reproduce the same counts (the numpy leg skips when numpy
    # is absent — the pinned ceilings then certify the fallback path).
    @pytest.mark.parametrize("n", sorted(SEED_NODES))
    def test_fewer_nodes_same_optimum(self, n, kernel):
        stats = SolverStats()
        cov = solve_min_covering(n, stats=stats)
        assert cov.num_blocks == rho(n)
        assert cov.covers() and cov.is_drc_feasible()
        assert stats.proven_optimal
        assert stats.nodes < SEED_NODES[n], (
            f"n={n}: engine explored {stats.nodes} nodes, "
            f"seed explored {SEED_NODES[n]}"
        )

    def test_n9_orders_of_magnitude(self):
        # The acceptance bar is "strictly fewer"; in practice greedy
        # incumbents + symmetry breaking cut n=9 by ~1000×.  Assert a
        # conservative 10× so noise never flakes the build.
        stats = SolverStats()
        solve_min_covering(9, stats=stats)
        assert stats.nodes * 10 < SEED_NODES[9]

    @pytest.mark.parametrize("n", sorted(ENGINE_NODE_CEILINGS))
    def test_pinned_node_ceilings(self, n, kernel):
        stats = SolverStats()
        cov = solve_min_covering(n, stats=stats)
        assert cov.num_blocks == rho(n)
        assert stats.proven_optimal
        assert stats.nodes <= ENGINE_NODE_CEILINGS[n], (
            f"n={n}: node-count regression under the {kernel} kernel — "
            f"{stats.nodes} > {ENGINE_NODE_CEILINGS[n]}"
        )

    def test_all_small_n_certified(self):
        for n in range(4, 10):
            assert solve_min_covering(n).num_blocks == rho(n)

    def test_past_ten_certified(self):
        # The PR's headline: ρ(10) and ρ(11) proven optimal, no hints.
        for n in (10, 11):
            stats = SolverStats()
            cov = solve_min_covering(n, stats=stats)
            assert cov.num_blocks == rho(n)
            assert cov.covers() and cov.is_drc_feasible()
            assert stats.proven_optimal

    @pytest.mark.parametrize("branching", ("lex", "scarcest"))
    @pytest.mark.parametrize("use_memo", (True, False))
    def test_search_knobs_agree(self, branching, use_memo):
        # Every ablation configuration proves the same optimum.
        stats = SolverStats()
        cov = solve_min_covering(8, branching=branching, use_memo=use_memo, stats=stats)
        assert cov.num_blocks == rho(8)
        assert stats.proven_optimal

    def test_unknown_branching_rejected(self):
        with pytest.raises(SolverError, match="branching"):
            solve_min_covering(6, branching="mystery")


class TestUpperBoundSemantics:
    @pytest.mark.parametrize("n", (5, 6, 7, 8))
    def test_inclusive_upper_bound_returns_certificate(self, n):
        # upper_bound equal to the true optimum must still return a real
        # covering, not a trivial bound.
        stats = SolverStats()
        cov = solve_min_covering(n, upper_bound=rho(n), stats=stats)
        assert cov.num_blocks == rho(n)
        assert cov.covers() and cov.is_drc_feasible()
        assert stats.best_value == rho(n)
        assert stats.proven_optimal

    def test_upper_bound_below_optimum_raises(self):
        with pytest.raises(SolverError, match="no covering"):
            solve_min_covering(6, upper_bound=rho(6) - 1)

    def test_upper_bound_above_optimum_unchanged(self):
        cov = solve_min_covering(7, upper_bound=rho(7) + 3)
        assert cov.num_blocks == rho(7)


class TestDecompositionStats:
    def test_stats_threaded(self):
        edges = frozenset(circular.all_chords(5))
        stats = SolverStats()
        blocks = exact_decomposition(5, edges, stats=stats)
        assert blocks is not None
        assert stats.nodes > 0
        assert stats.best_value == len(blocks)
        assert stats.proven_optimal

    def test_stats_on_infeasible(self):
        edges = frozenset(circular.all_chords(4))
        stats = SolverStats()
        assert exact_decomposition(4, edges, stats=stats) is None
        assert stats.nodes > 0
        assert stats.best_value is None
        assert stats.proven_optimal  # exhaustive: non-existence certified

    def test_stats_on_uncoverable_edge(self):
        # An edge no tight block can cover: certified infeasible without
        # search, same stats contract as the DFS-exhausted path.
        stats = SolverStats()
        assert exact_decomposition(6, frozenset({(0, 3)}), stats=stats) is None
        assert stats.proven_optimal

    def test_stats_on_empty(self):
        stats = SolverStats()
        assert exact_decomposition(6, frozenset(), stats=stats) == []
        assert stats.best_value == 0


class TestDihedralSymmetry:
    def test_canonical_invariant_under_ring_symmetries(self):
        n = 9
        vs = (0, 2, 5, 6)
        key = dihedral_canonical(n, vs)
        for r in range(n):
            rotated = tuple((v + r) % n for v in vs)
            reflected = tuple((-v) % n for v in rotated)
            assert dihedral_canonical(n, rotated) == key
            assert dihedral_canonical(n, reflected) == key

    def test_distinct_orbits_distinct_keys(self):
        # (0,1,2) and (0,1,3) have different gap structures on C_7.
        assert dihedral_canonical(7, (0, 1, 2)) != dihedral_canonical(7, (0, 1, 3))

    def test_symmetric_instance_matches_plain_solver(self):
        # λ = 1 all-to-all through the instance path (symmetry seeding on)
        # must agree with the K_n path.
        for n in (5, 6, 7):
            via_instance = solve_min_covering_instance(all_to_all(n))
            assert via_instance.num_blocks == rho(n)
            assert via_instance.covers()

    def test_asymmetric_instance_not_seeded_but_correct(self):
        # A lopsided instance (symmetry breaking must stay off): the
        # optimum is easy to see — one triangle covers all three requests.
        inst = Instance(6, {(0, 1): 1, (1, 3): 1, (0, 3): 1})
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 1
        assert cov.covers(inst)

    def test_orbit_trap_instance_guarded(self):
        # The edges of triangle (2, 3, 5) on C_7.  Another triangle in
        # the same dihedral orbit also covers the branching chord
        # (2, 3), so *unsound* root symmetry breaking could discard the
        # unique one-block optimum and report 2; the invariance guard
        # must keep it.
        tri = CycleBlock((2, 3, 5))
        orbitmates = [
            vs
            for vs in ((0, 2, 3), (2, 3, 0), (1, 2, 3))
            if dihedral_canonical(7, vs) == dihedral_canonical(7, tri.vertices)
        ]
        assert orbitmates, "test premise: an orbit-mate shares chord (2, 3)"
        inst = Instance(7, {e: 1 for e in tri.edges()})
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 1
        assert cov.covers(inst)

    def test_invariance_predicate(self):
        from repro.core.engine import _is_dihedral_invariant

        assert _is_dihedral_invariant(all_to_all(7))
        assert _is_dihedral_invariant(lambda_all_to_all(6, 3))
        assert not _is_dihedral_invariant(Instance(6, {(0, 1): 1}))

    def test_lambda_instance_optimum(self):
        stats = SolverStats()
        cov = solve_min_covering_instance(lambda_all_to_all(5, 2), stats=stats)
        assert cov.num_blocks == 2 * rho(5)
        assert stats.proven_optimal

    def test_large_multiplicity_demand(self):
        # Regression: the residual-state memo key must survive demand
        # multiplicities ≥ 256 (a bytes() key overflowed there).
        inst = Instance(6, {(0, 1): 300, (2, 3): 300, (0, 3): 1, (1, 4): 1})
        stats = SolverStats()
        cov = solve_min_covering_instance(inst, stats=stats)
        assert cov.covers(inst)
        assert stats.proven_optimal
        # 300 quads (0,1,2,3) retire both heavy chords; (1,4) needs its
        # own block (no convex ≤ 4-cycle carries (0,1), (2,3) and (1,4)).
        assert cov.num_blocks == 301


class TestEngineObject:
    def test_rejects_tiny_ring(self):
        with pytest.raises(SolverError):
            SolverEngine(2)

    def test_rejects_large_covering_n(self):
        with pytest.raises(SolverError):
            SolverEngine(20).min_covering()

    def test_tables_memoized_across_instances(self):
        a = SolverEngine(8)
        b = SolverEngine(8)
        assert a.convex_table is b.convex_table
        assert a.space is b.space

    def test_greedy_cover_valid(self):
        for n in (6, 9, 11):
            cov = SolverEngine(n).greedy_cover()
            assert cov.covers()
            assert cov.is_drc_feasible()

    def test_greedy_matches_baseline(self):
        from repro.baselines.greedy import greedy_drc_covering

        for n in (6, 8, 10):
            assert SolverEngine(n).greedy_cover(pool="tight").blocks == \
                greedy_drc_covering(n).blocks

    def test_node_limit_enforced(self):
        with pytest.raises(SolverError):
            SolverEngine(8).min_covering(node_limit=3)


class TestDominanceFilter:
    def test_subset_is_dominated(self):
        # 0b011 ⊂ 0b111 → index 0 dropped; 0b100 ⊂ 0b111 → index 2 dropped.
        assert dominated_candidates([0b011, 0b111, 0b100]) == {0, 2}

    def test_equal_pair_keeps_earlier(self):
        assert dominated_candidates([0b011, 0b011]) == {1}

    def test_no_demanded_coverage_dropped(self):
        assert dominated_candidates([0b100, 0b011], restrict_mask=0b011) == {0}

    def test_restriction_changes_dominance(self):
        # Unrestricted the masks are incomparable; demanding only the
        # low bits makes the first a subset of the second.
        masks = [0b1101, 0b0111]
        assert dominated_candidates(masks) == set()
        assert dominated_candidates(masks, restrict_mask=0b0011) == {0}

    def test_filter_keeps_instance_optimum(self):
        # Dominance must never remove every optimal covering.
        inst = Instance(7, {(0, 2): 1, (2, 4): 1, (0, 4): 1, (1, 5): 1})
        with_filter = solve_min_covering_instance(inst, dominance=True)
        without = solve_min_covering_instance(inst, dominance=False)
        assert with_filter.num_blocks == without.num_blocks
        assert with_filter.covers(inst)


class TestDominanceFilterProperties:
    """Hypothesis: the dominance filter never removes all optima — for
    any random demand, the filtered search proves the same optimum as
    the unfiltered one."""

    @staticmethod
    def _instance(n, chosen, lam):
        chords = sorted(circular.all_chords(n))
        demand = {chords[i % len(chords)]: lam for i in chosen}
        return Instance(n, demand)

    @given(
        n=hst.integers(min_value=5, max_value=7),
        chosen=hst.sets(hst.integers(min_value=0, max_value=20), min_size=1, max_size=6),
        lam=hst.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_optimum_with_and_without_filter(self, n, chosen, lam):
        inst = self._instance(n, chosen, lam)
        filtered = solve_min_covering_instance(inst, dominance=True)
        unfiltered = solve_min_covering_instance(inst, dominance=False)
        assert filtered.num_blocks == unfiltered.num_blocks
        assert filtered.covers(inst)

    @given(
        n=hst.integers(min_value=5, max_value=8),
        chosen=hst.sets(hst.integers(min_value=0, max_value=27), min_size=1, max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_demanded_chord_keeps_a_candidate(self, n, chosen):
        from repro.core.engine import convex_block_table, edge_space

        inst = self._instance(n, chosen, 1)
        space = edge_space(n)
        table = convex_block_table(n)
        demand_mask = 0
        for e in inst.demand:
            demand_mask |= 1 << space.index[e]
        keep = [i for i, m in enumerate(table.masks) if m & demand_mask]
        dropped = dominated_candidates([table.masks[i] for i in keep], demand_mask)
        survivors = [table.masks[i] for k, i in enumerate(keep) if k not in dropped]
        for e in inst.demand:
            bit = 1 << space.index[e]
            assert any(m & bit for m in survivors), f"chord {e} lost all candidates"


class TestDihedralBitPerms:
    def test_identity_first_and_group_size(self):
        n = 7
        perms = dihedral_bit_perms(n)
        nedges = n * (n - 1) // 2
        assert len(perms) == 2 * n
        assert perms[0] == tuple(range(nedges))
        for perm in perms:
            assert sorted(perm) == list(range(nedges))

    def test_perms_preserve_chord_distance(self):
        from repro.core.engine import edge_space

        n = 8
        space = edge_space(n)
        for perm in dihedral_bit_perms(n):
            for b, img in enumerate(perm):
                assert space.dist[b] == space.dist[img]


class TestShardedSolver:
    def test_matches_serial_optimum(self, monkeypatch):
        # The REPRO_MAX_WORKERS cap applies to explicit worker requests
        # too (that is its CI job), so clear it for a real fan-out.
        from repro.util.parallel import MAX_WORKERS_ENV

        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        serial = SolverStats()
        cov_serial = solve_min_covering(8, stats=serial)
        sharded = SolverStats()
        cov_sharded = solve_min_covering_sharded(8, workers=3, stats=sharded)
        assert cov_sharded.num_blocks == cov_serial.num_blocks == rho(8)
        assert cov_sharded.covers() and cov_sharded.is_drc_feasible()
        assert sharded.proven_optimal
        assert sharded.shards >= 2  # actually fanned out
        assert sharded.nodes > 0

    def test_single_worker_degrades_to_serial(self):
        stats = SolverStats()
        cov = solve_min_covering_sharded(7, workers=1, stats=stats)
        assert cov.num_blocks == rho(7)
        assert stats.shards == 0  # plain min_covering path

    def test_deterministic_across_runs(self):
        a = solve_min_covering_sharded(8, workers=2)
        b = solve_min_covering_sharded(8, workers=2)
        assert a.blocks == b.blocks

    def test_sharded_respects_upper_bound(self):
        with pytest.raises(SolverError, match="no covering"):
            solve_min_covering_sharded(6, workers=2, upper_bound=rho(6) - 1)


class TestSolveMany:
    def test_matches_serial(self):
        ns = (4, 5, 6, 7)
        results = solve_many(ns, upper_bounds=[rho(n) + 1 for n in ns], workers=1)
        assert [cov.num_blocks for cov, _ in results] == [rho(n) for n in ns]
        assert all(st.proven_optimal for _, st in results)

    def test_parallel_fanout(self):
        # Enough items to cross parallel_map's serial threshold; results
        # must come back in order with real stats.
        ns = (4, 5, 6, 7, 9)
        results = solve_many(ns, upper_bounds=[rho(n) + 1 for n in ns], workers=2)
        for n, (cov, st) in zip(ns, results):
            assert cov.n == n
            assert cov.num_blocks == rho(n)
            assert st.nodes >= 1

    def test_upper_bounds_length_mismatch(self):
        with pytest.raises(SolverError, match="upper_bounds"):
            solve_many((4, 5), upper_bounds=[3])

    def test_shard_threshold_routes_large_n(self, monkeypatch):
        from repro.util.parallel import MAX_WORKERS_ENV

        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        ns = (5, 8)
        results = solve_many(ns, workers=2, shard_threshold=8)
        for n, (cov, st) in zip(ns, results):
            assert cov.num_blocks == rho(n)
            assert st.proven_optimal
        # The n = 8 entry went through the sharded path.
        assert results[1][1].shards >= 2
        assert results[0][1].shards == 0


class TestFacadeCompatibility:
    def test_public_api_importable(self):
        from repro.core.solver import (  # noqa: F401
            SolverStats,
            enumerate_convex_blocks,
            enumerate_tight_blocks,
            exact_decomposition,
            solve_min_covering,
            solve_min_covering_instance,
        )

    def test_top_level_exports(self):
        import repro

        assert repro.SolverEngine is SolverEngine
        assert repro.solve_many is solve_many

    def test_facade_warns_deprecation_and_delegates(self):
        import warnings

        from repro.core import solver as facade

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cov = facade.solve_min_covering(6)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert cov.num_blocks == rho(6)

    def test_results_are_paper_objects(self):
        cov = solve_min_covering(6)
        assert isinstance(cov.blocks[0], CycleBlock)
