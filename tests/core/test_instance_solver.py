"""Tests for the instance-level exact solver (λK_n and sparse demands)."""

from __future__ import annotations

import pytest

from repro.core.formulas import rho
from repro.core.engine import SolverStats, solve_min_covering_instance
from repro.extensions.lambda_fold import lambda_lower_bound
from repro.traffic.instances import Instance, all_to_all, from_requests, lambda_all_to_all
from repro.util.errors import SolverError


class TestAgainstKnownOptima:
    @pytest.mark.parametrize("n", (4, 5, 6))
    def test_matches_rho_for_lambda_one(self, n):
        cov = solve_min_covering_instance(all_to_all(n))
        assert cov.num_blocks == rho(n)
        assert cov.covers(all_to_all(n))

    def test_odd_lambda_two_doubles(self):
        cov = solve_min_covering_instance(lambda_all_to_all(5, 2))
        assert cov.num_blocks == 2 * rho(5)  # counting bound, certified

    def test_even_lambda_two_beats_repetition(self):
        """The reproduction's sharpest λ finding: ρ_2(6) = 9 < 2ρ(6)."""
        cov = solve_min_covering_instance(lambda_all_to_all(6, 2))
        assert cov.num_blocks == 9
        assert cov.num_blocks == lambda_lower_bound(6, 2).value
        assert cov.covers(lambda_all_to_all(6, 2))
        assert cov.is_drc_feasible()


class TestSparseInstances:
    def test_three_diameters_three_blocks(self):
        # Pairwise crossing diameters can never share a block.
        inst = from_requests(8, [(0, 4), (1, 5), (2, 6)])
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 3

    def test_compatible_chords_share_block(self):
        inst = from_requests(8, [(0, 1), (2, 3), (4, 5)])
        # With the paper's C3/C4 budget: one quad takes two chords, a
        # triangle the third.
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 2
        # Allowing hexagons, a single convex C6 covers all three.
        cov6 = solve_min_covering_instance(inst, max_size=6)
        assert cov6.num_blocks == 1

    def test_single_request(self):
        inst = from_requests(6, [(0, 3)])
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 1
        assert cov.covers(inst)

    def test_empty_instance(self):
        assert solve_min_covering_instance(Instance(5, {})).num_blocks == 0

    def test_repeated_request(self):
        inst = from_requests(5, [(0, 2), (0, 2)])
        cov = solve_min_covering_instance(inst)
        assert cov.num_blocks == 2  # one block covers a chord only once


class TestGuards:
    def test_rejects_large_n(self):
        with pytest.raises(SolverError):
            solve_min_covering_instance(all_to_all(12))

    def test_rejects_non_instance(self):
        with pytest.raises(SolverError):
            solve_min_covering_instance({"not": "an instance"})  # type: ignore[arg-type]

    def test_node_limit(self):
        with pytest.raises(SolverError):
            solve_min_covering_instance(all_to_all(6), node_limit=2)

    def test_stats_filled(self):
        stats = SolverStats()
        solve_min_covering_instance(all_to_all(5), stats=stats)
        assert stats.proven_optimal
        assert stats.best_value == rho(5)
        assert stats.nodes > 0
