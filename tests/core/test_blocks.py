"""Tests for CycleBlock."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import CycleBlock, convex_block, quad, triangle
from repro.util.errors import InvalidBlockError


class TestConstruction:
    def test_triangle_and_quad_helpers(self):
        assert triangle(0, 1, 2).size == 3
        assert quad(0, 1, 2, 3).size == 4

    def test_rejects_short(self):
        with pytest.raises(InvalidBlockError):
            CycleBlock((0, 1))

    def test_rejects_repeats(self):
        with pytest.raises(InvalidBlockError):
            CycleBlock((0, 1, 1))

    def test_rejects_negative(self):
        with pytest.raises(InvalidBlockError):
            CycleBlock((0, -1, 2))

    def test_len(self):
        assert len(CycleBlock((0, 1, 2, 3))) == 4


class TestEquality:
    def test_rotation_reflection_equal(self):
        a = CycleBlock((0, 2, 5, 7))
        b = CycleBlock((5, 7, 0, 2))
        c = CycleBlock((7, 5, 2, 0))
        assert a == b == c
        assert len({a, b, c}) == 1

    def test_different_cycles_unequal(self):
        assert CycleBlock((0, 1, 2, 3)) != CycleBlock((0, 2, 1, 3))

    def test_eq_other_type(self):
        assert CycleBlock((0, 1, 2)) != "block"


class TestEdges:
    def test_triangle_edges(self):
        assert set(triangle(0, 4, 2).edges()) == {(0, 4), (2, 4), (0, 2)}

    def test_quad_edges_follow_cycle_order(self):
        blk = CycleBlock((0, 2, 1, 3))
        assert set(blk.edges()) == {(0, 2), (1, 2), (1, 3), (0, 3)}

    def test_contains_edge(self):
        blk = CycleBlock((0, 1, 2, 3))
        assert blk.contains_edge((1, 0))
        assert not blk.contains_edge((0, 2))


class TestRingGeometry:
    def test_gaps(self):
        assert CycleBlock((0, 2, 5)).gaps(7) == [2, 3, 2]

    def test_is_convex(self):
        assert CycleBlock((0, 2, 5, 6)).is_convex(8)
        assert not CycleBlock((0, 2, 3, 1)).is_convex(4)  # paper's bad cycle

    def test_any_triangle_is_convex(self):
        for vs in [(0, 1, 2), (0, 2, 1), (5, 1, 3)]:
            assert CycleBlock(vs).is_convex(7)

    def test_vertices_outside_ring_rejected(self):
        blk = CycleBlock((0, 2, 9))
        with pytest.raises(InvalidBlockError):
            blk.is_convex(8)

    def test_distance_sum_convex_at_most_n(self):
        blk = CycleBlock((0, 3, 4, 6))
        assert blk.distance_sum(9) <= 9

    def test_tightness(self):
        # Gaps (2,3,2) on C7: all ≤ 3 → tight.
        assert CycleBlock((0, 2, 5)).is_tight(7)
        # Gaps (1,1,5) on C7: 5 > 3 → convex but not tight.
        assert CycleBlock((0, 1, 2)).is_convex(7)
        assert not CycleBlock((0, 1, 2)).is_tight(7)

    def test_tight_reflected_listing(self):
        assert CycleBlock((5, 2, 0)).is_tight(7)

    def test_oriented(self):
        assert CycleBlock((5, 0, 2)).oriented(7).vertices == (0, 2, 5)
        with pytest.raises(InvalidBlockError):
            CycleBlock((0, 2, 3, 1)).oriented(4)

    def test_convex_block_builder(self):
        assert convex_block([6, 1, 4]).vertices == (1, 4, 6)


@given(st.integers(5, 24), st.data())
@settings(max_examples=200)
def test_convex_block_distance_sum_equals_n_iff_tight(n, data):
    """distance_sum == n exactly for tight blocks (all gaps ≤ n/2)."""
    k = data.draw(st.integers(3, min(n, 6)))
    verts = data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True))
    blk = convex_block(tuple(verts))
    assert blk.is_convex(n)
    if blk.is_tight(n):
        assert blk.distance_sum(n) == n
    else:
        assert blk.distance_sum(n) < n


@given(st.integers(4, 20), st.data())
@settings(max_examples=150)
def test_edges_invariant_under_rotation(n, data):
    k = data.draw(st.integers(3, min(n, 6)))
    verts = data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True))
    r = data.draw(st.integers(0, k - 1))
    rotated = tuple(verts[r:] + verts[:r])
    assert set(CycleBlock(tuple(verts)).edges()) == set(CycleBlock(rotated).edges())
