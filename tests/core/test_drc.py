"""Tests for the DRC characterisation — including the property test
comparing the O(k) circular-order predicate against the exponential
brute-force router, which is the empirical proof of the ring lemma."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import CycleBlock
from repro.core.drc import (
    brute_force_routing,
    is_drc_routable,
    paper_example_blocks,
    route_block,
)
from repro.util.errors import RoutingError


class TestPaperExample:
    """The worked example from the paper, §2."""

    def test_bad_cycle_rejected_fast_and_brute(self):
        n, bad = paper_example_blocks()["bad"]
        assert not is_drc_routable(n, bad)
        assert brute_force_routing(n, bad) is None

    def test_good_blocks_routable(self):
        for name in ("ring", "tri1", "tri2"):
            n, blk = paper_example_blocks()[name]
            assert is_drc_routable(n, blk)
            assert brute_force_routing(n, blk) is not None

    def test_route_block_raises_on_bad(self):
        n, bad = paper_example_blocks()["bad"]
        with pytest.raises(RoutingError):
            route_block(n, bad)


class TestRouteBlock:
    def test_routing_tiles_ring(self):
        routing = route_block(8, CycleBlock((0, 3, 5)))
        assert routing.uses_all_links()
        assert routing.total_length == 8

    def test_routing_serves_every_request(self):
        blk = CycleBlock((1, 4, 6, 7))
        routing = route_block(9, blk)
        assert sorted(routing.requests) == sorted(blk.edges())

    def test_routing_edge_disjoint_by_construction(self):
        routing = route_block(12, CycleBlock((0, 2, 5, 9)))
        seen = set()
        for arc in routing.arcs:
            links = set(arc.links())
            assert not links & seen
            seen |= links

    def test_reflected_listing_routable(self):
        assert is_drc_routable(9, CycleBlock((7, 4, 1)))
        routing = route_block(9, CycleBlock((7, 4, 1)))
        assert routing.uses_all_links()


@given(st.integers(4, 12), st.data())
@settings(max_examples=300, deadline=None)
def test_fast_predicate_matches_bruteforce(n, data):
    """THE ring-DRC lemma, empirically: circular order ⟺ an
    edge-disjoint routing exists (exhaustive orientation search)."""
    k = data.draw(st.integers(3, min(n, 6)))
    verts = data.draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    blk = CycleBlock(tuple(verts))
    assert is_drc_routable(n, blk) == (brute_force_routing(n, blk) is not None)


@given(st.integers(4, 14), st.data())
@settings(max_examples=150, deadline=None)
def test_convex_routing_saturates_every_link(n, data):
    """Each DRC subnetwork uses all n links exactly once — the paper's
    half-capacity design point."""
    k = data.draw(st.integers(3, min(n, 7)))
    verts = sorted(
        data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True))
    )
    routing = route_block(n, CycleBlock(tuple(verts)))
    assert routing.uses_all_links()
    used = [link for arc in routing.arcs for link in arc.links()]
    assert len(used) == n and len(set(used)) == n
